#![warn(missing_docs)]

//! # srand — small deterministic pseudo-random numbers
//!
//! A dependency-free random-number layer for the scholar stack. It
//! deliberately mirrors the small slice of the `rand` crate API the
//! workspace uses (`SeedableRng::seed_from_u64`, `Rng::gen`,
//! `Rng::gen_range`) so call sites stay idiomatic, while keeping the
//! implementation tiny, portable, and bit-for-bit reproducible across
//! platforms and releases — a hard requirement for the deterministic
//! corpus generator and the evaluation bootstrap machinery.
//!
//! The core generator is xoshiro256++ seeded through SplitMix64; both
//! are public-domain algorithms by Blackman & Vigna. Integer ranges are
//! sampled without modulo bias via rejection; floats use the standard
//! 53-bit mantissa construction.

/// Generators (named to mirror `rand::rngs`).
pub mod rngs {
    /// A small, fast, deterministic generator (xoshiro256++).
    ///
    /// Not cryptographically secure; intended for simulation, corpus
    /// synthesis, and bootstrap resampling.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// Derive an independent child generator, advancing this one.
        ///
        /// The child is seeded from one draw of the parent stream,
        /// re-expanded through SplitMix64, so child streams are
        /// decorrelated from the parent and from each other. This is the
        /// backbone of per-site / per-case determinism in the chaos
        /// harness: one master seed fans out into any number of
        /// reproducible sub-streams.
        pub fn split(&mut self) -> SmallRng {
            <SmallRng as crate::SeedableRng>::seed_from_u64(self.next_u64())
        }

        /// Advance and return the next 64 random bits.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl crate::Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            SmallRng::next_u64(self)
        }
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The sampling surface shared by all generators.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its canonical distribution
    /// (uniform on `[0, 1)` for floats, uniform over all values for
    /// integers, fair coin for `bool`).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from the half-open `range` (`start..end`).
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types with a canonical uniform distribution for [`Rng::gen`].
pub trait Sample {
    /// Draw one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample_from<R: Rng>(self, rng: &mut R) -> Self::Output;
}

/// Uniform integer in `[0, n)` without modulo bias (rejection sampling).
#[inline]
fn uniform_below<R: Rng>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "cannot sample from an empty range");
    // Reject the low `2^64 mod n` values so every residue is equally
    // likely. The loop almost never iterates more than once.
    let threshold = n.wrapping_neg() % n;
    loop {
        let x = rng.next_u64();
        if x >= threshold {
            return x % n;
        }
    }
}

impl SampleRange for std::ops::Range<u64> {
    type Output = u64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = self.end - self.start;
        self.start + uniform_below(rng, span)
    }
}

impl SampleRange for std::ops::Range<usize> {
    type Output = usize;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as usize
    }
}

impl SampleRange for std::ops::Range<i32> {
    type Output = i32;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + uniform_below(rng, span) as i64) as i32
    }
}

impl SampleRange for std::ops::Range<u32> {
    type Output = u32;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> u32 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let span = (self.end - self.start) as u64;
        self.start + uniform_below(rng, span) as u32
    }
}

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        let u: f64 = f64::sample(rng);
        let x = self.start + u * (self.end - self.start);
        // Guard against rounding landing exactly on `end`.
        if x >= self.end {
            self.start
        } else {
            x
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should diverge");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_range_usize_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn gen_range_u64_respects_offset() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let x = r.gen_range(100u64..110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn gen_range_f64_stays_inside() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(x > 0.0 && x < 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.gen_range(5usize..5);
    }

    /// Chi-square statistic for `samples` drawn uniformly over `bins`.
    fn chi_square(samples: &[usize], bins: usize) -> f64 {
        let mut counts = vec![0u64; bins];
        for &s in samples {
            counts[s] += 1;
        }
        let expected = samples.len() as f64 / bins as f64;
        counts.iter().map(|&c| (c as f64 - expected).powi(2) / expected).sum()
    }

    #[test]
    fn chi_square_uniformity_smoke() {
        // 64 bins, df = 63: mean 63, sd ~ 11.2. A healthy generator stays
        // well under 120 (~5 sd); a biased one (e.g. plain `% 64` over a
        // short-period LCG, or a stuck bit) blows far past it. Seeds are
        // fixed, so this is deterministic — a smoke test, not a p-value.
        for seed in [2u64, 77, 12_345] {
            let mut r = SmallRng::seed_from_u64(seed);
            let samples: Vec<usize> = (0..65_536).map(|_| r.gen_range(0usize..64)).collect();
            let x2 = chi_square(&samples, 64);
            assert!(x2 < 120.0, "seed {seed}: chi-square {x2} too high for uniform");
            assert!(x2 > 20.0, "seed {seed}: chi-square {x2} suspiciously low (stuck stream?)");
        }
    }

    #[test]
    fn split_streams_are_deterministic_and_distinct() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut ca = a.split();
        let mut cb = b.split();
        for _ in 0..64 {
            assert_eq!(ca.next_u64(), cb.next_u64(), "split must be deterministic");
        }
        // Many children of one parent all start differently.
        let mut parent = SmallRng::seed_from_u64(7);
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..256 {
            assert!(firsts.insert(parent.split().next_u64()), "child streams collided");
        }
    }

    #[test]
    fn split_streams_are_independent() {
        // Pearson correlation between parent-after-split, child, and
        // sibling streams should be statistically indistinguishable from
        // zero: |r| ~ 1/sqrt(n) = 0.01 for n = 10_000; allow 4 sd.
        fn corr(xs: &[f64], ys: &[f64]) -> f64 {
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let cov: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx.sqrt() * vy.sqrt())
        }
        let n = 10_000;
        let mut parent = SmallRng::seed_from_u64(1234);
        let mut child_a = parent.split();
        let mut child_b = parent.split();
        let pa: Vec<f64> = (0..n).map(|_| parent.gen::<f64>()).collect();
        let ca: Vec<f64> = (0..n).map(|_| child_a.gen::<f64>()).collect();
        let cb: Vec<f64> = (0..n).map(|_| child_b.gen::<f64>()).collect();
        for (label, r) in [("parent/child", corr(&pa, &ca)), ("sibling/sibling", corr(&ca, &cb))] {
            assert!(r.abs() < 0.04, "{label} correlation {r} too large");
        }
        // Each split stream is itself uniform.
        let mut fresh = SmallRng::seed_from_u64(1234);
        let mut child = fresh.split();
        let samples: Vec<usize> = (0..65_536).map(|_| child.gen_range(0usize..64)).collect();
        let x2 = chi_square(&samples, 64);
        assert!(x2 < 120.0, "split-child chi-square {x2} too high");
    }

    #[test]
    fn no_obvious_modulo_bias() {
        // With rejection sampling every residue class of 3 is equally
        // likely; a naive `% 3` over u64 would also pass this, but the
        // threshold path is exercised by the tiny span.
        let mut r = SmallRng::seed_from_u64(13);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[r.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((c as i64 - 10_000).abs() < 600, "counts {counts:?}");
        }
    }
}
