//! Lock-free server metrics: request counters, an in-flight gauge, and a
//! log-spaced latency histogram, all plain atomics so the hot path never
//! takes a lock. Rendered as JSON for `GET /metrics`.

use sjson::{ObjectBuilder, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// ORDERING: every counter and gauge in this module is an independent
/// monotone statistic — no thread reads one to decide whether another
/// atomic's data is visible, so relaxed suffices for all of them. The
/// one true publish/consume pair (generation slot `tag` claiming) uses
/// Acquire/AcqRel at its sites instead of this alias.
const RELAXED: Ordering = Ordering::Relaxed;

/// Histogram bucket upper bounds in microseconds, log-spaced. The last
/// bucket is open-ended. The sub-100µs region is deliberately fine
/// (5/10/25/50/75µs): the event-loop serve path answers cached requests
/// in single-digit microseconds, and a histogram whose first bucket is
/// 50µs cannot distinguish a 4µs cache hit from a 40µs full render.
pub const LATENCY_BUCKETS_US: [u64; 16] = [
    5, 10, 25, 50, 75, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 500_000,
    2_000_000,
];

/// Distinct index generations `/metrics` can attribute requests to
/// before falling back to the shared "other" bucket (reported as
/// generation 0). Slots are claimed first-come and never recycled, so a
/// long-lived server attributes its most recent restarts-worth of
/// generations precisely and lumps the ancient tail together — the sums
/// stay exact either way.
const GENERATION_SLOTS: usize = 8;

/// Request counters attributed to one index generation. Without this
/// breakdown a shadow mismatch is unattributable: `/metrics` could say
/// *that* 500s happened but not *which generation* answered them.
#[derive(Debug, Default)]
pub struct GenerationCounters {
    /// Generation label; 0 marks an unclaimed slot (live generations
    /// start at 1) and, on the overflow bucket, "older generations".
    tag: AtomicU64,
    /// Requests answered by this generation.
    pub requests: AtomicU64,
    /// 2xx responses from this generation.
    pub ok: AtomicU64,
    /// 4xx responses from this generation.
    pub client_errors: AtomicU64,
    /// 5xx responses from this generation.
    pub server_errors: AtomicU64,
}

impl GenerationCounters {
    fn bump(&self, status: u16) {
        self.requests.fetch_add(1, RELAXED);
        if (200..300).contains(&status) {
            self.ok.fetch_add(1, RELAXED);
        } else if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, RELAXED);
        } else if (500..600).contains(&status) {
            self.server_errors.fetch_add(1, RELAXED);
        }
    }

    fn json(&self, generation: u64) -> Value {
        ObjectBuilder::new()
            .field("generation", generation as i64)
            .field("requests", self.requests.load(RELAXED) as i64)
            .field("ok", self.ok.load(RELAXED) as i64)
            .field("client_errors", self.client_errors.load(RELAXED) as i64)
            .field("server_errors", self.server_errors.load(RELAXED) as i64)
            .build()
    }
}

/// Per-endpoint request counters.
#[derive(Debug, Default)]
pub struct EndpointCounters {
    /// `GET /top` requests served.
    pub top: AtomicU64,
    /// `GET /article/{id}` requests served.
    pub article: AtomicU64,
    /// `GET /health` requests served.
    pub health: AtomicU64,
    /// `GET /metrics` requests served.
    pub metrics: AtomicU64,
    /// `GET /shadow` requests served.
    pub shadow: AtomicU64,
}

/// All server metrics. One instance lives in an `Arc` shared by every
/// worker; every field is an atomic, so recording is wait-free.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total requests that produced a response (any status).
    pub requests: AtomicU64,
    /// Responses with a 2xx status.
    pub ok: AtomicU64,
    /// Responses with a 4xx status (bad request, not found, timeout...).
    pub client_errors: AtomicU64,
    /// Responses with a 5xx status (handler panics surfaced as `500`).
    /// Excludes `503` sheds, which never reach a worker — see `shed`.
    pub server_errors: AtomicU64,
    /// Connections shed with `503` because the accept queue was full.
    pub shed: AtomicU64,
    /// Panics caught (and survived) by worker threads while handling a
    /// request. Any non-zero value is a bug worth investigating.
    pub panics: AtomicU64,
    /// Requests currently being parsed or answered.
    pub in_flight: AtomicU64,
    /// Open client connections (accepted and not yet closed). The
    /// blocking backend's connections are one-request-per-connection, so
    /// there it tracks `in_flight` closely; under the event loop it
    /// counts keep-alive sessions.
    pub connections_active: AtomicU64,
    /// Requests served on an already-used keep-alive connection (the
    /// second and later request of each session). The ratio
    /// `keepalive_reuses / requests` is the fraction of requests that
    /// skipped a TCP handshake.
    pub keepalive_reuses: AtomicU64,
    /// Index swaps observed by the serving layer.
    pub index_swaps: AtomicU64,
    /// Per-endpoint counters.
    pub endpoints: EndpointCounters,
    /// Per-generation attribution (see [`GenerationCounters`]).
    generations: [GenerationCounters; GENERATION_SLOTS],
    /// Requests from generations beyond the slot budget, labelled 0.
    generation_overflow: GenerationCounters,
    latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    latency_total_us: AtomicU64,
}

/// RAII guard for the in-flight gauge: increments on creation, decrements
/// on drop, so early returns and panics can't leak a stuck gauge.
pub struct InFlight<'a>(&'a Metrics);

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, RELAXED);
    }
}

impl Metrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Mark a request as in flight; the gauge drops when the guard does.
    pub fn begin(&self) -> InFlight<'_> {
        self.in_flight.fetch_add(1, RELAXED);
        InFlight(self)
    }

    /// Record a completed response with its status and service time.
    pub fn record(&self, status: u16, took: Duration) {
        self.requests.fetch_add(1, RELAXED);
        if (200..300).contains(&status) {
            self.ok.fetch_add(1, RELAXED);
        } else if (400..500).contains(&status) {
            self.client_errors.fetch_add(1, RELAXED);
        } else if (500..600).contains(&status) {
            self.server_errors.fetch_add(1, RELAXED);
        }
        let us = took.as_micros().min(u64::MAX as u128) as u64;
        // partition_point ranges over 0..=buckets and `latency` has one
        // overflow slot past the bucket bounds; fall back to the last
        // slot rather than trust the arithmetic with a panic.
        let bucket = LATENCY_BUCKETS_US.partition_point(|&b| b < us);
        if let Some(counter) = self.latency.get(bucket).or_else(|| self.latency.last()) {
            counter.fetch_add(1, RELAXED);
        }
        self.latency_total_us.fetch_add(us, RELAXED);
    }

    /// Attribute a completed response to the index generation that
    /// answered it. Called alongside [`Metrics::record`] wherever the
    /// generation is known (which is every answered request — error
    /// paths attribute to the currently published generation), so per-
    /// generation requests sum exactly to the global `requests` counter
    /// and each slot's class counters sum exactly to its `requests`.
    pub fn record_generation(&self, generation: u64, status: u16) {
        self.generation_slot(generation).bump(status);
    }

    fn generation_slot(&self, generation: u64) -> &GenerationCounters {
        if generation != 0 {
            for slot in &self.generations {
                if slot.tag.load(Ordering::Acquire) == generation {
                    return slot;
                }
                if slot
                    .tag
                    .compare_exchange(0, generation, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return slot;
                }
                // Lost the claim race — if the winner claimed it for the
                // same generation, this slot is still the right one.
                if slot.tag.load(Ordering::Acquire) == generation {
                    return slot;
                }
            }
        }
        &self.generation_overflow
    }

    /// Snapshot the per-generation counters: `(generation, requests, ok,
    /// client_errors, server_errors)` for every claimed slot, with the
    /// overflow bucket (if used) labelled generation 0.
    pub fn generation_counts(&self) -> Vec<(u64, u64, u64, u64, u64)> {
        let mut out = Vec::new();
        for slot in &self.generations {
            let tag = slot.tag.load(Ordering::Acquire);
            if tag != 0 {
                out.push((
                    tag,
                    slot.requests.load(RELAXED),
                    slot.ok.load(RELAXED),
                    slot.client_errors.load(RELAXED),
                    slot.server_errors.load(RELAXED),
                ));
            }
        }
        let overflow = &self.generation_overflow;
        if overflow.requests.load(RELAXED) != 0 {
            out.push((
                0,
                overflow.requests.load(RELAXED),
                overflow.ok.load(RELAXED),
                overflow.client_errors.load(RELAXED),
                overflow.server_errors.load(RELAXED),
            ));
        }
        out
    }

    /// Record a connection shed with `503` before it reached a worker.
    pub fn record_shed(&self) {
        self.shed.fetch_add(1, RELAXED);
    }

    /// Record a client connection opening (accepted into the serving
    /// layer, past any shed decision).
    pub fn record_conn_open(&self) {
        self.connections_active.fetch_add(1, RELAXED);
    }

    /// Record a client connection closing, for any reason.
    pub fn record_conn_close(&self) {
        self.connections_active.fetch_sub(1, RELAXED);
    }

    /// Record a request arriving on an already-used keep-alive
    /// connection.
    pub fn record_keepalive_reuse(&self) {
        self.keepalive_reuses.fetch_add(1, RELAXED);
    }

    /// Record a panic caught by a worker while handling a request.
    pub fn record_panic(&self) {
        self.panics.fetch_add(1, RELAXED);
    }

    /// Record an index swap becoming visible to queries.
    pub fn record_swap(&self) {
        self.index_swaps.fetch_add(1, RELAXED);
    }

    /// Approximate latency quantile (0.0..=1.0) in microseconds, read from
    /// the histogram: the upper bound of the bucket holding the quantile.
    pub fn latency_quantile_us(&self, q: f64) -> u64 {
        let total: u64 = self.latency.iter().map(|c| c.load(RELAXED)).sum();
        if total == 0 {
            return 0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.latency.iter().enumerate() {
            seen += c.load(RELAXED);
            if seen >= target {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Snapshot every counter into the `/metrics` JSON document.
    pub fn to_json(&self) -> Value {
        let lat: Vec<Value> = self
            .latency
            .iter()
            .enumerate()
            .map(|(i, c)| {
                ObjectBuilder::new()
                    .field(
                        "le_us",
                        match LATENCY_BUCKETS_US.get(i) {
                            Some(&b) => Value::from(b as i64),
                            None => Value::String("inf".to_string()),
                        },
                    )
                    .field("count", c.load(RELAXED) as i64)
                    .build()
            })
            .collect();
        let requests = self.requests.load(RELAXED);
        let total_us = self.latency_total_us.load(RELAXED);
        ObjectBuilder::new()
            .field("requests", requests as i64)
            .field("ok", self.ok.load(RELAXED) as i64)
            .field("client_errors", self.client_errors.load(RELAXED) as i64)
            .field("server_errors", self.server_errors.load(RELAXED) as i64)
            .field("shed", self.shed.load(RELAXED) as i64)
            .field("panics", self.panics.load(RELAXED) as i64)
            .field("in_flight", self.in_flight.load(RELAXED) as i64)
            .field("connections_active", self.connections_active.load(RELAXED) as i64)
            .field("keepalive_reuses", self.keepalive_reuses.load(RELAXED) as i64)
            .field("index_swaps", self.index_swaps.load(RELAXED) as i64)
            .field(
                "endpoints",
                ObjectBuilder::new()
                    .field("top", self.endpoints.top.load(RELAXED) as i64)
                    .field("article", self.endpoints.article.load(RELAXED) as i64)
                    .field("health", self.endpoints.health.load(RELAXED) as i64)
                    .field("metrics", self.endpoints.metrics.load(RELAXED) as i64)
                    .field("shadow", self.endpoints.shadow.load(RELAXED) as i64)
                    .build(),
            )
            .field(
                "generations",
                Value::Array({
                    let mut gens: Vec<Value> = self
                        .generations
                        .iter()
                        .filter(|s| s.tag.load(Ordering::Acquire) != 0)
                        .map(|s| s.json(s.tag.load(Ordering::Acquire)))
                        .collect();
                    if self.generation_overflow.requests.load(RELAXED) != 0 {
                        gens.push(self.generation_overflow.json(0));
                    }
                    gens
                }),
            )
            .field(
                "latency",
                ObjectBuilder::new()
                    .field(
                        "mean_us",
                        if requests == 0 { 0.0 } else { total_us as f64 / requests as f64 },
                    )
                    .field("p50_us", self.latency_quantile_us(0.50) as i64)
                    .field("p99_us", self.latency_quantile_us(0.99) as i64)
                    .field("histogram", Value::Array(lat))
                    .build(),
            )
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_classifies_statuses_and_buckets_latency() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(80));
        m.record(200, Duration::from_micros(80));
        m.record(404, Duration::from_micros(3_000));
        m.record(500, Duration::from_micros(120));
        m.record_shed();
        assert_eq!(m.requests.load(RELAXED), 4);
        assert_eq!(m.ok.load(RELAXED), 2);
        assert_eq!(m.client_errors.load(RELAXED), 1);
        assert_eq!(m.server_errors.load(RELAXED), 1);
        assert_eq!(m.shed.load(RELAXED), 1);
        // Two of four requests landed in the <=100us bucket.
        assert_eq!(m.latency_quantile_us(0.5), 100);
        assert_eq!(m.latency_quantile_us(0.99), 5_000);
    }

    #[test]
    fn in_flight_gauge_is_raii() {
        let m = Metrics::new();
        {
            let _a = m.begin();
            let _b = m.begin();
            assert_eq!(m.in_flight.load(RELAXED), 2);
        }
        assert_eq!(m.in_flight.load(RELAXED), 0);
    }

    #[test]
    fn json_snapshot_has_all_sections() {
        let m = Metrics::new();
        m.record(200, Duration::from_micros(10));
        let v = m.to_json();
        assert_eq!(v.get("requests").and_then(|x| x.as_i64()), Some(1));
        let lat = v.get("latency").unwrap();
        assert!(lat.get("p50_us").is_some());
        let hist = lat.get("histogram").and_then(|h| h.as_array()).unwrap();
        assert_eq!(hist.len(), LATENCY_BUCKETS_US.len() + 1);
        // The open-ended bucket labels itself "inf".
        assert_eq!(hist.last().unwrap().get("le_us").and_then(|x| x.as_str()), Some("inf"));
    }

    #[test]
    fn sub_100us_latencies_resolve_to_fine_buckets() {
        // The event-loop regime: cached responses land in single-digit
        // microseconds and must not all pile into one coarse bucket.
        let m = Metrics::new();
        m.record(200, Duration::from_micros(3));
        m.record(200, Duration::from_micros(8));
        m.record(200, Duration::from_micros(20));
        m.record(200, Duration::from_micros(60));
        assert_eq!(m.latency_quantile_us(0.25), 5);
        assert_eq!(m.latency_quantile_us(0.50), 10);
        assert_eq!(m.latency_quantile_us(0.75), 25);
        assert_eq!(m.latency_quantile_us(1.00), 75);
    }

    #[test]
    fn connection_and_keepalive_counters() {
        let m = Metrics::new();
        m.record_conn_open();
        m.record_conn_open();
        m.record_keepalive_reuse();
        m.record_conn_close();
        assert_eq!(m.connections_active.load(RELAXED), 1);
        assert_eq!(m.keepalive_reuses.load(RELAXED), 1);
        let v = m.to_json();
        assert_eq!(v.get("connections_active").and_then(|x| x.as_i64()), Some(1));
        assert_eq!(v.get("keepalive_reuses").and_then(|x| x.as_i64()), Some(1));
    }

    #[test]
    fn overflow_latency_lands_in_open_bucket() {
        let m = Metrics::new();
        m.record(200, Duration::from_secs(30));
        assert_eq!(m.latency_quantile_us(0.5), u64::MAX);
    }

    #[test]
    fn generation_counters_attribute_and_sum_exactly() {
        let m = Metrics::new();
        m.record_generation(1, 200);
        m.record_generation(1, 404);
        m.record_generation(2, 200);
        m.record_generation(2, 500);
        m.record_generation(2, 200);
        let counts = m.generation_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0], (1, 2, 1, 1, 0));
        assert_eq!(counts[1], (2, 3, 2, 0, 1));
        // Class counters sum exactly to each slot's requests.
        for &(_, req, ok, ce, se) in &counts {
            assert_eq!(ok + ce + se, req);
        }
        let v = m.to_json();
        let gens = v.get("generations").and_then(|g| g.as_array()).unwrap();
        assert_eq!(gens.len(), 2);
        assert_eq!(gens[1].get("generation").and_then(|x| x.as_i64()), Some(2));
        assert_eq!(gens[1].get("requests").and_then(|x| x.as_i64()), Some(3));
    }

    #[test]
    fn generation_slots_overflow_to_the_other_bucket() {
        let m = Metrics::new();
        // Claim every slot, then two more generations: both must land in
        // the shared overflow bucket (generation 0) so sums stay exact.
        for g in 1..=(GENERATION_SLOTS as u64 + 2) {
            m.record_generation(g, 200);
        }
        let counts = m.generation_counts();
        assert_eq!(counts.len(), GENERATION_SLOTS + 1);
        let total: u64 = counts.iter().map(|&(_, req, ..)| req).sum();
        assert_eq!(total, GENERATION_SLOTS as u64 + 2);
        let overflow = counts.last().unwrap();
        assert_eq!(overflow.0, 0);
        assert_eq!(overflow.1, 2);
    }
}
