//! Zero-downtime index publication.
//!
//! [`SharedIndex`] is the single mutable cell of the serving stack: an
//! `RwLock<Arc<ScoreIndex>>`. Readers clone the `Arc` (a refcount bump
//! under a read lock held for nanoseconds) and then answer the whole
//! request against that immutable snapshot — a swap mid-request can never
//! tear a response. [`Reindexer`] is the producer side: a background
//! thread that folds corpus batches through
//! [`qrank::IncrementalRanker`] and publishes a freshly built index
//! after each batch.

use crate::index::ScoreIndex;
use qrank::incremental::{grow_corpus, IncrementalRanker};
use qrank::QRankConfig;
use scholar_corpus::model::Article;
use scholar_corpus::Corpus;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;

/// The atomically swappable published index.
///
/// `load()` is the only read path and `publish()` the only write path;
/// both are O(1) and neither blocks on index construction, which always
/// happens off to the side on a private `ScoreIndex` value.
#[derive(Debug)]
pub struct SharedIndex {
    current: RwLock<Arc<ScoreIndex>>,
    generation: AtomicU64,
}

impl SharedIndex {
    /// Publish `index` as generation 1 and start serving it.
    pub fn new(mut index: ScoreIndex) -> Self {
        index.set_generation(1);
        SharedIndex { current: RwLock::new(Arc::new(index)), generation: AtomicU64::new(1) }
    }

    /// Snapshot the currently published index. The returned `Arc` stays
    /// valid (and immutable) even if a new index is published while the
    /// caller is still using it.
    pub fn load(&self) -> Arc<ScoreIndex> {
        // A poisoned lock only means some thread panicked while holding
        // it; the cell holds a bare `Arc` that is either the old or the
        // new index — never a torn value — so keep serving.
        Arc::clone(&self.current.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Atomically replace the published index, stamping the next
    /// generation. In-flight requests keep their old snapshot; new
    /// requests see the new index.
    pub fn publish(&self, mut index: ScoreIndex) -> u64 {
        // Chaos site: stretch the window between taking the write lock
        // and installing the index, to let racing publishers pile up.
        failpoint!("swap.publish");
        // Stamp the generation while holding the write lock: concurrent
        // publishers then install indexes in generation order, so the
        // winning index always carries the highest generation and
        // `generation()` never runs ahead of what readers can load.
        // Same poisoning argument as `load`: the `Arc` swap below is the
        // only write and cannot be observed half-done.
        let mut current = self.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let g = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        index.set_generation(g);
        *current = Arc::new(index);
        g
    }

    /// Generation of the most recently published index.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }
}

/// A batch submitted to the [`Reindexer`].
enum Job {
    Batch(Vec<Article>),
    Stop,
}

/// Background re-ranking thread: owns an [`IncrementalRanker`], consumes
/// article batches from a channel, and publishes a fresh [`ScoreIndex`]
/// into the [`SharedIndex`] after each batch. Serving never pauses — the
/// expensive solve and index build happen entirely off the read path.
pub struct Reindexer {
    tx: Sender<Job>,
    handle: JoinHandle<IncrementalRanker>,
    batches_published: Arc<AtomicU64>,
}

impl Reindexer {
    /// Rank `corpus` from scratch, publish generation 1 into a fresh
    /// [`SharedIndex`], and start the background thread.
    ///
    /// `on_publish` runs on the background thread after every successful
    /// publication (e.g. to bump a swap metric).
    pub fn start(
        config: QRankConfig,
        corpus: Corpus,
        on_publish: impl Fn(u64) + Send + 'static,
    ) -> (Arc<SharedIndex>, Reindexer) {
        let ranker = IncrementalRanker::new(config, corpus);
        let shared = Arc::new(SharedIndex::new(Self::index_of(&ranker)));
        let (tx, rx) = mpsc::channel::<Job>();
        let published = Arc::new(AtomicU64::new(0));
        let handle = {
            let shared = Arc::clone(&shared);
            let published = Arc::clone(&published);
            std::thread::Builder::new()
                .name("scholar-reindex".into())
                .spawn(move || Self::run(ranker, rx, shared, published, on_publish))
                // lint: allow(HOTPATH-PANIC) producer-side startup, before any request is accepted; no counter exists yet to record into
                .expect("spawn reindexer thread")
        };
        (Arc::clone(&shared), Reindexer { tx, handle, batches_published: published })
    }

    fn index_of(ranker: &IncrementalRanker) -> ScoreIndex {
        ScoreIndex::build(Arc::new(ranker.corpus().clone()), ranker.result().article_scores.clone())
    }

    fn run(
        mut ranker: IncrementalRanker,
        rx: Receiver<Job>,
        shared: Arc<SharedIndex>,
        published: Arc<AtomicU64>,
        on_publish: impl Fn(u64),
    ) -> IncrementalRanker {
        while let Ok(Job::Batch(mut batch)) = rx.recv() {
            // Coalesce any batches that queued up while the last solve
            // ran: one warm solve over the union beats one per batch. A
            // Stop seen here still processes the batch in hand first —
            // shutdown() promises the accepted work gets published.
            let mut stopping = false;
            // Chaos site: hold the thread mid-coalesce so a Stop (or more
            // batches) reliably lands while a batch is already in hand.
            failpoint!("reindex.coalesce");
            loop {
                match rx.try_recv() {
                    Ok(Job::Batch(more)) => batch.extend(more),
                    Ok(Job::Stop) | Err(TryRecvError::Disconnected) => {
                        stopping = true;
                        break;
                    }
                    Err(TryRecvError::Empty) => break,
                }
            }
            let grown = grow_corpus(ranker.corpus(), batch);
            ranker.extend(grown);
            // Chaos site: delay between solve and publish, widening the
            // window where readers still see the previous generation.
            failpoint!("reindex.publish");
            let g = shared.publish(Self::index_of(&ranker));
            published.fetch_add(1, Ordering::SeqCst);
            on_publish(g);
            if stopping {
                break;
            }
        }
        ranker
    }

    /// Queue a batch of new articles for ranking and publication. Returns
    /// immediately; the publish happens asynchronously.
    pub fn submit(&self, batch: Vec<Article>) {
        // lint: allow(HOTPATH-PANIC) control-plane API, not the request path; a dead reindexer losing accepted batches must be loud
        self.tx.send(Job::Batch(batch)).expect("reindexer thread is alive");
    }

    /// Number of batches ranked and published so far.
    pub fn batches_published(&self) -> u64 {
        self.batches_published.load(Ordering::SeqCst)
    }

    /// Stop the thread after it finishes the batch in hand, returning the
    /// final ranker state (corpus + scores).
    pub fn shutdown(self) -> IncrementalRanker {
        let _ = self.tx.send(Job::Stop);
        // lint: allow(HOTPATH-PANIC) control-plane join: re-raising a background panic at shutdown is the contract, not a request-path hazard
        self.handle.join().expect("reindexer thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TopQuery;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::model::{ArticleId, AuthorId, VenueId};
    use std::time::{Duration, Instant};

    fn batch_article(i: usize, refs: Vec<ArticleId>) -> Article {
        Article {
            id: ArticleId(0),
            title: format!("swap-batch-{i}"),
            year: 2012,
            venue: VenueId(0),
            authors: vec![AuthorId(0)],
            references: refs,
            merit: None,
        }
    }

    #[test]
    fn publish_bumps_generation_and_readers_keep_snapshots() {
        let corpus = Arc::new(Preset::Tiny.generate(21));
        let scores = vec![1.0 / corpus.num_articles() as f64; corpus.num_articles()];
        let shared = SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone()));
        let old = shared.load();
        assert_eq!(old.generation(), 1);

        let g = shared.publish(ScoreIndex::build(Arc::clone(&corpus), scores));
        assert_eq!(g, 2);
        assert_eq!(shared.generation(), 2);
        // The old snapshot is still fully usable.
        assert_eq!(old.generation(), 1);
        assert_eq!(old.num_articles(), corpus.num_articles());
        assert_eq!(shared.load().generation(), 2);
    }

    #[test]
    fn reindexer_publishes_grown_corpus() {
        let corpus = Preset::Tiny.generate(22);
        let n0 = corpus.num_articles();
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        assert_eq!(shared.load().num_articles(), n0);

        reindexer.submit(vec![
            batch_article(0, vec![ArticleId(0), ArticleId(3)]),
            batch_article(1, vec![ArticleId(1)]),
        ]);
        // Wait for the asynchronous publish (bounded, normally instant).
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        let idx = shared.load();
        assert_eq!(idx.num_articles(), n0 + 2);
        assert!(idx.generation() >= 2);
        // The published index answers queries over the grown corpus.
        let hits = idx.top(&TopQuery { k: 5, ..Default::default() });
        assert_eq!(hits.len(), 5);

        let ranker = reindexer.shutdown();
        assert_eq!(ranker.corpus().num_articles(), n0 + 2);
    }

    #[test]
    fn shutdown_publishes_the_batch_in_hand() {
        // Regression: a Stop that arrived while the reindexer was
        // coalescing used to discard the batch already dequeued,
        // breaking shutdown()'s finish-the-batch guarantee. Submitting
        // and immediately shutting down queues [Batch, Stop] before the
        // thread wakes, so the Stop is (almost always) seen mid-coalesce
        // — and the batch must still be ranked and published.
        let corpus = Preset::Tiny.generate(24);
        let n0 = corpus.num_articles();
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        reindexer.submit(vec![batch_article(0, vec![ArticleId(1)])]);
        let ranker = reindexer.shutdown();
        assert_eq!(ranker.corpus().num_articles(), n0 + 1, "accepted batch was dropped");
        let idx = shared.load();
        assert_eq!(idx.num_articles(), n0 + 1);
        assert_eq!(idx.generation(), 2);
    }

    #[test]
    fn published_scores_match_fresh_rank_of_same_corpus() {
        // Zero drift: what the swap layer publishes must equal a from-
        // scratch rank of the identical grown corpus.
        let corpus = Preset::Tiny.generate(23);
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        reindexer.submit(vec![batch_article(0, vec![ArticleId(2)])]);
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        let idx = shared.load();
        let cold = qrank::QRank::default().run(idx.corpus());
        let drift: f64 = idx
            .scores()
            .iter()
            .zip(&cold.article_scores)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(drift < 1e-9, "published scores drifted {drift} from cold rank");
        reindexer.shutdown();
    }
}
