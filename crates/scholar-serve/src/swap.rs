//! Zero-downtime index publication.
//!
//! [`SharedIndex`] is the single mutable cell of the serving stack: an
//! `RwLock<Arc<ScoreIndex>>`. Readers clone the `Arc` (a refcount bump
//! under a read lock held for nanoseconds) and then answer the whole
//! request against that immutable snapshot — a swap mid-request can never
//! tear a response. [`Reindexer`] is the producer side: a background
//! thread that folds corpus batches through
//! [`qrank::IncrementalRanker`] and publishes a freshly built index
//! after each batch.

use crate::index::ScoreIndex;
use crate::shadow::{Decision, ShadowReport, ShadowState, ShadowThresholds};
use crate::snapshot::{self, StateError};
use crate::wal::{self, Wal};
use qrank::incremental::{grow_corpus, IncrementalRanker};
use qrank::QRankConfig;
use scholar_corpus::model::Article;
use scholar_corpus::Corpus;
use sjson::{ObjectBuilder, Value};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender, TryRecvError};
use std::sync::{mpsc, Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// A candidate index staged for shadow evaluation next to the live one.
///
/// The candidate `Arc` is deliberately never cloned out of the slot —
/// every consumer touches it through the slot's read guard — so when the
/// promoter takes the slot under the write lock it holds the only
/// reference and `Arc::try_unwrap` recovers the index by value.
#[derive(Debug)]
struct ShadowSlot {
    /// `None` once the candidate has been moved out for promotion.
    candidate: Option<Arc<ScoreIndex>>,
    /// Provisional generation the candidate was staged under (stamped
    /// again by `publish` on promotion, normally the same number).
    candidate_generation: u64,
    state: Arc<ShadowState>,
    thresholds: ShadowThresholds,
}

/// The atomically swappable published index.
///
/// `load()` is the only read path and `publish()` the only write path;
/// both are O(1) and neither blocks on index construction, which always
/// happens off to the side on a private `ScoreIndex` value.
///
/// A second, optional slot holds a *shadow* candidate (see
/// [`crate::shadow`]): requests answered by the live index are mirrored
/// to the candidate, and [`SharedIndex::try_promote_shadow`] publishes
/// it only when the accumulated [`ShadowReport`] passes its thresholds.
#[derive(Debug)]
pub struct SharedIndex {
    current: RwLock<Arc<ScoreIndex>>,
    generation: AtomicU64,
    shadow: RwLock<Option<ShadowSlot>>,
}

impl SharedIndex {
    /// Publish `index` as generation 1 and start serving it.
    pub fn new(mut index: ScoreIndex) -> Self {
        index.set_generation(1);
        SharedIndex {
            current: RwLock::new(Arc::new(index)),
            generation: AtomicU64::new(1),
            shadow: RwLock::new(None),
        }
    }

    /// Snapshot the currently published index. The returned `Arc` stays
    /// valid (and immutable) even if a new index is published while the
    /// caller is still using it.
    pub fn load(&self) -> Arc<ScoreIndex> {
        // A poisoned lock only means some thread panicked while holding
        // it; the cell holds a bare `Arc` that is either the old or the
        // new index — never a torn value — so keep serving.
        // lint: allow(BLOCKING-IN-EVENT-LOOP) read lock over an Arc clone; the only writer is the rare generation publish, which holds it for one pointer swap
        Arc::clone(&self.current.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Atomically replace the published index, stamping the next
    /// generation. In-flight requests keep their old snapshot; new
    /// requests see the new index.
    pub fn publish(&self, mut index: ScoreIndex) -> u64 {
        // Chaos site: stretch the window between taking the write lock
        // and installing the index, to let racing publishers pile up.
        failpoint!("swap.publish");
        // Stamp the generation while holding the write lock: concurrent
        // publishers then install indexes in generation order, so the
        // winning index always carries the highest generation and
        // `generation()` never runs ahead of what readers can load.
        // Same poisoning argument as `load`: the `Arc` swap below is the
        // only write and cannot be observed half-done.
        // lint: allow(BLOCKING-IN-EVENT-LOOP) publish happens at most once per index rebuild; the critical section is a generation stamp plus one Arc swap
        let mut current = self.current.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let g = self.generation.fetch_add(1, Ordering::SeqCst) + 1;
        index.set_generation(g);
        *current = Arc::new(index);
        g
    }

    /// Generation of the most recently published index.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    fn shadow_read(&self) -> std::sync::RwLockReadGuard<'_, Option<ShadowSlot>> {
        // Same poisoning argument as `load`: the slot is replaced whole,
        // never mutated in place, so a panicking holder cannot tear it.
        // lint: allow(BLOCKING-IN-EVENT-LOOP) shadow slot reads are short Option peeks; writers hold the lock only to swap the slot during rare stage/promote
        self.shadow.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn shadow_write(&self) -> std::sync::RwLockWriteGuard<'_, Option<ShadowSlot>> {
        // lint: allow(BLOCKING-IN-EVENT-LOOP) taken only at stage/decide time (bounded by rebuild frequency), never per request; holders swap the slot and release
        self.shadow.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Stage `candidate` for shadow evaluation under `thresholds`,
    /// replacing any earlier undecided candidate. Returns the
    /// provisional generation the candidate will carry if promoted.
    /// Staging never touches the live index: until
    /// [`SharedIndex::try_promote_shadow`] succeeds, `load()` keeps
    /// returning the current generation.
    pub fn stage_shadow(&self, mut candidate: ScoreIndex, thresholds: ShadowThresholds) -> u64 {
        let provisional = self.generation() + 1;
        candidate.set_generation(provisional);
        *self.shadow_write() = Some(ShadowSlot {
            candidate: Some(Arc::new(candidate)),
            candidate_generation: provisional,
            state: Arc::new(ShadowState::new()),
            thresholds,
        });
        provisional
    }

    /// Whether a shadow candidate is currently staged.
    pub fn shadow_active(&self) -> bool {
        self.shadow_read().is_some()
    }

    /// Snapshot the staged candidate's report, if any.
    pub fn shadow_report(&self) -> Option<ShadowReport> {
        let guard = self.shadow_read();
        let slot = guard.as_ref()?;
        Some(slot.state.report(self.generation(), slot.candidate_generation))
    }

    /// The `/shadow` endpoint body: the full report plus thresholds and
    /// failures while a candidate is staged, `{"active": false}` otherwise.
    pub fn shadow_json(&self) -> Value {
        let guard = self.shadow_read();
        match guard.as_ref() {
            None => ObjectBuilder::new().field("active", false).build(),
            Some(slot) => slot
                .state
                .report(self.generation(), slot.candidate_generation)
                .to_json(&slot.thresholds),
        }
    }

    /// Drop the staged candidate (and its report) without deciding.
    pub fn clear_shadow(&self) {
        *self.shadow_write() = None;
    }

    /// Mirror one answered request to the staged candidate, if there is
    /// one still pending. This runs strictly *after* the live response:
    /// a mirror fault only bumps `mirror_errors`, a mirror panic poisons
    /// the slot (which then auto-rejects), and neither is ever visible
    /// to the client. Returns the newly published generation when this
    /// mirror pushed the candidate over its `min_mirrored` threshold and
    /// the auto-decision promoted it.
    pub fn mirror_if_shadowing(
        &self,
        live: &ScoreIndex,
        target: &str,
        live_latency_us: u64,
    ) -> Option<u64> {
        let decide = {
            let guard = self.shadow_read();
            let slot = guard.as_ref()?;
            if slot.state.decision() != Decision::Pending || slot.state.poisoned() {
                return None;
            }
            let candidate = slot.candidate.as_ref()?;
            let started = Instant::now();
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                slot.state.mirror_one(target, live, candidate)
            }));
            match outcome {
                Ok(true) => {
                    let us = started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
                    slot.state.note_latency(us, live_latency_us);
                }
                Ok(false) => slot.state.note_mirror_error(),
                Err(_) => slot.state.poison(),
            }
            // Decide as soon as the evidence bar is met — or right away
            // on poison, so a broken candidate is loudly rejected rather
            // than silently pending forever.
            slot.state.poisoned() || slot.state.mirrored() >= slot.thresholds.min_mirrored
        };
        if decide {
            self.try_promote_shadow()
        } else {
            None
        }
    }

    /// Evaluate the staged candidate against its thresholds *now* and
    /// decide: promote (publish it as the next generation) or reject
    /// (keep the old generation serving; the report with its failure
    /// reasons stays up at `/shadow`). Exactly one caller wins the
    /// decision — concurrent calls and the mirror path's auto-decision
    /// race safely on a CAS. Returns the new generation on promotion.
    ///
    /// Note an under-mirrored candidate fails `min_mirrored` and is
    /// rejected: calling this early is a statement that the evidence
    /// gathered so far is all the evidence there will be.
    pub fn try_promote_shadow(&self) -> Option<u64> {
        let promote = {
            let guard = self.shadow_read();
            let slot = guard.as_ref()?;
            if slot.state.decision() != Decision::Pending {
                return None;
            }
            let report = slot.state.report(self.generation(), slot.candidate_generation);
            let pass = report.failures(&slot.thresholds).is_empty();
            let to = if pass { Decision::Promoted } else { Decision::Rejected };
            if !slot.state.claim_decision(to) {
                return None; // another caller decided first
            }
            pass
        };
        if !promote {
            return None;
        }
        // This caller won the promotion: move the candidate out. The
        // write lock waits out every in-flight mirror (mirrors hold the
        // read lock for the duration of the mirror), after which the
        // slot holds the only reference to the candidate.
        let candidate = self.shadow_write().as_mut()?.candidate.take()?;
        let index = match Arc::try_unwrap(candidate) {
            Ok(index) => index,
            // Defensive only — no code path clones the candidate Arc out
            // of the slot. Rebuilding keeps promotion correct even if
            // one ever does.
            Err(arc) => ScoreIndex::build(Arc::clone(arc.corpus()), arc.scores().to_vec()),
        };
        Some(self.publish(index))
    }
}

/// A batch submitted to the [`Reindexer`]. `seq` is the WAL sequence
/// number (0 when running without a state directory); the journal lock
/// is held across append **and** send, so channel order equals sequence
/// order and "everything folded so far" is always a WAL prefix.
enum Job {
    Batch { batch: Vec<Article>, seq: u64 },
    Stop,
}

/// Why [`Reindexer::submit`] rejected a batch.
#[derive(Debug)]
pub enum SubmitError {
    /// The write-ahead journal could not durably record the batch; it
    /// was **not** accepted and will not be ranked.
    Journal(StateError),
    /// The reindex thread is gone (it panicked or was shut down). With a
    /// state directory the batch **is** durably journaled and will be
    /// folded in on the next restart; without one it was dropped.
    ThreadDead {
        /// Whether the batch survives in the journal.
        journaled: bool,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Journal(e) => write!(f, "batch not accepted: {e}"),
            SubmitError::ThreadDead { journaled: true } => {
                write!(f, "reindex thread is dead; batch journaled for next restart")
            }
            SubmitError::ThreadDead { journaled: false } => {
                write!(f, "reindex thread is dead; batch dropped")
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Configuration for the durable restart path
/// ([`Reindexer::start_durable`]).
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Directory holding `snapshot.snap` and `wal.log`.
    pub state_dir: PathBuf,
    /// Publish a fresh snapshot (and rotate the journal) after this many
    /// folded batches. Restart replay cost is bounded by this window.
    pub snapshot_every: u64,
}

impl DurableOptions {
    /// Durable state under `dir` with the default snapshot cadence.
    pub fn new(dir: impl Into<PathBuf>) -> DurableOptions {
        DurableOptions { state_dir: dir.into(), snapshot_every: 8 }
    }
}

/// What [`Reindexer::start_durable`] found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Whether serving state was restored from a snapshot (otherwise
    /// this was a cold start: full rank, then initial snapshot).
    pub restored_from_snapshot: bool,
    /// Content-derived generation of the snapshot that was loaded or —
    /// on a cold start — written.
    pub snapshot_generation: u64,
    /// Journal batches replayed on top of the snapshot.
    pub replayed_batches: usize,
    /// Articles across those batches.
    pub replayed_articles: usize,
    /// Whether the journal had a torn tail (a crash mid-append; the torn
    /// record was never acknowledged and is discarded).
    pub torn_tail: bool,
}

/// Shared durable-state plumbing between `submit` (journal-then-send)
/// and the reindex thread (snapshot-on-publish + journal rotation).
struct Durable {
    dir: PathBuf,
    wal: Mutex<Wal>,
    snapshot_every: u64,
}

/// Background re-ranking thread: owns an [`IncrementalRanker`], consumes
/// article batches from a channel, and publishes a fresh [`ScoreIndex`]
/// into the [`SharedIndex`] after each batch. Serving never pauses — the
/// expensive solve and index build happen entirely off the read path.
pub struct Reindexer {
    tx: Sender<Job>,
    handle: JoinHandle<IncrementalRanker>,
    batches_published: Arc<AtomicU64>,
    durable: Option<Arc<Durable>>,
}

impl Reindexer {
    /// Rank `corpus` from scratch, publish generation 1 into a fresh
    /// [`SharedIndex`], and start the background thread. No durability:
    /// accepted batches live only in memory (see
    /// [`Reindexer::start_durable`] for the crash-safe path).
    ///
    /// `on_publish` runs on the background thread after every successful
    /// publication (e.g. to bump a swap metric).
    pub fn start(
        config: QRankConfig,
        corpus: Corpus,
        on_publish: impl Fn(u64) + Send + 'static,
    ) -> (Arc<SharedIndex>, Reindexer) {
        let ranker = IncrementalRanker::new(config, corpus);
        Self::spawn(ranker, None, None, on_publish)
    }

    /// Like [`Reindexer::start`], but every rebuilt index is **staged as
    /// a shadow candidate** under `gate` instead of being published
    /// directly: live traffic is mirrored to it, and only a candidate
    /// whose [`ShadowReport`] passes the thresholds is promoted (by the
    /// mirror path's auto-decision once `min_mirrored` is reached, or by
    /// an explicit [`SharedIndex::try_promote_shadow`]). A candidate
    /// that fails is rejected loudly — the old generation keeps serving
    /// and `/shadow` explains why.
    ///
    /// `on_publish` fires at *staging* time with the provisional
    /// generation; actual promotion is observable via
    /// `SharedIndex::generation()` or the `index_swaps` metric.
    pub fn start_gated(
        config: QRankConfig,
        corpus: Corpus,
        gate: ShadowThresholds,
        on_publish: impl Fn(u64) + Send + 'static,
    ) -> (Arc<SharedIndex>, Reindexer) {
        let ranker = IncrementalRanker::new(config, corpus);
        Self::spawn(ranker, Some(gate), None, on_publish)
    }

    /// Start with a durable state directory: restore from
    /// `dir/snapshot.snap` if present (replaying `dir/wal.log` on top),
    /// otherwise rank `corpus` cold and write the initial snapshot. In
    /// both cases generation 1 of the [`SharedIndex`] covers every
    /// durably journaled batch, and every subsequent
    /// [`Reindexer::submit`] journals its batch before the reindex
    /// thread ever sees it.
    ///
    /// `corpus` is the cold-start corpus; when a snapshot exists it is
    /// ignored (the snapshot is authoritative). `config` must match the
    /// config the snapshot was ranked under — it is part of the
    /// deployment, not the durable state.
    ///
    /// Errors during recovery (unreadable snapshot, unwritable journal)
    /// fail startup cleanly rather than serving state of unknown
    /// provenance.
    pub fn start_durable(
        config: QRankConfig,
        corpus: Corpus,
        opts: DurableOptions,
        on_publish: impl Fn(u64) + Send + 'static,
    ) -> snapshot::Result<(Arc<SharedIndex>, Reindexer, RecoveryReport)> {
        let dir = &opts.state_dir;
        let has_snapshot = snapshot::snapshot_path(dir).exists();
        let (ranker, wal, report) = if has_snapshot {
            let restored = snapshot::load_snapshot(dir)?;
            let replayed = wal::replay(dir, restored.wal_seq)?;
            let mut ranker = IncrementalRanker::restore(config, restored.corpus, restored.result);
            let replayed_batches = replayed.records.len();
            let replayed_articles: usize = replayed.records.iter().map(|r| r.batch.len()).sum();
            let mut generation = restored.generation;
            let wal = if replayed_batches > 0 {
                // Fold every replayed record as its own extend — the
                // same deterministic pipeline a rebuild from the journal
                // inputs would run, batch for batch, so the recovered
                // scores are bit-identical to that rebuild (not merely
                // within solver tolerance). Generation 1 then already
                // covers the whole journal.
                for rec in &replayed.records {
                    let grown = grow_corpus(ranker.corpus(), rec.batch.clone());
                    ranker.extend(grown);
                }
                // Re-snapshot so the next restart skips the replay (and
                // the journal rotates down to empty).
                let seq = replayed.high_water();
                generation = snapshot::write_snapshot(dir, ranker.corpus(), ranker.result(), seq)?;
                wal::rotate(dir, seq)?
            } else {
                Wal::resume(dir, &replayed)?
            };
            let report = RecoveryReport {
                restored_from_snapshot: true,
                snapshot_generation: generation,
                replayed_batches,
                replayed_articles,
                torn_tail: replayed.torn_tail,
            };
            (ranker, wal, report)
        } else {
            let ranker = IncrementalRanker::new(config, corpus);
            let generation = snapshot::write_snapshot(dir, ranker.corpus(), ranker.result(), 0)?;
            let wal = Wal::create(dir, 0)?;
            let report = RecoveryReport {
                restored_from_snapshot: false,
                snapshot_generation: generation,
                replayed_batches: 0,
                replayed_articles: 0,
                torn_tail: false,
            };
            (ranker, wal, report)
        };
        let durable = Arc::new(Durable {
            dir: opts.state_dir.clone(),
            wal: Mutex::new(wal),
            snapshot_every: opts.snapshot_every.max(1),
        });
        let (shared, reindexer) = Self::spawn(ranker, None, Some(durable), on_publish);
        Ok((shared, reindexer, report))
    }

    fn spawn(
        ranker: IncrementalRanker,
        gate: Option<ShadowThresholds>,
        durable: Option<Arc<Durable>>,
        on_publish: impl Fn(u64) + Send + 'static,
    ) -> (Arc<SharedIndex>, Reindexer) {
        let shared = Arc::new(SharedIndex::new(Self::index_of(&ranker)));
        let (tx, rx) = mpsc::channel::<Job>();
        let published = Arc::new(AtomicU64::new(0));
        let handle = {
            let shared = Arc::clone(&shared);
            let published = Arc::clone(&published);
            let durable = durable.clone();
            std::thread::Builder::new()
                .name("scholar-reindex".into())
                .spawn(move || Self::run(ranker, rx, shared, published, on_publish, gate, durable))
                // lint: allow(HOTPATH-PANIC) producer-side startup, before any request is accepted; no counter exists yet to record into
                .expect("spawn reindexer thread")
        };
        (Arc::clone(&shared), Reindexer { tx, handle, batches_published: published, durable })
    }

    fn index_of(ranker: &IncrementalRanker) -> ScoreIndex {
        ScoreIndex::build(Arc::new(ranker.corpus().clone()), ranker.result().article_scores.clone())
    }

    fn run(
        mut ranker: IncrementalRanker,
        rx: Receiver<Job>,
        shared: Arc<SharedIndex>,
        published: Arc<AtomicU64>,
        on_publish: impl Fn(u64),
        gate: Option<ShadowThresholds>,
        durable: Option<Arc<Durable>>,
    ) -> IncrementalRanker {
        // Batches folded since the last snapshot; at `snapshot_every`
        // the thread re-snapshots and rotates the journal.
        let mut since_snapshot = 0u64;
        while let Ok(Job::Batch { mut batch, mut seq }) = rx.recv() {
            // Coalesce any batches that queued up while the last solve
            // ran: one warm solve over the union beats one per batch. A
            // Stop seen here still processes the batch in hand first —
            // shutdown() promises the accepted work gets published.
            let mut stopping = false;
            let mut coalesced = 1u64;
            // Chaos site: hold the thread mid-coalesce so a Stop (or more
            // batches) reliably lands while a batch is already in hand.
            failpoint!("reindex.coalesce");
            loop {
                match rx.try_recv() {
                    Ok(Job::Batch { batch: more, seq: s }) => {
                        batch.extend(more);
                        seq = s;
                        coalesced += 1;
                    }
                    Ok(Job::Stop) | Err(TryRecvError::Disconnected) => {
                        stopping = true;
                        break;
                    }
                    Err(TryRecvError::Empty) => break,
                }
            }
            let grown = grow_corpus(ranker.corpus(), batch);
            ranker.extend(grown);
            // Chaos site: delay between solve and publish, widening the
            // window where readers still see the previous generation.
            failpoint!("reindex.publish");
            let g = match &gate {
                // Shadow-gated: the rebuilt index is only *staged*; live
                // traffic mirrored against it decides the promotion.
                Some(thresholds) => {
                    shared.stage_shadow(Self::index_of(&ranker), thresholds.clone())
                }
                None => shared.publish(Self::index_of(&ranker)),
            };
            published.fetch_add(coalesced, Ordering::SeqCst);
            on_publish(g);
            if let Some(d) = &durable {
                since_snapshot += coalesced;
                if since_snapshot >= d.snapshot_every {
                    // `seq` is the last journal record folded into this
                    // publish; channel order equals sequence order, so
                    // the snapshot covers the journal prefix `..=seq`.
                    // Failure here must not take serving down — the
                    // journal still holds everything, so durability is
                    // intact and only restart speed degrades.
                    match Self::snapshot_and_rotate(d, &ranker, seq) {
                        Ok(()) => since_snapshot = 0,
                        Err(e) => eprintln!("scholar-serve: snapshot failed (will retry): {e}"),
                    }
                }
            }
            if stopping {
                break;
            }
        }
        ranker
    }

    /// Publish a snapshot covering journal prefix `..=seq`, then rotate
    /// the journal down to the unfolded suffix. Ordering matters: the
    /// snapshot must be durable under its final name **before** any
    /// journal record it covers is dropped; a crash between the two
    /// steps leaves a longer journal than necessary, never a gap.
    fn snapshot_and_rotate(
        d: &Durable,
        ranker: &IncrementalRanker,
        seq: u64,
    ) -> snapshot::Result<()> {
        snapshot::write_snapshot(&d.dir, ranker.corpus(), ranker.result(), seq)?;
        let mut wal = d.wal.lock().unwrap_or_else(PoisonError::into_inner);
        *wal = wal::rotate(&d.dir, seq)?;
        Ok(())
    }

    /// Durably journal (when running with a state directory) and queue a
    /// batch of new articles for ranking and publication. Returns as soon
    /// as the batch is accepted — journaled and enqueued; the publish
    /// happens asynchronously.
    ///
    /// `Err(SubmitError::Journal)` means the batch was **not** accepted.
    /// `Err(SubmitError::ThreadDead)` means the reindex thread is gone;
    /// the error says whether the batch survives in the journal (it will
    /// be folded in on the next restart) or was dropped. Either way the
    /// caller's thread — typically the control plane — stays alive.
    pub fn submit(&self, batch: Vec<Article>) -> Result<(), SubmitError> {
        match &self.durable {
            Some(d) => {
                let mut wal = d.wal.lock().unwrap_or_else(PoisonError::into_inner);
                let seq = wal.append(&batch).map_err(SubmitError::Journal)?;
                // Send while still holding the journal lock: sequence
                // order must equal channel order for "folded so far" to
                // stay a journal prefix.
                self.tx
                    .send(Job::Batch { batch, seq })
                    .map_err(|_| SubmitError::ThreadDead { journaled: true })
            }
            None => self
                .tx
                .send(Job::Batch { batch, seq: 0 })
                .map_err(|_| SubmitError::ThreadDead { journaled: false }),
        }
    }

    /// Number of batches ranked and published so far.
    pub fn batches_published(&self) -> u64 {
        self.batches_published.load(Ordering::SeqCst)
    }

    /// Stop the thread after it finishes the batch in hand, returning the
    /// final ranker state (corpus + scores).
    pub fn shutdown(self) -> IncrementalRanker {
        let _ = self.tx.send(Job::Stop);
        // lint: allow(HOTPATH-PANIC) control-plane join: re-raising a background panic at shutdown is the contract, not a request-path hazard
        self.handle.join().expect("reindexer thread panicked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TopQuery;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::model::{ArticleId, AuthorId, VenueId};
    use std::time::{Duration, Instant};

    fn batch_article(i: usize, refs: Vec<ArticleId>) -> Article {
        Article {
            id: ArticleId(0),
            title: format!("swap-batch-{i}"),
            year: 2012,
            venue: VenueId(0),
            authors: vec![AuthorId(0)],
            references: refs,
            merit: None,
        }
    }

    #[test]
    fn publish_bumps_generation_and_readers_keep_snapshots() {
        let corpus = Arc::new(Preset::Tiny.generate(21));
        let scores = vec![1.0 / corpus.num_articles() as f64; corpus.num_articles()];
        let shared = SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone()));
        let old = shared.load();
        assert_eq!(old.generation(), 1);

        let g = shared.publish(ScoreIndex::build(Arc::clone(&corpus), scores));
        assert_eq!(g, 2);
        assert_eq!(shared.generation(), 2);
        // The old snapshot is still fully usable.
        assert_eq!(old.generation(), 1);
        assert_eq!(old.num_articles(), corpus.num_articles());
        assert_eq!(shared.load().generation(), 2);
    }

    #[test]
    fn reindexer_publishes_grown_corpus() {
        let corpus = Preset::Tiny.generate(22);
        let n0 = corpus.num_articles();
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        assert_eq!(shared.load().num_articles(), n0);

        reindexer
            .submit(vec![
                batch_article(0, vec![ArticleId(0), ArticleId(3)]),
                batch_article(1, vec![ArticleId(1)]),
            ])
            .unwrap();
        // Wait for the asynchronous publish (bounded, normally instant).
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        let idx = shared.load();
        assert_eq!(idx.num_articles(), n0 + 2);
        assert!(idx.generation() >= 2);
        // The published index answers queries over the grown corpus.
        let hits = idx.top(&TopQuery { k: 5, ..Default::default() });
        assert_eq!(hits.len(), 5);

        let ranker = reindexer.shutdown();
        assert_eq!(ranker.corpus().num_articles(), n0 + 2);
    }

    #[test]
    fn shutdown_publishes_the_batch_in_hand() {
        // Regression: a Stop that arrived while the reindexer was
        // coalescing used to discard the batch already dequeued,
        // breaking shutdown()'s finish-the-batch guarantee. Submitting
        // and immediately shutting down queues [Batch, Stop] before the
        // thread wakes, so the Stop is (almost always) seen mid-coalesce
        // — and the batch must still be ranked and published.
        let corpus = Preset::Tiny.generate(24);
        let n0 = corpus.num_articles();
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        reindexer.submit(vec![batch_article(0, vec![ArticleId(1)])]).unwrap();
        let ranker = reindexer.shutdown();
        assert_eq!(ranker.corpus().num_articles(), n0 + 1, "accepted batch was dropped");
        let idx = shared.load();
        assert_eq!(idx.num_articles(), n0 + 1);
        assert_eq!(idx.generation(), 2);
    }

    fn state_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("scholar-swap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_restart_recovers_journaled_batches() {
        let dir = state_dir("restart");
        let corpus = Preset::Tiny.generate(25);
        let n0 = corpus.num_articles();

        // Cold start: full rank, initial snapshot, fresh journal.
        let (shared, reindexer, report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&dir),
            |_| {},
        )
        .unwrap();
        assert!(!report.restored_from_snapshot);
        assert_eq!(shared.load().num_articles(), n0);
        reindexer.submit(vec![batch_article(0, vec![ArticleId(0)])]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        reindexer.shutdown();

        // Restart: the batch outlived the process via the journal, and
        // generation 1 of the restarted server already covers it.
        let (shared, reindexer, report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus.clone(),
            DurableOptions::new(&dir),
            |_| {},
        )
        .unwrap();
        assert!(report.restored_from_snapshot);
        assert_eq!(report.replayed_batches, 1);
        assert_eq!(report.replayed_articles, 1);
        let idx = shared.load();
        assert_eq!(idx.generation(), 1);
        assert_eq!(idx.num_articles(), n0 + 1);
        // Replayed state is bit-identical to rebuilding from the same
        // inputs through the same pipeline (cold rank of the base, then
        // one extend per journaled batch).
        let mut oracle = IncrementalRanker::new(QRankConfig::default(), corpus.clone());
        let grown = grow_corpus(oracle.corpus(), vec![batch_article(0, vec![ArticleId(0)])]);
        oracle.extend(grown);
        assert_eq!(
            idx.scores(),
            oracle.result().article_scores.as_slice(),
            "replayed scores must equal the pipeline rebuild bit for bit"
        );
        reindexer.shutdown();

        // Replay re-snapshots: a third start replays nothing.
        let (shared, reindexer, report) = Reindexer::start_durable(
            QRankConfig::default(),
            corpus,
            DurableOptions::new(&dir),
            |_| {},
        )
        .unwrap();
        assert!(report.restored_from_snapshot);
        assert_eq!(report.replayed_batches, 0);
        assert_eq!(shared.load().num_articles(), n0 + 1);
        reindexer.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_cadence_rotates_the_journal() {
        let dir = state_dir("cadence");
        let corpus = Preset::Tiny.generate(26);
        let opts = DurableOptions { state_dir: dir.clone(), snapshot_every: 1 };
        let (_shared, reindexer, _) =
            Reindexer::start_durable(QRankConfig::default(), corpus, opts, |_| {}).unwrap();
        reindexer.submit(vec![batch_article(0, vec![ArticleId(0)])]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        let ranker = reindexer.shutdown();
        // snapshot_every = 1 → the publish snapshotted and rotated; the
        // journal now starts at the folded high-water mark and is empty.
        let replayed = crate::wal::replay(&dir, 0).unwrap();
        assert_eq!(replayed.base_seq, 1, "journal must have rotated past seq 1");
        assert!(replayed.records.is_empty());
        // And the rotated snapshot alone reproduces the final state.
        let restored = crate::snapshot::load_snapshot(&dir).unwrap();
        assert_eq!(restored.wal_seq, 1);
        assert_eq!(&restored.corpus, ranker.corpus());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn published_scores_match_fresh_rank_of_same_corpus() {
        // Zero drift: what the swap layer publishes must equal a from-
        // scratch rank of the identical grown corpus.
        let corpus = Preset::Tiny.generate(23);
        let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
        reindexer.submit(vec![batch_article(0, vec![ArticleId(2)])]).unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < 1 {
            assert!(Instant::now() < deadline, "reindexer never published");
            std::thread::sleep(Duration::from_millis(5));
        }
        let idx = shared.load();
        let cold = qrank::QRank::default().run(idx.corpus());
        let drift: f64 = idx
            .scores()
            .iter()
            .zip(&cold.article_scores)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(drift < 1e-9, "published scores drifted {drift} from cold rank");
        reindexer.shutdown();
    }
}
