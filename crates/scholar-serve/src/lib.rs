#![warn(missing_docs)]

//! Query serving for query-independent rankings.
//!
//! The paper's central observation — article importance can be computed
//! *independently of any query* — turns serving into an indexing problem:
//! all the ranking work happens at publish time, and a request is a
//! prefix scan. This crate is the subsystem that exploits that:
//!
//! - [`ScoreIndex`] (in [`index`]): an immutable, query-ready index over
//!   one `(corpus, scores)` pair — globally sorted order, per-venue /
//!   per-author / per-year posting lists, and an `explain`-style
//!   per-article lookup. Filtered and unfiltered top-k answers match
//!   [`scholar_rank::scores::top_k`] exactly, ties included.
//! - [`SharedIndex`] + [`Reindexer`] (in [`swap`]): zero-downtime
//!   publication. Queries snapshot an `Arc` of the current index; a
//!   background thread folds corpus batches through
//!   [`qrank::IncrementalRanker`] and atomically publishes fresh
//!   generations.
//! - [`server`] + [`http`]: a std-only HTTP/1.1 front end — fixed worker
//!   pool, bounded accept queue that sheds load with `503`, per-request
//!   read timeouts, and graceful drain on shutdown. Endpoints:
//!   `GET /top`, `GET /article/{id}`, `GET /health`, `GET /metrics`.
//! - [`Metrics`] (in [`metrics`]): lock-free counters and a log-spaced
//!   latency histogram behind `GET /metrics`.
//!
//! ```no_run
//! use scholar_serve::{serve, Metrics, Reindexer, ServeConfig};
//! use std::sync::Arc;
//!
//! let corpus = scholar_corpus::generator::Preset::Tiny.generate(7);
//! let (shared, reindexer) =
//!     Reindexer::start(qrank::QRankConfig::default(), corpus, |_| {});
//! let metrics = Arc::new(Metrics::new());
//! let mut server = serve(shared, metrics, &ServeConfig::default()).unwrap();
//! println!("listening on {}", server.addr());
//! // ... submit batches via `reindexer.submit(...)`; queries never block ...
//! server.shutdown();
//! reindexer.shutdown();
//! ```

/// Named fault-injection site (see `scholar-testkit`). With the
/// `failpoints` feature on, evaluates the site in the testkit registry:
/// the unit form can delay or panic; the two-argument form additionally
/// runs its second argument (typically `return Err(..)` or `continue`)
/// when the site's schedule says *trigger*. Without the feature the
/// macro expands to nothing at all — no branch, no registry, no
/// dependency.
#[cfg(feature = "failpoints")]
macro_rules! failpoint {
    ($site:literal) => {
        let _ = ::scholar_testkit::fp::hit($site);
    };
    ($site:literal, $on_trigger:expr) => {
        if ::scholar_testkit::fp::hit($site) {
            $on_trigger
        }
    };
}
#[cfg(not(feature = "failpoints"))]
macro_rules! failpoint {
    ($site:literal) => {};
    ($site:literal, $on_trigger:expr) => {};
}

#[cfg(target_os = "linux")]
mod epoll;
pub mod http;
pub mod index;
pub mod metrics;
pub mod record;
pub mod server;
pub mod shadow;
pub mod snapshot;
pub mod swap;
#[cfg(target_os = "linux")]
pub(crate) mod sys;
pub mod wal;

pub use index::{ArticleDetail, Hit, ScoreIndex, TopQuery};
pub use metrics::Metrics;
pub use record::{read_rlog, write_rlog, RecordLog, Recorder, ReqRecord};
pub use server::{respond, serve, Backend, ServeConfig, ServerHandle};
pub use shadow::{ShadowReport, ShadowThresholds};
pub use snapshot::{load_snapshot, write_snapshot, RestoredState, StateError};
pub use swap::{DurableOptions, RecoveryReport, Reindexer, SharedIndex, SubmitError};
pub use wal::{Replay, Wal};
