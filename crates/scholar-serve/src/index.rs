//! The query-ready [`ScoreIndex`]: an immutable, precomputed view of one
//! ranking over one corpus.
//!
//! The paper's scores are query-independent, which makes the serving
//! problem an indexing problem: sort once at publish time, answer every
//! request by slicing. The index holds the globally score-sorted article
//! order plus per-venue / per-author / per-year posting lists, each
//! pre-sorted by the *same* comparator as
//! [`scholar_rank::scores::top_k`] (score descending, dense id ascending
//! on ties), so a filtered answer is a prefix scan of the smallest
//! applicable posting list instead of an O(n log n) re-sort per request.

use scholar_corpus::model::Year;
use scholar_corpus::{ArticleId, Corpus};
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;

/// Compare two articles the way the published ranking does: higher score
/// first, ties broken by smaller dense id (the [`top_k`] contract).
///
/// [`top_k`]: scholar_rank::scores::top_k
#[inline]
fn ranking_cmp(scores: &[f64], a: u32, b: u32) -> std::cmp::Ordering {
    // lint: allow(HOTPATH-PANIC) comparator ids are drawn from 0..scores.len() ranges built in build()
    let (sa, sb) = (scores[a as usize], scores[b as usize]);
    sb.partial_cmp(&sa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
}

/// A top-k request against the index. `None` filters match everything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TopQuery {
    /// How many results to return (fewer if the filter matches fewer).
    pub k: usize,
    /// Restrict to one venue (dense id).
    pub venue: Option<u32>,
    /// Restrict to articles with this author on the byline (dense id).
    pub author: Option<u32>,
    /// Earliest publication year, inclusive.
    pub year_min: Option<Year>,
    /// Latest publication year, inclusive.
    pub year_max: Option<Year>,
}

/// One result row of a [`TopQuery`].
#[derive(Debug, Clone, PartialEq)]
pub struct Hit {
    /// Global rank (1 = best article of the whole corpus, not of the
    /// filtered subset).
    pub rank: usize,
    /// The article.
    pub id: ArticleId,
    /// Its score in the published ranking.
    pub score: f64,
}

/// Everything the index knows about one article: the `explain`-style
/// per-article lookup.
#[derive(Debug, Clone)]
pub struct ArticleDetail {
    /// The article.
    pub id: ArticleId,
    /// Global rank, 1-based.
    pub rank: usize,
    /// Score in the published ranking.
    pub score: f64,
    /// Fraction of articles ranked at or below this one (1.0 = best).
    pub percentile: f64,
    /// Ranking neighbors: up to `want` articles directly above and below
    /// in the global order, including this one, in rank order.
    pub neighbors: Vec<Hit>,
}

/// An immutable, query-ready index over one `(corpus, scores)` pair.
///
/// Build cost is O(n log n) once; after that unfiltered top-k is O(k),
/// venue/author-filtered top-k is a prefix scan of that entity's posting
/// list, and year-ranged top-k is a k-way merge over the per-year lists
/// (O((k + years) · log years)). The index owns an `Arc` of the corpus so
/// responses can render titles and names without a side lookup.
#[derive(Debug)]
pub struct ScoreIndex {
    corpus: Arc<Corpus>,
    scores: Vec<f64>,
    /// Article indices sorted by `ranking_cmp`: the published order.
    order: Vec<u32>,
    /// Inverse of `order`: `rank_of[article] = position in order`.
    rank_of: Vec<u32>,
    /// Per-venue posting lists, each sorted by `ranking_cmp`.
    by_venue: Vec<Vec<u32>>,
    /// Per-author posting lists, each sorted by `ranking_cmp`.
    by_author: Vec<Vec<u32>>,
    /// Per-year posting lists sorted by year, each list sorted by
    /// `ranking_cmp`. Years are usually a few decades, so a sorted vec
    /// beats a map.
    by_year: Vec<(Year, Vec<u32>)>,
    /// Venue name -> dense id, for resolving query filters.
    venue_ids: HashMap<String, u32>,
    /// Author name -> dense id.
    author_ids: HashMap<String, u32>,
    /// Pre-rendered JSON hit objects, concatenated in article-id order.
    /// Every field of a hit (rank, id, score, title, year, venue) is
    /// fixed once the index is built, so the event loop's response path
    /// can memcpy [`Self::hit_fragment`] slices instead of re-serializing
    /// per request.
    frag_bytes: Vec<u8>,
    /// `frag_bounds[a]..frag_bounds[a + 1]` bounds article `a`'s
    /// fragment in `frag_bytes` (`n + 1` entries).
    frag_bounds: Vec<usize>,
    /// Monotonic publish generation, stamped by the swap layer.
    generation: u64,
}

impl ScoreIndex {
    /// Build the index from a corpus and its published score vector
    /// (one score per article, as produced by any
    /// [`scholar_rank::Ranker`] or the QRank engine).
    pub fn build(corpus: Arc<Corpus>, scores: Vec<f64>) -> Self {
        let n = corpus.num_articles();
        assert_eq!(scores.len(), n, "one score per article");

        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| ranking_cmp(&scores, a, b));
        let mut rank_of = vec![0u32; n];
        for (pos, &a) in order.iter().enumerate() {
            rank_of[a as usize] = pos as u32; // lint: allow(HOTPATH-PANIC) order holds exactly 0..n
        }

        // Posting lists inherit the global order by construction: walk
        // `order` once and append to each entity's list, so every list is
        // already sorted by the ranking comparator — no per-list sort.
        let mut by_venue: Vec<Vec<u32>> = vec![Vec::new(); corpus.num_venues()];
        let mut by_author: Vec<Vec<u32>> = vec![Vec::new(); corpus.num_authors()];
        let mut year_slots: HashMap<Year, Vec<u32>> = HashMap::new();
        for &a in &order {
            let art = &corpus.articles()[a as usize]; // lint: allow(HOTPATH-PANIC) order holds exactly 0..n
                                                      // lint: allow(HOTPATH-PANIC) corpus ids are dense: venue.index() < num_venues by the Corpus contract
            by_venue[art.venue.index()].push(a);
            for &u in &art.authors {
                by_author[u.index()].push(a); // lint: allow(HOTPATH-PANIC) author ids are dense, < num_authors
            }
            year_slots.entry(art.year).or_default().push(a);
        }
        let mut by_year: Vec<(Year, Vec<u32>)> = year_slots.into_iter().collect();
        by_year.sort_by_key(|(y, _)| *y);

        let venue_ids =
            corpus.venues().iter().map(|v| (v.name.clone(), v.id.0)).collect::<HashMap<_, _>>();
        let author_ids =
            corpus.authors().iter().map(|u| (u.name.clone(), u.id.0)).collect::<HashMap<_, _>>();

        // Pre-render every hit object once. Rendering goes through the
        // same sjson builder as the request-time JSON paths, so a
        // fragment is byte-identical to what per-request serialization
        // would have produced.
        let mut frag_bytes = Vec::new();
        let mut frag_bounds = Vec::with_capacity(n + 1);
        frag_bounds.push(0);
        for a in 0..n as u32 {
            // lint: allow(HOTPATH-PANIC) build-time loop over 0..n: articles/rank_of/scores all have length n
            let art = &corpus.articles()[a as usize];
            let obj = sjson::ObjectBuilder::new()
                // lint: allow(HOTPATH-PANIC) same 0..n bound as above
                .field("rank", rank_of[a as usize] as i64 + 1)
                .field("id", a as i64)
                // lint: allow(HOTPATH-PANIC) same 0..n bound as above
                .field("score", scores[a as usize])
                .field("title", art.title.as_str())
                .field("year", art.year)
                .field("venue", corpus.venue(art.venue).name.as_str())
                .build();
            frag_bytes.extend_from_slice(obj.to_string_compact().as_bytes());
            frag_bounds.push(frag_bytes.len());
        }

        ScoreIndex {
            corpus,
            scores,
            order,
            rank_of,
            by_venue,
            by_author,
            by_year,
            venue_ids,
            author_ids,
            frag_bytes,
            frag_bounds,
            generation: 0,
        }
    }

    /// The corpus this index serves.
    pub fn corpus(&self) -> &Arc<Corpus> {
        &self.corpus
    }

    /// The published score of one article.
    ///
    /// # Panics
    /// If `id` is not in this index's corpus.
    pub fn score(&self, id: ArticleId) -> f64 {
        // lint: allow(HOTPATH-PANIC) documented panic contract; the serving endpoints never call this, only tests and benches
        self.scores[id.index()]
    }

    /// The full score vector backing this index.
    pub fn scores(&self) -> &[f64] {
        &self.scores
    }

    /// Number of indexed articles.
    pub fn num_articles(&self) -> usize {
        self.order.len()
    }

    /// The publish generation (0 until the swap layer stamps it).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Stamp the publish generation (used by the swap layer).
    pub(crate) fn set_generation(&mut self, g: u64) {
        self.generation = g;
    }

    /// Resolve a venue name to its dense id.
    pub fn venue_id(&self, name: &str) -> Option<u32> {
        self.venue_ids.get(name).copied()
    }

    /// Resolve an author name to its dense id.
    pub fn author_id(&self, name: &str) -> Option<u32> {
        self.author_ids.get(name).copied()
    }

    /// The article behind a dense id. Callers pass ids drawn from the
    /// index's own `order` / posting lists, which `build` populated from
    /// `0..num_articles` — the bound holds by construction.
    #[inline]
    fn art(&self, a: u32) -> &scholar_corpus::model::Article {
        // lint: allow(HOTPATH-PANIC) posting lists only hold dense in-corpus ids < n (see doc comment)
        &self.corpus.articles()[a as usize]
    }

    fn hit(&self, a: u32) -> Hit {
        Hit {
            // lint: allow(HOTPATH-PANIC) rank_of has length n and posting-list ids are < n by construction
            rank: self.rank_of[a as usize] as usize + 1,
            id: ArticleId(a),
            // lint: allow(HOTPATH-PANIC) scores has length n, same bound as rank_of above
            score: self.scores[a as usize],
        }
    }

    #[inline]
    fn year_ok(&self, a: u32, q: &TopQuery) -> bool {
        let y = self.art(a).year;
        q.year_min.is_none_or(|lo| y >= lo) && q.year_max.is_none_or(|hi| y <= hi)
    }

    /// Answer a top-k query. Results come back in the published order
    /// (score descending, id ascending on ties) and match what
    /// [`scholar_rank::scores::top_k`] would return on the filtered
    /// subset, without re-sorting anything at query time.
    pub fn top(&self, q: &TopQuery) -> Vec<Hit> {
        let mut ids = Vec::new();
        self.top_ids_into(q, &mut ids);
        ids.into_iter().map(|a| self.hit(a)).collect()
    }

    /// Answer a top-k query into a caller-owned scratch vector of dense
    /// article ids, cleared first. Same answer and order as [`Self::top`],
    /// but once the scratch's capacity has warmed up, unfiltered and
    /// entity-filtered queries allocate nothing (year-range merges still
    /// build their heap). This plus [`Self::hit_fragment`] is the event
    /// loop's zero-alloc response path.
    pub fn top_ids_into(&self, q: &TopQuery, out: &mut Vec<u32>) {
        out.clear();
        if q.k == 0 {
            return;
        }
        match (q.venue, q.author) {
            // Entity filter(s): scan the smaller posting list, check the
            // remaining predicates on the fly. Lists are score-ordered,
            // so the first k survivors are the answer.
            (Some(v), Some(u)) => {
                let vl = self.by_venue.get(v as usize).map(Vec::as_slice).unwrap_or(&[]);
                let ul = self.by_author.get(u as usize).map(Vec::as_slice).unwrap_or(&[]);
                if vl.len() <= ul.len() {
                    self.scan_into(vl, q, |a| self.on_byline(a, u), out)
                } else {
                    self.scan_into(ul, q, |a| self.art(a).venue.0 == v, out)
                }
            }
            (Some(v), None) => {
                let vl = self.by_venue.get(v as usize).map(Vec::as_slice).unwrap_or(&[]);
                self.scan_into(vl, q, |_| true, out)
            }
            (None, Some(u)) => {
                let ul = self.by_author.get(u as usize).map(Vec::as_slice).unwrap_or(&[]);
                self.scan_into(ul, q, |_| true, out)
            }
            // Year range only: k-way merge of the per-year lists in
            // range; each is score-ordered, so a heap of list heads
            // yields the global filtered order.
            (None, None) if q.year_min.is_some() || q.year_max.is_some() => {
                self.merge_years_into(q, out)
            }
            // Unfiltered: the first k of the published order.
            (None, None) => out.extend(self.order.iter().take(q.k)),
        }
    }

    /// The pre-rendered JSON hit object for article `a` (empty slice for
    /// an id outside the corpus — callers treat that as the same broken
    /// index condition as a failed per-request render).
    #[inline]
    pub fn hit_fragment(&self, a: u32) -> &[u8] {
        let i = a as usize;
        match (self.frag_bounds.get(i), self.frag_bounds.get(i + 1)) {
            (Some(&start), Some(&end)) => self.frag_bytes.get(start..end).unwrap_or_default(),
            _ => &[],
        }
    }

    /// Is author `u` on article `a`'s byline?
    fn on_byline(&self, a: u32, u: u32) -> bool {
        self.art(a).authors.iter().any(|x| x.0 == u)
    }

    fn scan_into(
        &self,
        list: &[u32],
        q: &TopQuery,
        extra: impl Fn(u32) -> bool,
        out: &mut Vec<u32>,
    ) {
        for &a in list {
            if self.year_ok(a, q) && extra(a) {
                out.push(a);
                if out.len() == q.k {
                    break;
                }
            }
        }
    }

    fn merge_years_into(&self, q: &TopQuery, out: &mut Vec<u32>) {
        // Heads of every in-range year list, keyed so the heap pops the
        // best-ranked article first: BinaryHeap is a max-heap, and
        // `Reverse(rank)` orders by published rank, which already encodes
        // (score desc, id asc).
        use std::cmp::Reverse;
        let lo = self.by_year.partition_point(|(y, _)| q.year_min.is_some_and(|m| *y < m));
        let hi = self.by_year.partition_point(|(y, _)| q.year_max.is_none_or(|m| *y <= m));
        // An inverted range (`year_min > year_max`) yields lo > hi, which
        // would panic as a slice bound — it just matches nothing.
        if lo >= hi {
            return;
        }
        // lint: allow(HOTPATH-PANIC) lo < hi <= by_year.len(): both are partition_point results and the inverted case returned above
        let mut heap: BinaryHeap<Reverse<(u32, usize, usize)>> = self.by_year[lo..hi]
            .iter()
            .enumerate()
            .filter(|(_, (_, list))| !list.is_empty())
            // lint: allow(HOTPATH-PANIC) list[0] exists (empty lists filtered out above); rank_of is length n and lists hold dense ids
            .map(|(li, (_, list))| Reverse((self.rank_of[list[0] as usize], li + lo, 0)))
            .collect();
        while let Some(Reverse((_, li, pos))) = heap.pop() {
            // lint: allow(HOTPATH-PANIC) heap entries carry li < by_year.len() and pos < list.len() — see the pushes below
            let list = &self.by_year[li].1;
            // lint: allow(HOTPATH-PANIC) pos was bounds-checked before the entry was pushed
            out.push(list[pos]);
            if out.len() == q.k {
                break;
            }
            if pos + 1 < list.len() {
                // lint: allow(HOTPATH-PANIC) the line above checks pos + 1 < list.len(); rank_of is length n
                heap.push(Reverse((self.rank_of[list[pos + 1] as usize], li, pos + 1)));
            }
        }
    }

    /// The `explain`-style lookup: rank, score, percentile, and the
    /// articles ranked directly around `id` (`want` on each side).
    pub fn detail(&self, id: ArticleId, want: usize) -> Option<ArticleDetail> {
        let n = self.order.len();
        if id.index() >= n {
            return None;
        }
        // lint: allow(HOTPATH-PANIC) id.index() < n was checked above; rank_of/scores have length n
        let pos = self.rank_of[id.index()] as usize;
        let from = pos.saturating_sub(want);
        let to = (pos + want + 1).min(n);
        Some(ArticleDetail {
            id,
            rank: pos + 1,
            // lint: allow(HOTPATH-PANIC) id.index() < n was checked above
            score: self.scores[id.index()],
            percentile: (n - pos) as f64 / n as f64,
            // lint: allow(HOTPATH-PANIC) from <= pos < n and to is clamped to n, so the slice bounds hold
            neighbors: self.order[from..to].iter().map(|&a| self.hit(a)).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_rank::scores::top_k;
    use scholar_rank::Ranker;

    fn indexed(seed: u64) -> (Arc<Corpus>, ScoreIndex) {
        let corpus = Arc::new(Preset::Tiny.generate(seed));
        let scores = scholar_rank::PageRank::default().rank(&corpus);
        let index = ScoreIndex::build(Arc::clone(&corpus), scores);
        (corpus, index)
    }

    /// Ground truth: run `top_k` over the brute-force filtered subset.
    fn brute_force(corpus: &Corpus, scores: &[f64], q: &TopQuery) -> Vec<u32> {
        let keep: Vec<u32> = (0..corpus.num_articles() as u32)
            .filter(|&a| {
                let art = &corpus.articles()[a as usize];
                q.venue.is_none_or(|v| art.venue.0 == v)
                    && q.author.is_none_or(|u| art.authors.iter().any(|x| x.0 == u))
                    && q.year_min.is_none_or(|lo| art.year >= lo)
                    && q.year_max.is_none_or(|hi| art.year <= hi)
            })
            .collect();
        let sub: Vec<f64> = keep.iter().map(|&a| scores[a as usize]).collect();
        top_k(&sub, q.k).into_iter().map(|i| keep[i]).collect()
    }

    fn assert_matches_ground_truth(corpus: &Corpus, index: &ScoreIndex, q: &TopQuery) {
        let got: Vec<u32> = index.top(q).iter().map(|h| h.id.0).collect();
        let want = brute_force(corpus, index.scores(), q);
        assert_eq!(got, want, "query {q:?} diverged from top_k ground truth");
    }

    #[test]
    fn unfiltered_matches_top_k_exactly() {
        let (corpus, index) = indexed(11);
        for k in [0, 1, 5, 50, corpus.num_articles(), corpus.num_articles() + 10] {
            assert_matches_ground_truth(&corpus, &index, &TopQuery { k, ..Default::default() });
        }
    }

    #[test]
    fn filtered_queries_match_ground_truth() {
        let (corpus, index) = indexed(12);
        let (y0, y1) = corpus.year_range().unwrap();
        let mid = (y0 + y1) / 2;
        let queries = [
            TopQuery { k: 10, venue: Some(0), ..Default::default() },
            TopQuery { k: 10, author: Some(3), ..Default::default() },
            TopQuery { k: 10, venue: Some(1), author: Some(2), ..Default::default() },
            TopQuery { k: 10, year_min: Some(mid), ..Default::default() },
            TopQuery { k: 10, year_max: Some(mid), ..Default::default() },
            TopQuery { k: 10, year_min: Some(y0 + 1), year_max: Some(mid), ..Default::default() },
            TopQuery { k: 7, venue: Some(0), year_min: Some(mid), ..Default::default() },
            TopQuery { k: 7, author: Some(1), year_max: Some(mid), ..Default::default() },
            TopQuery { k: 3, year_min: Some(y1 + 5), ..Default::default() }, // empty range
            TopQuery { k: 4, venue: Some(u32::MAX - 3), ..Default::default() }, // unknown venue
        ];
        for q in &queries {
            assert_matches_ground_truth(&corpus, &index, q);
        }
    }

    #[test]
    fn inverted_year_range_is_empty_not_a_panic() {
        // Regression: year_min > year_max used to produce lo > hi slice
        // bounds in merge_years and panic — remotely triggerable.
        let (corpus, index) = indexed(15);
        let (y0, y1) = corpus.year_range().unwrap();
        for q in [
            TopQuery { k: 5, year_min: Some(y1), year_max: Some(y0), ..Default::default() },
            TopQuery { k: 5, year_min: Some(y0 + 1), year_max: Some(y0), ..Default::default() },
            TopQuery {
                k: 5,
                venue: Some(0),
                year_min: Some(y1),
                year_max: Some(y0),
                ..Default::default()
            },
        ] {
            assert_eq!(index.top(&q), Vec::new(), "inverted range {q:?} must match nothing");
        }
    }

    #[test]
    fn ties_resolve_like_top_k() {
        // A corpus with no citations ranks every article identically
        // under PageRank — the all-ties worst case. The index must still
        // agree with top_k, which breaks ties by smaller id.
        let mut b = scholar_corpus::CorpusBuilder::new();
        let v = b.venue("V");
        let u = b.author("A");
        for i in 0..20 {
            b.add_article(&format!("t{i}"), 2000 + (i % 3), v, vec![u], vec![], None);
        }
        let corpus = Arc::new(b.finish().unwrap());
        let scores = scholar_rank::PageRank::default().rank(&corpus);
        let index = ScoreIndex::build(Arc::clone(&corpus), scores);
        assert_matches_ground_truth(&corpus, &index, &TopQuery { k: 20, ..Default::default() });
        assert_matches_ground_truth(
            &corpus,
            &index,
            &TopQuery { k: 5, year_min: Some(2001), year_max: Some(2002), ..Default::default() },
        );
        assert_matches_ground_truth(
            &corpus,
            &index,
            &TopQuery { k: 9, venue: Some(0), ..Default::default() },
        );
    }

    #[test]
    fn exhaustive_small_corpus_sweep() {
        // Every (k, venue, year window) combination on a small corpus.
        let (corpus, index) = indexed(13);
        let (y0, y1) = corpus.year_range().unwrap();
        for k in [1, 3, 17] {
            for venue in [None, Some(0), Some(1)] {
                for lo in [None, Some(y0 + 2)] {
                    for hi in [None, Some(y1 - 2)] {
                        let q = TopQuery { k, venue, year_min: lo, year_max: hi, author: None };
                        assert_matches_ground_truth(&corpus, &index, &q);
                    }
                }
            }
        }
    }

    #[test]
    fn detail_reports_rank_percentile_neighbors() {
        let (corpus, index) = indexed(14);
        let n = corpus.num_articles();
        let best = index.top(&TopQuery { k: 1, ..Default::default() })[0].id;
        let d = index.detail(best, 2).unwrap();
        assert_eq!(d.rank, 1);
        assert!((d.percentile - 1.0).abs() < 1e-12);
        // Rank 1 has no one above: neighbors are itself + 2 below.
        assert_eq!(d.neighbors.len(), 3);
        assert_eq!(d.neighbors[0].id, best);
        assert!(d.neighbors.windows(2).all(|w| w[0].rank + 1 == w[1].rank));

        // A mid-ranked article gets 2 on each side.
        let mid = index.top(&TopQuery { k: n / 2, ..Default::default() }).pop().unwrap().id;
        let d = index.detail(mid, 2).unwrap();
        assert_eq!(d.neighbors.len(), 5);
        assert_eq!(d.neighbors[2].id, mid);
        // Out of range id.
        assert!(index.detail(ArticleId(n as u32 + 7), 2).is_none());
    }

    #[test]
    fn top_ids_into_matches_top_and_reuses_scratch() {
        let (corpus, index) = indexed(16);
        let (y0, y1) = corpus.year_range().unwrap();
        let queries = [
            TopQuery { k: 10, ..Default::default() },
            TopQuery { k: 5, venue: Some(0), ..Default::default() },
            TopQuery { k: 5, author: Some(1), ..Default::default() },
            TopQuery { k: 8, year_min: Some(y0 + 1), year_max: Some(y1 - 1), ..Default::default() },
            TopQuery { k: 0, ..Default::default() },
        ];
        let mut scratch = Vec::new();
        for q in &queries {
            index.top_ids_into(q, &mut scratch);
            let via_top: Vec<u32> = index.top(q).iter().map(|h| h.id.0).collect();
            assert_eq!(scratch, via_top, "query {q:?}");
        }
        // The scratch is cleared per call, not appended to.
        index.top_ids_into(&TopQuery { k: 3, ..Default::default() }, &mut scratch);
        assert_eq!(scratch.len(), 3.min(corpus.num_articles()));
    }

    #[test]
    fn hit_fragments_match_per_request_rendering() {
        let (corpus, index) = indexed(17);
        for a in 0..corpus.num_articles() as u32 {
            let frag = index.hit_fragment(a);
            let v = sjson::parse(std::str::from_utf8(frag).unwrap()).unwrap();
            let h = index.detail(ArticleId(a), 0).unwrap();
            let art = &corpus.articles()[a as usize];
            assert_eq!(v.get("rank").unwrap().as_i64(), Some(h.rank as i64));
            assert_eq!(v.get("id").unwrap().as_i64(), Some(a as i64));
            assert_eq!(v.get("score").unwrap().as_f64(), Some(h.score));
            assert_eq!(v.get("title").unwrap().as_str(), Some(art.title.as_str()));
            assert_eq!(v.get("year").unwrap().as_i64(), Some(art.year as i64));
            assert_eq!(
                v.get("venue").unwrap().as_str(),
                Some(corpus.venue(art.venue).name.as_str())
            );
        }
        // Out-of-corpus ids yield the empty fragment, never a panic.
        assert!(index.hit_fragment(corpus.num_articles() as u32 + 9).is_empty());
    }

    #[test]
    fn name_resolution() {
        let (corpus, index) = indexed(15);
        let v = &corpus.venues()[0];
        assert_eq!(index.venue_id(&v.name), Some(v.id.0));
        assert_eq!(index.venue_id("No Such Venue"), None);
        let u = &corpus.authors()[0];
        assert_eq!(index.author_id(&u.name), Some(u.id.0));
    }
}
