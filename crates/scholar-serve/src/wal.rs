//! WALv1: the write-ahead journal for accepted article batches.
//!
//! [`crate::Reindexer`] with a state directory appends every accepted
//! batch here **before** handing it to the reindex thread, so a crash at
//! any point — before the solve, mid-solve, mid-publish, mid-snapshot —
//! loses nothing that `submit` acknowledged. Restart replays the journal
//! on top of the newest snapshot and resumes at a generation that covers
//! every durably journaled batch (DESIGN.md §2.11).
//!
//! Format: a 16-byte header (`WALv1\0\0\0` + the sequence number the
//! journal starts after), then records of
//!
//! ```text
//! len: u32 | seq: u64 | checksum: u64 (FNV-1a of payload) | payload
//! ```
//!
//! The payload encodes one batch of [`Article`]s (varint-packed). Records
//! are appended with a single `write` and fsynced before `append`
//! returns; replay stops cleanly at the first torn or corrupt record —
//! the journal is **prefix-consistent**: a crash mid-append can only lose
//! the record being written, which was never acknowledged.
//!
//! Batches reference existing venue/author ids only (the
//! [`qrank::incremental::grow_corpus`] contract), so no name tables
//! travel in the journal.

use crate::snapshot::{fnv64, push_varint, read_varint, Result, StateError};
use scholar_corpus::model::{Article, ArticleId, AuthorId, VenueId};
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"WALv1\0\0\0";
const HEADER_BYTES: usize = 16;
/// len + seq + checksum.
const RECORD_HEADER: usize = 4 + 8 + 8;
/// A record larger than this is treated as torn (a real batch payload is
/// bounded by the submit path; a huge length is a corrupt length field).
const MAX_RECORD: u32 = 1 << 30;
const WAL_FILE: &str = "wal.log";

/// Path of the journal inside a state directory.
pub fn wal_path(dir: &Path) -> PathBuf {
    dir.join(WAL_FILE)
}

fn corrupt(message: impl Into<String>) -> StateError {
    StateError::Corrupt { file: WAL_FILE.to_owned(), message: message.into() }
}

/// Chaos site: every journal write step (create, record append, fsync)
/// funnels through this check, so a `fp::Script` over `wal.append` can
/// kill the durability path at any step; `submit` must then surface the
/// error without acknowledging the batch.
fn wal_append_check() -> Result<()> {
    failpoint!(
        "wal.append",
        return Err(StateError::Io(std::io::Error::other("injected I/O fault at wal.append")))
    );
    Ok(())
}

fn encode_article(buf: &mut Vec<u8>, a: &Article) {
    push_varint(buf, a.title.len() as u64);
    buf.extend_from_slice(a.title.as_bytes());
    // Years are i32; zigzag keeps negatives (ancient texts) one byte-ish.
    let zz = ((a.year as i64) << 1) ^ ((a.year as i64) >> 63);
    push_varint(buf, zz as u64);
    push_varint(buf, a.venue.0 as u64);
    push_varint(buf, a.authors.len() as u64);
    for &u in &a.authors {
        push_varint(buf, u.0 as u64);
    }
    push_varint(buf, a.references.len() as u64);
    for &r in &a.references {
        push_varint(buf, r.0 as u64);
    }
    match a.merit {
        None => buf.push(0),
        Some(m) => {
            buf.push(1);
            buf.extend_from_slice(&m.to_le_bytes());
        }
    }
}

fn decode_article(bytes: &[u8], pos: &mut usize) -> Option<Article> {
    let title_len = read_varint(bytes, pos)? as usize;
    let end = pos.checked_add(title_len).filter(|&e| e <= bytes.len())?;
    // lint: allow(HOTPATH-PANIC) pos <= end <= bytes.len() by the filter above
    let title = std::str::from_utf8(&bytes[*pos..end]).ok()?.to_owned();
    *pos = end;
    let zz = read_varint(bytes, pos)?;
    let year = ((zz >> 1) as i64 ^ -((zz & 1) as i64)) as i32;
    let venue = VenueId(u32::try_from(read_varint(bytes, pos)?).ok()?);
    let n_authors = read_varint(bytes, pos)? as usize;
    if n_authors > bytes.len() - *pos {
        return None;
    }
    let mut authors = Vec::with_capacity(n_authors);
    for _ in 0..n_authors {
        authors.push(AuthorId(u32::try_from(read_varint(bytes, pos)?).ok()?));
    }
    let n_refs = read_varint(bytes, pos)? as usize;
    if n_refs > bytes.len() - *pos {
        return None;
    }
    let mut references = Vec::with_capacity(n_refs);
    for _ in 0..n_refs {
        references.push(ArticleId(u32::try_from(read_varint(bytes, pos)?).ok()?));
    }
    let merit = match bytes.get(*pos)? {
        0 => {
            *pos += 1;
            None
        }
        1 => {
            *pos += 1;
            let end = pos.checked_add(8).filter(|&e| e <= bytes.len())?;
            // lint: allow(HOTPATH-PANIC) pos <= end <= bytes.len() by the filter above
            let m = f64::from_le_bytes(bytes[*pos..end].try_into().ok()?);
            *pos = end;
            Some(m)
        }
        _ => return None,
    };
    Some(Article { id: ArticleId(0), title, year, venue, authors, references, merit })
}

fn encode_batch(batch: &[Article]) -> Vec<u8> {
    let mut buf = Vec::new();
    push_varint(&mut buf, batch.len() as u64);
    for a in batch {
        encode_article(&mut buf, a);
    }
    buf
}

fn decode_batch(payload: &[u8]) -> Option<Vec<Article>> {
    let mut pos = 0;
    let count = read_varint(payload, &mut pos)? as usize;
    if count > payload.len() {
        return None;
    }
    let mut batch = Vec::with_capacity(count);
    for _ in 0..count {
        batch.push(decode_article(payload, &mut pos)?);
    }
    (pos == payload.len()).then_some(batch)
}

/// Append-side handle on the journal. One writer at a time (the
/// `Reindexer` serializes appends behind a mutex).
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    next_seq: u64,
    /// Set when a failed append could not be rolled back; the journal
    /// tail is then in an unknown state and further appends must refuse
    /// rather than acknowledge batches behind it.
    poisoned: bool,
}

impl Wal {
    /// Create a fresh journal at `dir/wal.log` that starts after
    /// `base_seq` (the snapshot's high-water mark). Truncates any
    /// existing journal — callers rotate by writing a snapshot first.
    pub fn create(dir: &Path, base_seq: u64) -> Result<Wal> {
        std::fs::create_dir_all(dir).map_err(StateError::Io)?;
        wal_append_check()?;
        let path = wal_path(dir);
        let mut file = File::create(&path)?;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&base_seq.to_le_bytes());
        wal_append_check()?;
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(Wal { file, path, next_seq: base_seq + 1, poisoned: false })
    }

    /// Resume appending after a [`replay`]: truncate any torn tail (its
    /// record was never acknowledged, and appending behind it would
    /// strand the new records past the tear), then continue after the
    /// highest durable sequence number. A journal torn inside its own
    /// header is recreated from scratch.
    pub fn resume(dir: &Path, replayed: &Replay) -> Result<Wal> {
        if replayed.durable_len < HEADER_BYTES as u64 {
            return Wal::create(dir, replayed.high_water());
        }
        wal_append_check()?;
        let path = wal_path(dir);
        let file = OpenOptions::new().append(true).open(&path)?;
        if replayed.torn_tail {
            wal_append_check()?;
            file.set_len(replayed.durable_len)?;
            file.sync_all()?;
        }
        Ok(Wal { file, path, next_seq: replayed.high_water() + 1, poisoned: false })
    }

    /// The sequence number the next appended batch will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Durably append one batch. Returns its sequence number once the
    /// record is written **and fsynced** — only then may the caller
    /// acknowledge the batch. On error the sequence number is not
    /// consumed and the partial record is truncated away, so the journal
    /// stays appendable: without the rollback, a record that reached the
    /// file but failed its fsync would sit there checksum-valid, and the
    /// retried sequence number would replay as a hard sequence-jump
    /// corruption. If even the rollback fails the handle poisons itself —
    /// every later append reports the journal broken instead of stacking
    /// records behind an unacknowledged tail.
    pub fn append(&mut self, batch: &[Article]) -> Result<u64> {
        if self.poisoned {
            return Err(StateError::Io(std::io::Error::other(
                "journal poisoned by an earlier failed rollback",
            )));
        }
        let before = self.file.metadata()?.len();
        match self.append_inner(batch) {
            Ok(seq) => Ok(seq),
            Err(e) => {
                if self.file.sync_all().is_err() || self.rollback_to(before).is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    fn append_inner(&mut self, batch: &[Article]) -> Result<u64> {
        wal_append_check()?;
        let payload = encode_batch(batch);
        let seq = self.next_seq;
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&seq.to_le_bytes());
        record.extend_from_slice(&fnv64(&payload).to_le_bytes());
        record.extend_from_slice(&payload);
        self.file.write_all(&record)?;
        wal_append_check()?;
        self.file.sync_all()?;
        self.next_seq = seq + 1;
        Ok(seq)
    }

    /// Truncate the file back to `len` and park the cursor there, undoing
    /// however much of a failed append reached the file. Append-mode
    /// handles ignore the cursor and write at the (new) end; non-append
    /// handles need the seek so the next record does not leave a hole.
    fn rollback_to(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)?;
        self.file.seek(SeekFrom::Start(len))?;
        self.file.sync_all()
    }

    /// The journal file path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Atomically replace the journal with one that starts after `base_seq`,
/// carrying over every durable record with `seq > base_seq`. Called
/// after publishing a snapshot covering `base_seq`: the replaced journal
/// drops only batches the snapshot already holds. Tmp-then-rename, so a
/// crash at any step leaves either the old journal (still consistent
/// with the new snapshot — replay skips `seq <= base_seq`) or the new
/// one, never a tear.
pub fn rotate(dir: &Path, base_seq: u64) -> Result<Wal> {
    let kept = replay(dir, base_seq)?;
    wal_append_check()?;
    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&base_seq.to_le_bytes());
    for rec in &kept.records {
        let payload = encode_batch(&rec.batch);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&rec.seq.to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    let tmp = dir.join(format!("{WAL_FILE}.tmp"));
    let mut file = File::create(&tmp)?;
    wal_append_check()?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    wal_append_check()?;
    let path = wal_path(dir);
    std::fs::rename(&tmp, &path)?;
    // Make the rename durable: fsync the directory so a crash cannot
    // resurrect the pre-rotation log.
    crate::snapshot::fsync_dir(dir)?;
    let file = OpenOptions::new().append(true).open(&path)?;
    Ok(Wal { file, path, next_seq: kept.high_water() + 1, poisoned: false })
}

/// One replayed journal record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The batch's journal sequence number.
    pub seq: u64,
    /// The batch itself.
    pub batch: Vec<Article>,
}

/// What a journal replay recovered.
#[derive(Debug)]
pub struct Replay {
    /// Sequence number the journal starts after (its base snapshot's
    /// high-water mark).
    pub base_seq: u64,
    /// Every durable record with `seq > after_seq`, in order.
    pub records: Vec<WalRecord>,
    /// Whether a torn or corrupt tail record was discarded. Expected
    /// after a crash mid-append; anything before the tear replays fine.
    pub torn_tail: bool,
    /// Byte length of the durable prefix (everything up to and including
    /// the last valid record). [`Wal::resume`] truncates to this.
    pub durable_len: u64,
}

impl Replay {
    /// The highest durable sequence number (the base if no records).
    pub fn high_water(&self) -> u64 {
        self.records.last().map_or(self.base_seq, |r| r.seq)
    }
}

/// Replay `dir/wal.log`, returning every durable batch with
/// `seq > after_seq` in append order. Stops cleanly at the first torn or
/// corrupt record — everything before it is prefix-consistent state, and
/// everything after it was never acknowledged. A missing journal replays
/// as empty (a snapshot with no journal is complete state).
pub fn replay(dir: &Path, after_seq: u64) -> Result<Replay> {
    failpoint!(
        "wal.replay",
        return Err(StateError::Io(std::io::Error::other("injected I/O fault at wal.replay")))
    );
    let path = wal_path(dir);
    let mut bytes = Vec::new();
    match File::open(&path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(Replay {
                base_seq: after_seq,
                records: Vec::new(),
                torn_tail: false,
                durable_len: 0,
            });
        }
        Err(e) => return Err(StateError::Io(e)),
    }
    if bytes.len() < HEADER_BYTES {
        // A journal torn inside its own header never acknowledged
        // anything: replay as empty.
        return Ok(Replay {
            base_seq: after_seq,
            records: Vec::new(),
            torn_tail: true,
            durable_len: 0,
        });
    }
    // lint: allow(HOTPATH-PANIC) bytes.len() >= HEADER_BYTES checked above
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    // lint: allow(HOTPATH-PANIC) HEADER_BYTES is 16 and the length was checked; try_into is an exact 8-byte slice
    let base_seq = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut records = Vec::new();
    let mut torn_tail = false;
    let mut pos = HEADER_BYTES;
    let mut prev_seq = base_seq;
    while pos < bytes.len() {
        if bytes.len() - pos < RECORD_HEADER {
            torn_tail = true;
            break;
        }
        // lint: allow(HOTPATH-PANIC) RECORD_HEADER bytes remain past pos by the break above; try_into slices are exact-size
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        // lint: allow(HOTPATH-PANIC) RECORD_HEADER bytes remain past pos by the break above; try_into slices are exact-size
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        // lint: allow(HOTPATH-PANIC) RECORD_HEADER bytes remain past pos by the break above; try_into slices are exact-size
        let checksum = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().unwrap());
        let payload_at = pos + RECORD_HEADER;
        if len > MAX_RECORD || bytes.len() - payload_at < len as usize {
            torn_tail = true;
            break;
        }
        // lint: allow(HOTPATH-PANIC) len as usize bytes remain past payload_at by the break above
        let payload = &bytes[payload_at..payload_at + len as usize];
        if fnv64(payload) != checksum {
            torn_tail = true;
            break;
        }
        // A checksum-valid record with a non-consecutive sequence number
        // is not a torn tail — it is a journal that disagrees with
        // itself, which replay must refuse rather than skip.
        if seq != prev_seq + 1 {
            return Err(corrupt(format!("record sequence jumped {prev_seq} -> {seq}")));
        }
        let batch = decode_batch(payload)
            .ok_or_else(|| corrupt(format!("record {seq} payload does not decode")))?;
        prev_seq = seq;
        pos = payload_at + len as usize;
        if seq > after_seq {
            records.push(WalRecord { seq, batch });
        }
    }
    Ok(Replay { base_seq, records, torn_tail, durable_len: pos as u64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scholar-wal-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn article(i: usize) -> Article {
        Article {
            id: ArticleId(0),
            title: format!("wal-{i}"),
            year: 2000 + i as i32,
            venue: VenueId(0),
            authors: vec![AuthorId(1), AuthorId(2)],
            references: vec![ArticleId(3)],
            merit: i.is_multiple_of(2).then_some(0.25),
        }
    }

    #[test]
    fn append_then_replay_round_trips() {
        let dir = tmpdir("roundtrip");
        let mut wal = Wal::create(&dir, 10).unwrap();
        assert_eq!(wal.append(&[article(0), article(1)]).unwrap(), 11);
        assert_eq!(wal.append(&[article(2)]).unwrap(), 12);
        let replay = replay(&dir, 10).unwrap();
        assert_eq!(replay.base_seq, 10);
        assert!(!replay.torn_tail);
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[0].seq, 11);
        assert_eq!(replay.records[0].batch.len(), 2);
        assert_eq!(replay.records[0].batch[0].title, "wal-0");
        assert_eq!(replay.records[0].batch[0].merit, Some(0.25));
        assert_eq!(replay.records[1].batch[0].year, 2002);
        // Replay after the high-water mark sees nothing.
        assert!(replay_after(&dir, 12).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn replay_after(dir: &Path, seq: u64) -> Vec<WalRecord> {
        replay(dir, seq).unwrap().records
    }

    #[test]
    fn torn_tail_is_discarded_and_prefix_survives() {
        let dir = tmpdir("torn");
        let mut wal = Wal::create(&dir, 0).unwrap();
        wal.append(&[article(0)]).unwrap();
        wal.append(&[article(1)]).unwrap();
        drop(wal);
        // Tear the last record at every possible byte boundary; the first
        // record must survive every cut.
        let bytes = std::fs::read(wal_path(&dir)).unwrap();
        let first_end = {
            let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
            16 + RECORD_HEADER + len
        };
        for cut in first_end + 1..bytes.len() {
            std::fs::write(wal_path(&dir), &bytes[..cut]).unwrap();
            let r = replay(&dir, 0).unwrap();
            assert!(r.torn_tail, "cut at {cut} must report a torn tail");
            assert_eq!(r.records.len(), 1, "prefix record must survive cut at {cut}");
            assert_eq!(r.high_water(), 1);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_bit_stops_replay_at_the_tear() {
        let dir = tmpdir("flip");
        let mut wal = Wal::create(&dir, 0).unwrap();
        wal.append(&[article(0)]).unwrap();
        wal.append(&[article(1)]).unwrap();
        drop(wal);
        let mut bytes = std::fs::read(wal_path(&dir)).unwrap();
        let second_payload = {
            let len = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
            16 + RECORD_HEADER + len + RECORD_HEADER
        };
        bytes[second_payload] ^= 0x01;
        std::fs::write(wal_path(&dir), &bytes).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.records.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resumed_wal_continues_the_sequence() {
        let dir = tmpdir("reopen");
        let mut wal = Wal::create(&dir, 0).unwrap();
        wal.append(&[article(0)]).unwrap();
        drop(wal);
        let r = replay(&dir, 0).unwrap();
        let mut wal = Wal::resume(&dir, &r).unwrap();
        assert_eq!(wal.append(&[article(1)]).unwrap(), 2);
        let r = replay(&dir, 0).unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.high_water(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_truncates_a_torn_tail_so_new_appends_replay() {
        let dir = tmpdir("resume-torn");
        let mut wal = Wal::create(&dir, 0).unwrap();
        wal.append(&[article(0)]).unwrap();
        wal.append(&[article(1)]).unwrap();
        drop(wal);
        // Tear the second record, then resume and append a third batch:
        // replay must see records 1 and 2 (the new one renumbered), with
        // nothing stranded behind the tear.
        let bytes = std::fs::read(wal_path(&dir)).unwrap();
        std::fs::write(wal_path(&dir), &bytes[..bytes.len() - 3]).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert!(r.torn_tail);
        assert_eq!(r.high_water(), 1);
        let mut wal = Wal::resume(&dir, &r).unwrap();
        assert_eq!(wal.append(&[article(9)]).unwrap(), 2);
        let r = replay(&dir, 0).unwrap();
        assert!(!r.torn_tail, "resume must have truncated the tear");
        assert_eq!(r.records.len(), 2);
        assert_eq!(r.records[1].batch[0].title, "wal-9");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotate_keeps_only_unfolded_records() {
        let dir = tmpdir("rotate");
        let mut wal = Wal::create(&dir, 0).unwrap();
        wal.append(&[article(0)]).unwrap(); // seq 1
        wal.append(&[article(1)]).unwrap(); // seq 2
        wal.append(&[article(2)]).unwrap(); // seq 3
        drop(wal);
        // Snapshot covered seq 2; rotation must carry only seq 3 over.
        let mut wal = rotate(&dir, 2).unwrap();
        let r = replay(&dir, 0).unwrap();
        assert_eq!(r.base_seq, 2);
        assert_eq!(r.records.len(), 1);
        assert_eq!(r.records[0].seq, 3);
        assert_eq!(r.records[0].batch[0].title, "wal-2");
        assert_eq!(wal.append(&[article(3)]).unwrap(), 4);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_journal_replays_empty() {
        let dir = tmpdir("empty");
        let r = replay(&dir, 5).unwrap();
        assert_eq!(r.base_seq, 5);
        assert!(r.records.is_empty());
        assert!(!r.torn_tail);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
