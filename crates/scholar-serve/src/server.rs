//! The serving loop: a `TcpListener`, a fixed worker pool, and a bounded
//! hand-off queue between them.
//!
//! One acceptor thread pulls connections off the listener and `try_send`s
//! them into a `sync_channel` of depth [`ServeConfig::queue_depth`]. If
//! the queue is full the acceptor writes a `503` itself and drops the
//! connection — load is shed at the door instead of growing an unbounded
//! backlog. Workers block on the queue, parse one request under a read
//! timeout, snapshot the published [`ScoreIndex`] via [`SharedIndex`],
//! and answer from that immutable snapshot, so an index swap mid-request
//! can never tear a response.
//!
//! Shutdown is graceful: [`ServerHandle::shutdown`] flips a flag, nudges
//! the acceptor awake with a self-connection, closes the queue, and joins
//! every worker — each finishes the request it holds before exiting.

use crate::http::{self, Request};
use crate::index::{ScoreIndex, TopQuery};
use crate::metrics::Metrics;
use crate::record::{Recorder, ReqRecord};
use crate::swap::SharedIndex;
use scholar_corpus::ArticleId;
use sjson::{ObjectBuilder, Value};
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which serving backend to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Pick automatically: the `SCHOLAR_SERVE_BACKEND` env var
    /// (`"epoll"` / `"blocking"`) if set, else epoll on Linux and the
    /// blocking pool everywhere else.
    Auto,
    /// The nonblocking epoll event loop (Linux only; starting it
    /// elsewhere is an `Unsupported` error).
    Epoll,
    /// The original blocking acceptor + fixed worker pool.
    Blocking,
}

impl Backend {
    /// Resolve `Auto` against the environment and platform.
    pub fn resolve(self) -> Backend {
        match self {
            Backend::Auto => match std::env::var("SCHOLAR_SERVE_BACKEND").as_deref() {
                Ok("blocking") => Backend::Blocking,
                Ok("epoll") => Backend::Epoll,
                _ => {
                    if cfg!(target_os = "linux") {
                        Backend::Epoll
                    } else {
                        Backend::Blocking
                    }
                }
            },
            resolved => resolved,
        }
    }
}

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Address to bind, e.g. `127.0.0.1:0` (0 = any free port).
    pub addr: String,
    /// Worker threads answering requests (blocking backend), or event
    /// loop shards, each with its own `SO_REUSEPORT` listener (epoll
    /// backend).
    pub workers: usize,
    /// Accepted connections allowed to wait for a worker before the
    /// acceptor starts shedding with `503` (blocking backend only).
    pub queue_depth: usize,
    /// Per-connection read timeout while waiting for the request head;
    /// a slowloris client is cut off with `408` after this long. The
    /// epoll backend also closes *idle keep-alive* connections after
    /// this long, silently.
    pub read_timeout: Duration,
    /// Which backend to run. [`Backend::Auto`] picks epoll on Linux.
    pub backend: Backend,
    /// Concurrent connections one epoll shard will hold before shedding
    /// new ones with `503` (the event-loop analog of `queue_depth`).
    pub max_conns: usize,
    /// Optional request recorder (see [`crate::record`]): both backends
    /// offer every answered request to it after the response is written.
    /// Recording is sampled and never blocks or fails the live path.
    pub recorder: Option<Arc<Recorder>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            read_timeout: Duration::from_secs(5),
            backend: Backend::Auto,
            max_conns: 1024,
            recorder: None,
        }
    }
}

/// Default number of ranking neighbors in an `/article/{id}` response.
const DETAIL_NEIGHBORS: usize = 3;
/// Cap on `k` so a single request cannot ask for the whole corpus
/// serialized a million times over.
const MAX_K: usize = 10_000;

/// A running server: owns its serving threads (acceptor + worker pool
/// for the blocking backend; event-loop shards for epoll).
pub struct ServerHandle {
    addr: SocketAddr,
    backend: Backend,
    metrics: Arc<Metrics>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Start serving `shared` on `config.addr` with the configured backend.
/// Returns once the listener is bound and every thread is running; bind
/// and thread-spawn failures surface as the `Err` they are.
pub fn serve(
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    config: &ServeConfig,
) -> std::io::Result<ServerHandle> {
    match config.backend.resolve() {
        Backend::Epoll => serve_epoll(shared, metrics, config),
        _ => serve_blocking(shared, metrics, config),
    }
}

#[cfg(target_os = "linux")]
fn serve_epoll(
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    config: &ServeConfig,
) -> std::io::Result<ServerHandle> {
    let stop = Arc::new(AtomicBool::new(false));
    let (addr, threads) =
        crate::epoll::start(shared, Arc::clone(&metrics), config, Arc::clone(&stop))?;
    Ok(ServerHandle {
        addr,
        backend: Backend::Epoll,
        metrics,
        stop,
        acceptor: None,
        workers: threads,
    })
}

#[cfg(not(target_os = "linux"))]
fn serve_epoll(
    _shared: Arc<SharedIndex>,
    _metrics: Arc<Metrics>,
    _config: &ServeConfig,
) -> std::io::Result<ServerHandle> {
    Err(std::io::Error::new(
        std::io::ErrorKind::Unsupported,
        "the epoll backend requires Linux; use Backend::Blocking (or Auto)",
    ))
}

fn serve_blocking(
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    config: &ServeConfig,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::sync_channel::<TcpStream>(config.queue_depth.max(1));
    let rx = Arc::new(Mutex::new(rx));

    // Spawn failures propagate as the io::Error they are. On an early
    // return, dropping `tx` closes the queue, so any workers already
    // spawned see a disconnected channel and exit on their own.
    let mut workers: Vec<JoinHandle<()>> = Vec::with_capacity(config.workers.max(1));
    for i in 0..config.workers.max(1) {
        let rx = Arc::clone(&rx);
        let shared = Arc::clone(&shared);
        let metrics = Arc::clone(&metrics);
        let read_timeout = config.read_timeout;
        let recorder = config.recorder.clone();
        let worker = std::thread::Builder::new()
            .name(format!("scholar-serve-{i}"))
            .spawn(move || worker_loop(rx, shared, metrics, read_timeout, recorder))?;
        workers.push(worker);
    }

    let acceptor = {
        let stop = Arc::clone(&stop);
        let metrics = Arc::clone(&metrics);
        std::thread::Builder::new()
            .name("scholar-accept".to_string())
            .spawn(move || accept_loop(listener, tx, stop, metrics))?
    };

    Ok(ServerHandle {
        addr,
        backend: Backend::Blocking,
        metrics,
        stop,
        acceptor: Some(acceptor),
        workers,
    })
}

impl ServerHandle {
    /// The bound address (with the real port when `addr` asked for `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which backend this server is actually running (resolved from the
    /// config's, which may have been [`Backend::Auto`]).
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The server's metrics registry.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// Stop accepting, drain queued and in-flight requests, join every
    /// thread. Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // The acceptor may be parked in `accept()`; a throwaway local
        // connection wakes it so it can observe the stop flag. The
        // acceptor drops the queue sender on exit, which in turn ends
        // every worker once the queue drains.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    stop: Arc<AtomicBool>,
    metrics: Arc<Metrics>,
) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        // Chaos site: an accepted connection the acceptor loses before
        // hand-off (transient accept-path fault). Queue accounting and
        // worker liveness must survive it.
        failpoint!("serve.accept", {
            drop(stream);
            continue;
        });
        match tx.try_send(stream) {
            Ok(()) => {}
            Err(TrySendError::Full(mut stream)) => {
                // Queue full: shed at the door. The write is best-effort —
                // a client that already gave up is not our problem.
                metrics.record_shed();
                let body = http::error_body(503, "server is at capacity, retry shortly");
                let _ = stream.write_all(&http::response_bytes(503, &body));
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping `tx` here closes the queue: workers drain what's left and
    // then see `Err(RecvError)` and exit.
}

fn worker_loop(
    rx: Arc<Mutex<Receiver<TcpStream>>>,
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    read_timeout: Duration,
    recorder: Option<Arc<Recorder>>,
) {
    loop {
        // Hold the lock only long enough to dequeue one connection. A
        // poisoned lock just means a sibling worker panicked while
        // holding it; the receiver has no invariants a panic can break,
        // so take the guard and keep serving.
        let stream = match rx.lock().unwrap_or_else(std::sync::PoisonError::into_inner).recv() {
            Ok(s) => s,
            Err(_) => return, // queue closed and drained: shutdown
        };
        // Panic isolation: a bug while answering one request must not
        // kill this worker (each death would silently shrink the pool
        // until nothing serves). `AssertUnwindSafe` is sound here —
        // nothing mutable crosses the boundary: the stream is consumed,
        // and `shared`/`metrics` only expose atomic or lock-guarded
        // state whose guards poison on panic.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_connection(stream, &shared, &metrics, read_timeout, recorder.as_ref())
        }));
        if let Err(cause) = caught {
            metrics.record_panic();
            log_panic("handling a request", &cause);
        }
    }
}

pub(crate) fn log_panic(stage: &str, cause: &(dyn std::any::Any + Send)) {
    let msg = cause
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| cause.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>");
    eprintln!("scholar-serve: worker caught a panic while {stage}: {msg}");
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<SharedIndex>,
    metrics: &Arc<Metrics>,
    read_timeout: Duration,
    recorder: Option<&Arc<Recorder>>,
) {
    let _gauge = metrics.begin();
    metrics.record_conn_open();
    let started = Instant::now();
    let _ = stream.set_read_timeout(Some(read_timeout));
    let _ = stream.set_nodelay(true);
    // Chaos site: slow or dying worker before it even reads the request.
    failpoint!("serve.handle");

    // Snapshot the index once per request: the whole answer comes from
    // one immutable generation even if a swap lands mid-answer, and
    // `/metrics` attributes the response to exactly that generation.
    let index = shared.load();
    let (status, body, target) = match http::read_request_with_target(&mut stream) {
        // Panic isolation at the narrowest useful scope: a handler bug
        // must not cost the client its response — it becomes a recorded
        // `500`, so `/metrics` accounting stays exact even under panics
        // (the outer worker_loop catch remains as the last-resort belt).
        Ok((req, target)) => {
            let (status, body) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                respond_failpoint();
                respond_full(&req, &index, Some(shared), metrics)
            }))
            .unwrap_or_else(|cause| {
                metrics.record_panic();
                log_panic("answering a request", cause.as_ref());
                (500, http::error_body(500, "internal error while answering the request"))
            });
            (status, body, Some(target))
        }
        Err(e) => (e.status(), http::error_body(e.status(), &e.message()), None),
    };
    let _ = stream.write_all(&http::response_bytes(status, &body));
    let took = started.elapsed();
    metrics.record(status, took);
    metrics.record_generation(index.generation(), status);
    // Record + mirror strictly after the response is on the wire: the
    // client's latency never includes shadow work.
    if let Some(target) = target {
        let conn = recorder.map(|r| r.conn_id()).unwrap_or(0);
        let us = took.as_micros().min(u128::from(u64::MAX)) as u64;
        observe_request(
            recorder.map(Arc::as_ref),
            shared,
            &index,
            &target,
            conn,
            0,
            status,
            us,
            metrics,
        );
    }
    metrics.record_conn_close();
}

/// Shared post-response hook for both backends: offer the answered
/// request to the recorder, and mirror it to a staged shadow candidate.
///
/// Recording and mirroring are *coupled*: with a recorder configured,
/// only requests that were actually stored in the ring are mirrored.
/// That makes the flushed RLOGv1 log exactly the mirrored workload, so
/// [`crate::shadow::replay_mirror`] over the log reproduces the online
/// `ShadowReport` drift numbers bit for bit. Without a recorder, every
/// request is mirrored.
#[allow(clippy::too_many_arguments)]
pub(crate) fn observe_request(
    recorder: Option<&Recorder>,
    shared: &SharedIndex,
    live: &ScoreIndex,
    target: &str,
    conn: u64,
    seq: u64,
    status: u16,
    latency_us: u64,
    metrics: &Metrics,
) {
    let mirror = match recorder {
        Some(r) => {
            r.sample()
                && r.store(ReqRecord {
                    conn,
                    seq,
                    generation: live.generation(),
                    status,
                    latency_us,
                    target: target.to_owned(),
                })
        }
        None => true,
    };
    if mirror && shared.mirror_if_shadowing(live, target, latency_us).is_some() {
        // This mirror's auto-decision just promoted the candidate.
        metrics.record_swap();
    }
}

/// The `serve.respond` chaos site, shared by both backends: a buggy or
/// slow handler. An injected panic here must come back as a recorded
/// `500`, never as a lost response or a dead worker/shard. Lives in its
/// own function so the site has exactly one declaration (FAILPOINT-SYNC)
/// while the blocking pool and the epoll loop both evaluate it once per
/// request, inside their per-request panic isolation.
pub(crate) fn respond_failpoint() {
    failpoint!("serve.respond");
}

/// Route one parsed request. Pure: index snapshot in, `(status, body)`
/// out, which is what makes the endpoints unit-testable without sockets.
/// `/shadow` needs the serving cell itself and answers 404 here; use
/// [`respond_full`] on paths that have one.
pub fn respond(req: &Request, index: &ScoreIndex, metrics: &Metrics) -> (u16, Value) {
    respond_full(req, index, None, metrics)
}

/// [`respond`] with access to the [`SharedIndex`], which is what the
/// `/shadow` endpoint reports on (the staged candidate and its report
/// live on the cell, not on any one index snapshot). Both backends route
/// through this.
pub fn respond_full(
    req: &Request,
    index: &ScoreIndex,
    shared: Option<&SharedIndex>,
    metrics: &Metrics,
) -> (u16, Value) {
    // ORDERING: endpoint hit counters are independent monotone
    // statistics — see the module-level note in metrics.rs.
    let rel = Ordering::Relaxed;
    match req.path.as_str() {
        "/shadow" => {
            metrics.endpoints.shadow.fetch_add(1, rel);
            match shared {
                Some(s) => (200, s.shadow_json()),
                None => (404, http::error_body(404, "no shadow state on this serving path")),
            }
        }
        "/health" => {
            metrics.endpoints.health.fetch_add(1, rel);
            (
                200,
                ObjectBuilder::new()
                    .field("status", "ok")
                    .field("articles", index.num_articles() as i64)
                    .field("generation", index.generation() as i64)
                    .build(),
            )
        }
        "/metrics" => {
            metrics.endpoints.metrics.fetch_add(1, rel);
            (200, metrics.to_json())
        }
        "/top" => {
            metrics.endpoints.top.fetch_add(1, rel);
            match parse_top_query(req, index) {
                Ok(q) => match top_body(index, &q) {
                    Some(body) => (200, body),
                    None => (500, broken_index_body()),
                },
                Err(msg) => (400, http::error_body(400, &msg)),
            }
        }
        _ => match req.path.strip_prefix("/article/") {
            Some(rest) => {
                metrics.endpoints.article.fetch_add(1, rel);
                match rest.parse::<u32>() {
                    Ok(id) => match index.detail(ArticleId(id), DETAIL_NEIGHBORS) {
                        Some(d) => match detail_body(index, &d) {
                            Some(body) => (200, body),
                            None => (500, broken_index_body()),
                        },
                        None => (404, http::error_body(404, &format!("no article with id {id}"))),
                    },
                    Err(_) => {
                        (400, http::error_body(400, &format!("article id {rest:?} is not a u32")))
                    }
                }
            }
            None => (404, http::error_body(404, &format!("no route for {}", req.path))),
        },
    }
}

/// The `500` body for an index that returned an article id outside its
/// own corpus — an invariant breach the client should see as a server
/// error (and the 5xx counter should record), never as a panic.
fn broken_index_body() -> Value {
    http::error_body(500, "index returned an article outside the corpus")
}

/// Build a [`TopQuery`] from `/top` parameters, resolving venue/author
/// names through the index. Every malformed value is a `400` with the
/// offending parameter named.
pub(crate) fn parse_top_query(req: &Request, index: &ScoreIndex) -> Result<TopQuery, String> {
    let mut q = TopQuery { k: 10, ..Default::default() };
    if let Some(raw) = req.param("k") {
        q.k = raw
            .parse::<usize>()
            .map_err(|_| format!("parameter k={raw:?} is not a non-negative integer"))?;
        if q.k > MAX_K {
            return Err(format!("parameter k={raw} exceeds the maximum of {MAX_K}"));
        }
    }
    if let Some(name) = req.param("venue") {
        q.venue = Some(index.venue_id(name).ok_or_else(|| format!("unknown venue {name:?}"))?);
    }
    if let Some(name) = req.param("author") {
        q.author = Some(index.author_id(name).ok_or_else(|| format!("unknown author {name:?}"))?);
    }
    for (key, slot) in [("year_min", &mut q.year_min), ("year_max", &mut q.year_max)] {
        if let Some(raw) = req.param(key) {
            *slot = Some(
                raw.parse::<i32>().map_err(|_| format!("parameter {key}={raw:?} is not a year"))?,
            );
        }
    }
    if let (Some(lo), Some(hi)) = (q.year_min, q.year_max) {
        if lo > hi {
            return Err(format!("year range is inverted: year_min={lo} > year_max={hi}"));
        }
    }
    Ok(q)
}

/// `None` when the hit's id falls outside the corpus (a broken index);
/// the caller turns that into a 500.
fn hit_json(index: &ScoreIndex, h: &crate::index::Hit) -> Option<Value> {
    let art = index.corpus().articles().get(h.id.index())?;
    Some(
        ObjectBuilder::new()
            .field("rank", h.rank as i64)
            .field("id", h.id.0 as i64)
            .field("score", h.score)
            .field("title", art.title.as_str())
            .field("year", art.year)
            .field("venue", index.corpus().venue(art.venue).name.as_str())
            .build(),
    )
}

fn top_body(index: &ScoreIndex, q: &TopQuery) -> Option<Value> {
    let hits = index.top(q);
    let results = hits.iter().map(|h| hit_json(index, h)).collect::<Option<Vec<_>>>()?;
    Some(
        ObjectBuilder::new()
            .field("generation", index.generation() as i64)
            .field("count", hits.len() as i64)
            .field("results", Value::Array(results))
            .build(),
    )
}

fn detail_body(index: &ScoreIndex, d: &crate::index::ArticleDetail) -> Option<Value> {
    let art = index.corpus().articles().get(d.id.index())?;
    let neighbors = d.neighbors.iter().map(|h| hit_json(index, h)).collect::<Option<Vec<_>>>()?;
    ObjectBuilder::new()
        .field("generation", index.generation() as i64)
        .field("id", d.id.0 as i64)
        .field("title", art.title.as_str())
        .field("year", art.year)
        .field("venue", index.corpus().venue(art.venue).name.as_str())
        .field(
            "authors",
            Value::Array(
                art.authors
                    .iter()
                    .map(|&u| Value::from(index.corpus().author(u).name.as_str()))
                    .collect(),
            ),
        )
        .field("rank", d.rank as i64)
        .field("score", d.score)
        .field("percentile", d.percentile)
        .field("references", art.references.len() as i64)
        .field("neighbors", Value::Array(neighbors))
        .build()
        .into()
}
