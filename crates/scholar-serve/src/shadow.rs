//! Shadow evaluation: prove a candidate index on live traffic before
//! the swap.
//!
//! The ranking is query-independent, so swapping the index silently
//! changes what *every* client sees. The WSDM-Cup systems validated each
//! ranking variant against held-out relevance data before shipping it;
//! this module is the production analogue. A candidate [`ScoreIndex`] is
//! *staged* next to the live one (see `SharedIndex::stage_shadow`),
//! live requests are *mirrored* — answered again, invisibly, by the
//! candidate — and the accumulated [`ShadowReport`] (top-k overlap,
//! Kendall tau, score L1, status mismatches, mirror latency) must pass
//! [`ShadowThresholds`] before the candidate is promoted to serve.
//!
//! Two invariants make the report trustworthy:
//!
//! 1. **Mirroring never touches the live answer.** The mirror runs after
//!    the response is written, inside its own `catch_unwind`; a panic in
//!    the candidate poisons the shadow slot (which then can never
//!    promote) and a `shadow.mirror` fault only bumps `mirror_errors`.
//!    Live latency, status, and throughput are computed before the
//!    mirror ever runs.
//! 2. **The report is replayable.** Every drift statistic is accumulated
//!    as integers (hit counts, concordant/discordant pair counts, score
//!    L1 in rounded nanos) whose sum is order-independent, and both
//!    sides' statuses come from the same pure [`status_for`] routing —
//!    so re-running the recorded mirror log offline through
//!    [`replay_mirror`] reproduces the online drift numbers *exactly*,
//!    not approximately. (Latency fields are measurements, not
//!    replayable facts, and are excluded from that guarantee.)

use crate::http::{self, Request};
use crate::index::{Hit, ScoreIndex};
use crate::metrics::LATENCY_BUCKETS_US;
use crate::server;
use scholar_corpus::ArticleId;
use sjson::{ObjectBuilder, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Gates a shadow candidate's promotion. A candidate is promoted only
/// when the accumulated [`ShadowReport`] has no [`ShadowReport::failures`]
/// against these thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowThresholds {
    /// Minimum mirrored requests before the report is decision-worthy.
    /// The auto-decision (taken by the mirror path itself) waits for
    /// this; until then the candidate keeps accumulating evidence.
    pub min_mirrored: u64,
    /// Minimum mean top-k overlap (`|live ∩ candidate| / slots`) across
    /// mirrored `/top` requests, in `[0, 1]`.
    pub min_topk_overlap: f64,
    /// Minimum Kendall tau over ids both sides ranked, in `[-1, 1]`.
    pub min_kendall_tau: f64,
    /// Maximum mean absolute score difference per compared article.
    pub max_score_l1: f64,
    /// Maximum tolerated status mismatches (candidate answered a
    /// mirrored request with a different status than the live index).
    pub max_status_mismatches: u64,
}

impl Default for ShadowThresholds {
    fn default() -> Self {
        ShadowThresholds {
            min_mirrored: 64,
            min_topk_overlap: 0.95,
            min_kendall_tau: 0.9,
            max_score_l1: 1e-3,
            max_status_mismatches: 0,
        }
    }
}

/// What the shadow slot has concluded about its candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Still accumulating evidence; mirroring continues.
    Pending,
    /// Thresholds passed; the candidate was (or is about to be)
    /// published as the live generation.
    Promoted,
    /// Thresholds failed; the old generation keeps serving and the
    /// report stays up at `/shadow` as the loud explanation.
    Rejected,
}

impl Decision {
    fn as_str(self) -> &'static str {
        match self {
            Decision::Pending => "pending",
            Decision::Promoted => "promoted",
            Decision::Rejected => "rejected",
        }
    }
}

const DECIDED_PENDING: u64 = 0;
const DECIDED_PROMOTED: u64 = 1;
const DECIDED_REJECTED: u64 = 2;

/// Endpoint classes the mirror attributes drift to. Public so the
/// replay driver labels its per-endpoint digests with the same names.
pub const ENDPOINTS: [&str; 6] = ["top", "article", "health", "metrics", "shadow", "other"];

/// Map a request path (query string already split off) to its index in
/// [`ENDPOINTS`].
pub fn endpoint_class(path: &str) -> usize {
    match path {
        "/top" => 0,
        "/health" => 2,
        "/metrics" => 3,
        "/shadow" => 4,
        _ if path.starts_with("/article/") => 1,
        _ => 5,
    }
}

/// Drift extracted from mirroring one request — all integers, so the
/// accumulated totals are independent of mirror interleaving and
/// bit-identical between the online path and offline [`replay_mirror`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct Drift {
    top_compared: u64,
    overlap_hits: u64,
    overlap_slots: u64,
    concordant: u64,
    discordant: u64,
    pairs: u64,
    score_l1_nanos: u64,
    score_pairs: u64,
    status_mismatch: bool,
}

/// Pure routing-status oracle: the status this index would answer the
/// request with, plus the ranked hits for `/top`. This replicates
/// `server::respond`'s routing exactly (same parse, same 400/404 rules)
/// without building bodies — both the live and the candidate side of a
/// mirror go through it, which is what makes status mismatches a
/// statement about the *indexes* rather than about which code path
/// happened to answer.
pub(crate) fn status_for(req: &Request, index: &ScoreIndex) -> (u16, Option<Vec<Hit>>) {
    match req.path.as_str() {
        "/health" | "/metrics" | "/shadow" => (200, None),
        "/top" => match server::parse_top_query(req, index) {
            Ok(q) => (200, Some(index.top(&q))),
            Err(_) => (400, None),
        },
        _ => match req.path.strip_prefix("/article/") {
            Some(rest) => match rest.parse::<u32>() {
                Ok(id) => match index.detail(ArticleId(id), 0) {
                    Some(_) => (200, None),
                    None => (404, None),
                },
                Err(_) => (400, None),
            },
            None => (404, None),
        },
    }
}

/// Compare one mirrored request across the live and candidate indexes.
fn drift_for(target: &str, live: &ScoreIndex, candidate: &ScoreIndex) -> Drift {
    let req = http::parse_target(target);
    let (live_status, live_hits) = status_for(&req, live);
    let (cand_status, cand_hits) = status_for(&req, candidate);
    let mut d = Drift { status_mismatch: live_status != cand_status, ..Drift::default() };
    if let (Some(l), Some(c)) = (live_hits, cand_hits) {
        d.top_compared = 1;
        let slots = l.len().max(c.len()) as u64;
        d.overlap_slots = slots;
        // Rank of each id on the candidate side, for overlap + tau.
        let cand_rank: Vec<(u32, usize)> = c.iter().enumerate().map(|(i, h)| (h.id.0, i)).collect();
        let rank_in_cand = |id: u32| cand_rank.iter().find(|&&(cid, _)| cid == id).map(|&(_, r)| r);
        // Ids both sides ranked, in live order, with their candidate rank.
        let mut common: Vec<(usize, usize)> = Vec::new();
        for (li, h) in l.iter().enumerate() {
            if let Some(ci) = rank_in_cand(h.id.0) {
                d.overlap_hits += 1;
                let dv = (live.score(h.id) - candidate.score(h.id)).abs();
                // Stationary scores are probabilities (≤ 1), so the
                // per-pair nano count fits u64 with room for ~1e10 pairs.
                d.score_l1_nanos += (dv * 1e9).round() as u64;
                d.score_pairs += 1;
                common.push((li, ci));
            }
        }
        // Kendall tau over the common ids: concordant iff live order and
        // candidate order agree on the pair. `common` is sorted by live
        // rank, so a pair is concordant exactly when candidate ranks are
        // increasing too.
        for i in 0..common.len() {
            for j in i + 1..common.len() {
                d.pairs += 1;
                // lint: allow(HOTPATH-PANIC) i < j < common.len() by the loop bounds
                if common[j].1 > common[i].1 {
                    d.concordant += 1;
                } else {
                    d.discordant += 1;
                }
            }
        }
    }
    d
}

/// Per-endpoint mirror attribution.
#[derive(Debug, Default)]
struct EndpointDrift {
    mirrored: AtomicU64,
    status_mismatches: AtomicU64,
}

/// Accumulated shadow evidence. Lives in the shadow slot on
/// `SharedIndex`; every field is an atomic so both backends mirror
/// without locks, and every *drift* field is an integer so accumulation
/// order cannot change the totals.
#[derive(Debug)]
pub struct ShadowState {
    mirrored: AtomicU64,
    mirror_errors: AtomicU64,
    poisoned: AtomicBool,
    decided: AtomicU64,
    status_mismatches: AtomicU64,
    top_compared: AtomicU64,
    overlap_hits: AtomicU64,
    overlap_slots: AtomicU64,
    concordant: AtomicU64,
    discordant: AtomicU64,
    pairs: AtomicU64,
    score_l1_nanos: AtomicU64,
    score_pairs: AtomicU64,
    endpoints: [EndpointDrift; ENDPOINTS.len()],
    // Latency is measurement, not evidence: reported, never replayed.
    mirror_latency: [AtomicU64; LATENCY_BUCKETS_US.len() + 1],
    mirror_latency_total_us: AtomicU64,
    live_latency_total_us: AtomicU64,
    live_latency_count: AtomicU64,
}

impl Default for ShadowState {
    fn default() -> Self {
        Self::new()
    }
}

impl ShadowState {
    /// A fresh, empty accumulator.
    pub fn new() -> ShadowState {
        ShadowState {
            mirrored: AtomicU64::new(0),
            mirror_errors: AtomicU64::new(0),
            poisoned: AtomicBool::new(false),
            decided: AtomicU64::new(DECIDED_PENDING),
            status_mismatches: AtomicU64::new(0),
            top_compared: AtomicU64::new(0),
            overlap_hits: AtomicU64::new(0),
            overlap_slots: AtomicU64::new(0),
            concordant: AtomicU64::new(0),
            discordant: AtomicU64::new(0),
            pairs: AtomicU64::new(0),
            score_l1_nanos: AtomicU64::new(0),
            score_pairs: AtomicU64::new(0),
            endpoints: Default::default(),
            mirror_latency: Default::default(),
            mirror_latency_total_us: AtomicU64::new(0),
            live_latency_total_us: AtomicU64::new(0),
            live_latency_count: AtomicU64::new(0),
        }
    }

    /// Mirror one request target across `live` and `candidate`,
    /// accumulating its drift. Returns `false` when the `shadow.mirror`
    /// chaos site injected a fault — the caller counts a mirror error
    /// and moves on; the live response has already been sent either way.
    pub fn mirror_one(&self, target: &str, live: &ScoreIndex, candidate: &ScoreIndex) -> bool {
        failpoint!("shadow.mirror", return false);
        let d = drift_for(target, live, candidate);
        // ORDERING: drift accumulators are independent monotone sums; the
        // promotion decision reads them only after `claim_decision`'s
        // SeqCst RMW has already won, and exact totals (not cross-field
        // consistency) are all the report needs.
        let rel = Ordering::Relaxed;
        self.mirrored.fetch_add(1, rel);
        self.top_compared.fetch_add(d.top_compared, rel);
        self.overlap_hits.fetch_add(d.overlap_hits, rel);
        self.overlap_slots.fetch_add(d.overlap_slots, rel);
        self.concordant.fetch_add(d.concordant, rel);
        self.discordant.fetch_add(d.discordant, rel);
        self.pairs.fetch_add(d.pairs, rel);
        self.score_l1_nanos.fetch_add(d.score_l1_nanos, rel);
        self.score_pairs.fetch_add(d.score_pairs, rel);
        let class = endpoint_class(&http::parse_target(target).path);
        // lint: allow(HOTPATH-PANIC) endpoint_class returns 0..ENDPOINTS.len() by construction
        let ep = &self.endpoints[class];
        ep.mirrored.fetch_add(1, rel);
        if d.status_mismatch {
            self.status_mismatches.fetch_add(1, rel);
            ep.status_mismatches.fetch_add(1, rel);
        }
        true
    }

    /// Record how long one mirror took, and the live latency it shadows.
    pub fn note_latency(&self, mirror_us: u64, live_us: u64) {
        // ORDERING: latency histogram buckets and sums are statistics;
        // nothing gates on them, so relaxed is enough.
        let rel = Ordering::Relaxed;
        let bucket = LATENCY_BUCKETS_US.partition_point(|&b| b < mirror_us);
        // lint: allow(HOTPATH-PANIC) partition_point <= len and the array has len+1 slots
        self.mirror_latency[bucket].fetch_add(1, rel);
        self.mirror_latency_total_us.fetch_add(mirror_us, rel);
        self.live_latency_total_us.fetch_add(live_us, rel);
        self.live_latency_count.fetch_add(1, rel);
    }

    /// Count a mirror that failed without panicking (injected fault).
    pub fn note_mirror_error(&self) {
        // ORDERING: monotone error count, read only for reporting.
        self.mirror_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Mark the slot poisoned: the candidate panicked while answering a
    /// mirror. A poisoned candidate can never promote.
    pub fn poison(&self) {
        // ORDERING: a one-way boolean flag; the promotion gate re-checks
        // it after winning the SeqCst `claim_decision` race, which
        // orders the flag before any publication that matters.
        self.poisoned.store(true, Ordering::Relaxed);
    }

    /// Whether a mirror panic has poisoned the slot.
    pub fn poisoned(&self) -> bool {
        // ORDERING: see `poison` — a stale read can only delay the
        // rejection by one evaluation round, never promote a poisoned
        // candidate past the SeqCst decision fence.
        self.poisoned.load(Ordering::Relaxed)
    }

    /// Requests mirrored so far.
    pub fn mirrored(&self) -> u64 {
        // ORDERING: monotone progress counter used for threshold checks;
        // undercounting momentarily only defers the decision.
        self.mirrored.load(Ordering::Relaxed)
    }

    /// The slot's decision so far.
    pub fn decision(&self) -> Decision {
        // ORDERING: Acquire pairs with the SeqCst success of
        // `claim_decision` — a reader that observes Promoted/Rejected
        // must also observe everything the winner wrote before deciding.
        match self.decided.load(Ordering::Acquire) {
            DECIDED_PROMOTED => Decision::Promoted,
            DECIDED_REJECTED => Decision::Rejected,
            _ => Decision::Pending,
        }
    }

    /// Atomically move Pending → `to`. Returns whether *this* caller won
    /// the transition (exactly one does; the winner performs the
    /// promotion or keeps the rejection report up).
    pub(crate) fn claim_decision(&self, to: Decision) -> bool {
        let code = match to {
            Decision::Promoted => DECIDED_PROMOTED,
            Decision::Rejected => DECIDED_REJECTED,
            Decision::Pending => return false,
        };
        self.decided
            .compare_exchange(DECIDED_PENDING, code, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    fn latency_quantile_us(&self, q: f64) -> u64 {
        // ORDERING: quantiles over a live histogram are approximate by
        // nature; relaxed reads only add noise within one request.
        let total: u64 = self.mirror_latency.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0;
        }
        let want = ((total as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.mirror_latency.iter().enumerate() {
            // ORDERING: same approximate-snapshot argument as above.
            seen += c.load(Ordering::Relaxed);
            if seen >= want {
                return LATENCY_BUCKETS_US.get(i).copied().unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }

    /// Snapshot the accumulated evidence as a report.
    pub fn report(&self, live_generation: u64, candidate_generation: u64) -> ShadowReport {
        // ORDERING: the report is a statistical snapshot; each field is
        // independently exact, and cross-field skew of a request or two
        // is inherent to sampling a live system.
        let rel = Ordering::Relaxed;
        ShadowReport {
            live_generation,
            candidate_generation,
            decision: self.decision(),
            poisoned: self.poisoned(),
            mirrored: self.mirrored.load(rel),
            mirror_errors: self.mirror_errors.load(rel),
            status_mismatches: self.status_mismatches.load(rel),
            top_compared: self.top_compared.load(rel),
            overlap_hits: self.overlap_hits.load(rel),
            overlap_slots: self.overlap_slots.load(rel),
            concordant: self.concordant.load(rel),
            discordant: self.discordant.load(rel),
            pairs: self.pairs.load(rel),
            score_l1_nanos: self.score_l1_nanos.load(rel),
            score_pairs: self.score_pairs.load(rel),
            // lint: allow(HOTPATH-PANIC) from_fn indexes 0..N into same-length arrays
            endpoint_mirrored: std::array::from_fn(|i| self.endpoints[i].mirrored.load(rel)),
            endpoint_status_mismatches: std::array::from_fn(|i| {
                // lint: allow(HOTPATH-PANIC) from_fn indexes 0..N into same-length arrays
                self.endpoints[i].status_mismatches.load(rel)
            }),
            mirror_p50_us: self.latency_quantile_us(0.50),
            mirror_p99_us: self.latency_quantile_us(0.99),
            mirror_latency_total_us: self.mirror_latency_total_us.load(rel),
            live_latency_total_us: self.live_latency_total_us.load(rel),
            live_latency_count: self.live_latency_count.load(rel),
            // lint: allow(HOTPATH-PANIC) from_fn indexes 0..N into a same-length array
            mirror_latency_histogram: std::array::from_fn(|i| self.mirror_latency[i].load(rel)),
        }
    }
}

/// A point-in-time snapshot of shadow evidence, served at `/shadow` and
/// evaluated against [`ShadowThresholds`] to gate promotion. All drift
/// fields are the raw integer accumulators; the derived ratios
/// ([`ShadowReport::topk_overlap`] etc.) are computed from them, so two
/// reports with equal integers are equal, full stop.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowReport {
    /// Generation serving live traffic when the report was taken.
    pub live_generation: u64,
    /// The staged candidate's (provisional) generation.
    pub candidate_generation: u64,
    /// Promote/reject/pending, as decided so far.
    pub decision: Decision,
    /// A mirror panicked; the candidate can never promote.
    pub poisoned: bool,
    /// Requests mirrored to the candidate.
    pub mirrored: u64,
    /// Mirrors that failed without evidence (injected faults).
    pub mirror_errors: u64,
    /// Mirrors where live and candidate answered different statuses.
    pub status_mismatches: u64,
    /// Mirrored `/top` requests whose rankings were compared.
    pub top_compared: u64,
    /// Σ |top-k(live) ∩ top-k(candidate)| over compared requests.
    pub overlap_hits: u64,
    /// Σ max(|top-k(live)|, |top-k(candidate)|) over compared requests.
    pub overlap_slots: u64,
    /// Kendall concordant pairs over commonly-ranked ids.
    pub concordant: u64,
    /// Kendall discordant pairs.
    pub discordant: u64,
    /// Total compared pairs (`concordant + discordant`).
    pub pairs: u64,
    /// Σ |score_live − score_candidate| in rounded nanos, over ids both
    /// sides ranked.
    pub score_l1_nanos: u64,
    /// Number of score pairs behind `score_l1_nanos`.
    pub score_pairs: u64,
    /// Mirrors attributed to each of [`ENDPOINTS`].
    pub endpoint_mirrored: [u64; ENDPOINTS.len()],
    /// Status mismatches attributed to each of [`ENDPOINTS`].
    pub endpoint_status_mismatches: [u64; ENDPOINTS.len()],
    /// Mirror service-time p50 (bucket upper bound, like `/metrics`).
    pub mirror_p50_us: u64,
    /// Mirror service-time p99.
    pub mirror_p99_us: u64,
    /// Total mirror service time.
    pub mirror_latency_total_us: u64,
    /// Total live service time of the mirrored requests.
    pub live_latency_total_us: u64,
    /// Count behind the live total (equals latency-tracked mirrors).
    pub live_latency_count: u64,
    /// Mirror service-time histogram over `LATENCY_BUCKETS_US` + overflow.
    pub mirror_latency_histogram: [u64; LATENCY_BUCKETS_US.len() + 1],
}

impl ShadowReport {
    /// Mean top-k overlap in `[0, 1]` (1 when nothing was compared).
    pub fn topk_overlap(&self) -> f64 {
        if self.overlap_slots == 0 {
            1.0
        } else {
            self.overlap_hits as f64 / self.overlap_slots as f64
        }
    }

    /// Kendall tau in `[-1, 1]` (1 when no pairs were compared).
    pub fn kendall_tau(&self) -> f64 {
        if self.pairs == 0 {
            1.0
        } else {
            (self.concordant as f64 - self.discordant as f64) / self.pairs as f64
        }
    }

    /// Mean absolute score difference per compared article.
    pub fn score_l1_mean(&self) -> f64 {
        if self.score_pairs == 0 {
            0.0
        } else {
            self.score_l1_nanos as f64 / 1e9 / self.score_pairs as f64
        }
    }

    /// Mean mirror − live latency delta in microseconds (signed).
    pub fn latency_delta_mean_us(&self) -> i64 {
        if self.live_latency_count == 0 {
            return 0;
        }
        let mirror = (self.mirror_latency_total_us / self.live_latency_count) as i64;
        let live = (self.live_latency_total_us / self.live_latency_count) as i64;
        mirror - live
    }

    /// Every threshold this report fails, as human-readable reasons. An
    /// empty list means the candidate may promote. This is the single
    /// gate both the auto-decision and manual promotion consult.
    pub fn failures(&self, t: &ShadowThresholds) -> Vec<String> {
        let mut out = Vec::new();
        if self.poisoned {
            out.push("candidate panicked while answering a mirror (slot poisoned)".to_owned());
        }
        if self.mirrored < t.min_mirrored {
            out.push(format!("mirrored {} < min_mirrored {}", self.mirrored, t.min_mirrored));
        }
        if self.topk_overlap() < t.min_topk_overlap {
            out.push(format!(
                "topk_overlap {:.4} < min_topk_overlap {:.4}",
                self.topk_overlap(),
                t.min_topk_overlap
            ));
        }
        if self.kendall_tau() < t.min_kendall_tau {
            out.push(format!(
                "kendall_tau {:.4} < min_kendall_tau {:.4}",
                self.kendall_tau(),
                t.min_kendall_tau
            ));
        }
        if self.score_l1_mean() > t.max_score_l1 {
            out.push(format!(
                "score_l1_mean {:.3e} > max_score_l1 {:.3e}",
                self.score_l1_mean(),
                t.max_score_l1
            ));
        }
        if self.status_mismatches > t.max_status_mismatches {
            out.push(format!(
                "status_mismatches {} > max_status_mismatches {}",
                self.status_mismatches, t.max_status_mismatches
            ));
        }
        out
    }

    /// The report as the `/shadow` JSON body.
    pub fn to_json(&self, thresholds: &ShadowThresholds) -> Value {
        let mut endpoints = ObjectBuilder::new();
        for (i, name) in ENDPOINTS.iter().enumerate() {
            endpoints = endpoints.field(
                name,
                ObjectBuilder::new()
                    // lint: allow(HOTPATH-PANIC) i < ENDPOINTS.len() == both array lengths
                    .field("mirrored", self.endpoint_mirrored[i] as i64)
                    // lint: allow(HOTPATH-PANIC) i < ENDPOINTS.len() == both array lengths
                    .field("status_mismatches", self.endpoint_status_mismatches[i] as i64)
                    .build(),
            );
        }
        let failures = self.failures(thresholds);
        ObjectBuilder::new()
            .field("active", true)
            .field("live_generation", self.live_generation as i64)
            .field("candidate_generation", self.candidate_generation as i64)
            .field("decision", self.decision.as_str())
            .field("poisoned", self.poisoned)
            .field("mirrored", self.mirrored as i64)
            .field("mirror_errors", self.mirror_errors as i64)
            .field("status_mismatches", self.status_mismatches as i64)
            .field(
                "drift",
                ObjectBuilder::new()
                    .field("top_compared", self.top_compared as i64)
                    .field("overlap_hits", self.overlap_hits as i64)
                    .field("overlap_slots", self.overlap_slots as i64)
                    .field("topk_overlap", self.topk_overlap())
                    .field("concordant", self.concordant as i64)
                    .field("discordant", self.discordant as i64)
                    .field("pairs", self.pairs as i64)
                    .field("kendall_tau", self.kendall_tau())
                    .field("score_l1_nanos", self.score_l1_nanos as i64)
                    .field("score_pairs", self.score_pairs as i64)
                    .field("score_l1_mean", self.score_l1_mean())
                    .build(),
            )
            .field(
                "latency",
                ObjectBuilder::new()
                    .field("mirror_p50_us", self.mirror_p50_us as i64)
                    .field("mirror_p99_us", self.mirror_p99_us as i64)
                    .field("delta_mean_us", self.latency_delta_mean_us())
                    .field(
                        "histogram",
                        Value::Array(
                            self.mirror_latency_histogram
                                .iter()
                                .map(|&c| Value::from(c as i64))
                                .collect(),
                        ),
                    )
                    .build(),
            )
            .field("endpoints", endpoints.build())
            .field(
                "thresholds",
                ObjectBuilder::new()
                    .field("min_mirrored", thresholds.min_mirrored as i64)
                    .field("min_topk_overlap", thresholds.min_topk_overlap)
                    .field("min_kendall_tau", thresholds.min_kendall_tau)
                    .field("max_score_l1", thresholds.max_score_l1)
                    .field("max_status_mismatches", thresholds.max_status_mismatches as i64)
                    .build(),
            )
            .field("failures", Value::Array(failures.into_iter().map(Value::from).collect()))
            .build()
    }
}

/// Re-run a recorded mirror workload offline: fold every record's target
/// through the same [`ShadowState::mirror_one`] the live path uses and
/// return the resulting state. Because drift accumulation is integer and
/// order-independent, the returned state's report carries *exactly* the
/// drift numbers the online shadow accumulated over the same targets —
/// this is what turns a recorded log plus two index builds into a
/// reproducible promotion decision.
pub fn replay_mirror(
    records: &[crate::record::ReqRecord],
    live: &ScoreIndex,
    candidate: &ScoreIndex,
) -> ShadowState {
    let state = ShadowState::new();
    for r in records {
        state.mirror_one(&r.target, live, candidate);
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn indexes() -> (ScoreIndex, ScoreIndex, ScoreIndex) {
        let corpus = Arc::new(scholar_corpus::generator::Preset::Tiny.generate(7));
        let n = corpus.articles().len();
        let scores: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        let mut drifted = scores.clone();
        // Swap the top two scores and dampen a band: real rank movement.
        drifted.swap(0, 1);
        for s in drifted.iter_mut().take(n / 2).skip(2) {
            *s *= 0.5;
        }
        let live = ScoreIndex::build(Arc::clone(&corpus), scores.clone());
        let twin = ScoreIndex::build(Arc::clone(&corpus), scores);
        let cand = ScoreIndex::build(corpus, drifted);
        (live, twin, cand)
    }

    #[test]
    fn identical_candidate_has_zero_drift() {
        let (live, twin, _) = indexes();
        let state = ShadowState::new();
        for t in ["/top?k=10", "/top?k=25", "/article/3", "/health", "/nope"] {
            assert!(state.mirror_one(t, &live, &twin));
        }
        let r = state.report(1, 2);
        assert_eq!(r.mirrored, 5);
        assert_eq!(r.status_mismatches, 0);
        assert_eq!(r.topk_overlap(), 1.0);
        assert_eq!(r.kendall_tau(), 1.0);
        assert_eq!(r.score_l1_nanos, 0);
        assert!(r.failures(&ShadowThresholds { min_mirrored: 5, ..Default::default() }).is_empty());
    }

    #[test]
    fn drifted_candidate_is_caught_and_named() {
        let (live, _, cand) = indexes();
        let state = ShadowState::new();
        for _ in 0..8 {
            state.mirror_one("/top?k=20", &live, &cand);
        }
        let r = state.report(1, 2);
        assert!(r.kendall_tau() < 1.0, "swapped ranks must cost tau, got {}", r.kendall_tau());
        assert!(r.score_l1_mean() > 0.0);
        let fails = r.failures(&ShadowThresholds {
            min_mirrored: 8,
            min_topk_overlap: 0.0,
            min_kendall_tau: 1.0,
            max_score_l1: 0.0,
            max_status_mismatches: 0,
        });
        assert!(
            fails.iter().any(|f| f.contains("kendall_tau")),
            "rejection must name the failed threshold: {fails:?}"
        );
    }

    #[test]
    fn replay_reproduces_online_drift_exactly() {
        let (live, _, cand) = indexes();
        let targets =
            ["/top?k=15", "/top?k=3", "/article/1", "/top?venue=nope", "/top?k=40", "/health"];
        let online = ShadowState::new();
        let mut records = Vec::new();
        for (i, t) in targets.iter().enumerate() {
            online.mirror_one(t, &live, &cand);
            records.push(crate::record::ReqRecord {
                conn: 1,
                seq: i as u64,
                generation: 1,
                status: 200,
                latency_us: 10,
                target: (*t).to_owned(),
            });
        }
        let offline = replay_mirror(&records, &live, &cand);
        let a = online.report(1, 2);
        let b = offline.report(1, 2);
        assert_eq!(
            (a.mirrored, a.status_mismatches, a.overlap_hits, a.overlap_slots),
            (b.mirrored, b.status_mismatches, b.overlap_hits, b.overlap_slots)
        );
        assert_eq!(
            (a.concordant, a.discordant, a.pairs, a.score_l1_nanos, a.score_pairs),
            (b.concordant, b.discordant, b.pairs, b.score_l1_nanos, b.score_pairs)
        );
    }

    #[test]
    fn status_for_matches_respond_statuses() {
        let (live, _, _) = indexes();
        let metrics = crate::Metrics::new();
        for t in
            ["/top?k=5", "/top?venue=missing", "/article/2", "/article/x", "/article/99999", "/no"]
        {
            let req = http::parse_target(t);
            let (status, _) = status_for(&req, &live);
            let (expected, _) = server::respond(&req, &live, &metrics);
            assert_eq!(status, expected, "status oracle diverged on {t}");
        }
    }

    #[test]
    fn decision_claims_exactly_once() {
        let s = ShadowState::new();
        assert_eq!(s.decision(), Decision::Pending);
        assert!(s.claim_decision(Decision::Rejected));
        assert!(!s.claim_decision(Decision::Promoted));
        assert_eq!(s.decision(), Decision::Rejected);
    }
}
