//! Thin, audited wrappers over the Linux syscalls the event loop needs:
//! `epoll` and `SO_REUSEPORT` listener setup.
//!
//! The symbols are declared directly against libc — which std already
//! links on Linux — so this stays inside the workspace's no-new-crates
//! discipline. Every raw fd is wrapped in an [`OwnedFd`] (or a std
//! socket type) the moment it is created, so close-on-drop and error
//! unwinding are std's problem, not ours; the `unsafe` surface is the
//! syscall boundary itself, each call annotated with the invariant that
//! makes it sound.
//!
//! The numeric constants are the shared Linux ABI values used by
//! x86_64, aarch64, and riscv64 (the architectures CI and the bench
//! hardware cover); the whole module is compiled only on
//! `cfg(target_os = "linux")`, with the blocking backend serving every
//! other platform.

use core::ffi::{c_int, c_void};
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

// Declarations only — the definitions live in the libc std links.
extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn socket(domain: c_int, ty: c_int, protocol: c_int) -> c_int;
    fn bind(fd: c_int, addr: *const c_void, addrlen: u32) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
    fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
}

/// Readable (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, never needs arming.
pub const EPOLLERR: u32 = 0x008;
/// Hangup (`EPOLLHUP`); always reported, never needs arming.
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;
/// Edge-triggered delivery (`EPOLLET`).
pub const EPOLLET: u32 = 1 << 31;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;

const AF_INET: c_int = 2;
const AF_INET6: c_int = 10;
const SOCK_STREAM: c_int = 1;
const SOCK_CLOEXEC: c_int = 0o2000000;
const SOL_SOCKET: c_int = 1;
const SO_REUSEADDR: c_int = 2;
const SO_REUSEPORT: c_int = 15;
/// Accept backlog for event-loop listeners. Large: the loop drains
/// accepts every tick, and SYN floods are bounded by the kernel anyway.
const LISTEN_BACKLOG: c_int = 1024;

/// One `struct epoll_event`. Packed on x86_64 (a kernel ABI quirk of
/// that architecture alone), naturally aligned elsewhere. Fields are
/// only ever read by value — no references into the packed layout.
#[derive(Debug, Clone, Copy)]
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | …).
    pub events: u32,
    /// The caller's token, returned verbatim with each event.
    pub data: u64,
}

impl EpollEvent {
    /// A zeroed event, for pre-sizing wait buffers.
    pub const fn zeroed() -> Self {
        EpollEvent { events: 0, data: 0 }
    }
}

/// An owned epoll instance.
#[derive(Debug)]
pub struct Epoll {
    fd: OwnedFd,
}

impl Epoll {
    /// Create a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Epoll> {
        let fd =
            // SAFETY: epoll_create1 reads no memory; the flag is a valid
            // constant from the kernel ABI.
            unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fd =
            // SAFETY: `fd` was just returned by a successful epoll_create1,
            // so it is open and owned by no other wrapper.
            unsafe { OwnedFd::from_raw_fd(fd) };
        Ok(Epoll { fd })
    }

    /// Register `fd` for `events`, tagging its readiness with `token`.
    pub fn add(&self, fd: RawFd, token: u64, events: u32) -> io::Result<()> {
        let mut ev = EpollEvent { events, data: token };
        let rc =
            // SAFETY: `ev` is a live, initialized epoll_event for the whole
            // call; the kernel copies it before epoll_ctl returns. `fd` is a
            // caller-owned open descriptor.
            unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_ADD, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Deregister `fd`. Harmless to call on an fd the kernel already
    /// dropped from the interest list (closing an fd deregisters it).
    pub fn del(&self, fd: RawFd) -> io::Result<()> {
        let rc =
            // SAFETY: a null event pointer is explicitly allowed for
            // EPOLL_CTL_DEL since Linux 2.6.9; no memory is read or written.
            unsafe { epoll_ctl(self.fd.as_raw_fd(), EPOLL_CTL_DEL, fd, std::ptr::null_mut()) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait for readiness, filling `events` from the front; returns how
    /// many entries are valid. `timeout_ms < 0` blocks indefinitely.
    /// Retries transparently on `EINTR`.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let cap = events.len().min(i32::MAX as usize) as c_int;
        loop {
            let rc =
                // SAFETY: `events` points at `cap` writable epoll_event
                // slots owned by the caller for the duration of the call;
                // the kernel writes at most `cap` of them.
                unsafe { epoll_wait(self.fd.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != ErrorKind::Interrupted {
                return Err(err);
            }
        }
    }
}

/// IPv4 `struct sockaddr_in`; `sin_port`/`sin_addr` in network order.
#[repr(C)]
struct SockAddrIn {
    sin_family: u16,
    sin_port: u16,
    sin_addr: u32,
    sin_zero: [u8; 8],
}

/// IPv6 `struct sockaddr_in6`.
#[repr(C)]
struct SockAddrIn6 {
    sin6_family: u16,
    sin6_port: u16,
    sin6_flowinfo: u32,
    sin6_addr: [u8; 16],
    sin6_scope_id: u32,
}

/// Bind a nonblocking TCP listener on `addr` with `SO_REUSEPORT` (and
/// `SO_REUSEADDR`) set *before* the bind — the one step std's
/// `TcpListener::bind` cannot do, and the whole reason this function
/// exists: N listeners on one port let the kernel shard accepted
/// connections across event-loop threads with no user-space handoff.
pub fn bind_reuseport(addr: SocketAddr) -> io::Result<TcpListener> {
    let family = if addr.is_ipv4() { AF_INET } else { AF_INET6 };
    let fd =
        // SAFETY: socket() reads no memory; the arguments are valid ABI
        // constants.
        unsafe { socket(family, SOCK_STREAM | SOCK_CLOEXEC, 0) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    let owned =
        // SAFETY: `fd` was just returned by a successful socket() call and
        // has no other owner; from here on, drop of `owned` closes it on
        // every error path.
        unsafe { OwnedFd::from_raw_fd(fd) };
    set_int_opt(&owned, SOL_SOCKET, SO_REUSEADDR, 1)?;
    set_int_opt(&owned, SOL_SOCKET, SO_REUSEPORT, 1)?;

    let rc = match addr {
        SocketAddr::V4(v4) => {
            let sa = SockAddrIn {
                sin_family: AF_INET as u16,
                sin_port: v4.port().to_be(),
                // in_addr is "the octets, in memory order".
                sin_addr: u32::from_ne_bytes(v4.ip().octets()),
                sin_zero: [0; 8],
            };
            // SAFETY: `sa` is a live, fully initialized sockaddr_in and
            // the length matches its size; bind copies it synchronously.
            unsafe {
                bind(
                    owned.as_raw_fd(),
                    (&sa as *const SockAddrIn).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn>() as u32,
                )
            }
        }
        SocketAddr::V6(v6) => {
            let sa = SockAddrIn6 {
                sin6_family: AF_INET6 as u16,
                sin6_port: v6.port().to_be(),
                sin6_flowinfo: v6.flowinfo().to_be(),
                sin6_addr: v6.ip().octets(),
                sin6_scope_id: v6.scope_id(),
            };
            // SAFETY: same shape as the IPv4 arm — live struct, length
            // matches, copied synchronously.
            unsafe {
                bind(
                    owned.as_raw_fd(),
                    (&sa as *const SockAddrIn6).cast::<c_void>(),
                    std::mem::size_of::<SockAddrIn6>() as u32,
                )
            }
        }
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let rc =
        // SAFETY: listen reads no memory; `owned` is a bound stream socket.
        unsafe { listen(owned.as_raw_fd(), LISTEN_BACKLOG) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    let listener = TcpListener::from(owned);
    listener.set_nonblocking(true)?;
    Ok(listener)
}

fn set_int_opt(fd: &OwnedFd, level: c_int, name: c_int, value: c_int) -> io::Result<()> {
    let rc =
        // SAFETY: optval points at a live c_int on this stack frame and
        // optlen matches its size exactly; setsockopt copies it.
        unsafe {
        setsockopt(
            fd.as_raw_fd(),
            level,
            name,
            (&value as *const c_int).cast::<c_void>(),
            std::mem::size_of::<c_int>() as u32,
        )
    };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::TcpStream;

    #[test]
    fn two_listeners_share_one_port() {
        let a = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = a.local_addr().unwrap();
        // Binding the *same concrete port* again must succeed — that is
        // the SO_REUSEPORT contract sharding depends on.
        let b = bind_reuseport(addr).unwrap();
        assert_eq!(b.local_addr().unwrap().port(), addr.port());
    }

    #[test]
    fn epoll_reports_readability_with_the_registered_token() {
        let listener = bind_reuseport("127.0.0.1:0".parse().unwrap()).unwrap();
        let addr = listener.local_addr().unwrap();
        let ep = Epoll::new().unwrap();
        ep.add(listener.as_raw_fd(), 7, EPOLLIN).unwrap();

        let mut events = [EpollEvent::zeroed(); 8];
        // Nothing pending yet: a zero-timeout wait comes back empty.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        let mut client = TcpStream::connect(addr).unwrap();
        let n = ep.wait(&mut events, 2_000).unwrap();
        assert_eq!(n, 1);
        // Copy packed fields out by value before asserting (a reference
        // into the packed layout would be unaligned on x86_64).
        let (data, bits) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(bits & EPOLLIN, 0);

        // The accepted socket works like any std stream.
        let (mut conn, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        conn.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");

        ep.del(listener.as_raw_fd()).unwrap();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn ipv6_loopback_binds_too() {
        // Some CI sandboxes disable IPv6; only assert when bind works.
        if let Ok(l) = bind_reuseport("[::1]:0".parse().unwrap()) {
            let addr = l.local_addr().unwrap();
            assert!(bind_reuseport(addr).is_ok());
        }
    }
}
