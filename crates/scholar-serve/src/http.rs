//! A deliberately small HTTP/1.1 layer over `std::net`: enough to parse
//! `GET` requests defensively and write JSON responses. No external
//! dependencies, no chunked bodies — the serving API is read-only and
//! every response is a single JSON document, so the simplest correct
//! subset of the protocol wins.
//!
//! Two parsing front ends share one grammar:
//! - [`read_request`] pulls one head off a blocking stream (the
//!   thread-per-connection fallback path, always `Connection: close`);
//! - [`try_parse_head`] parses a head out of an in-memory byte buffer
//!   incrementally (the nonblocking event loop), reporting `NeedMore`
//!   until the terminator arrives, and honouring an explicit
//!   `Connection: keep-alive` request header. Keep-alive is opt-in
//!   rather than the HTTP/1.1 default so legacy clients that read to
//!   EOF (every test and bench client predating the event loop) keep
//!   working unchanged.
//!
//! Defensive posture (each mapped to a distinct status):
//! - request line longer than [`MAX_REQUEST_LINE`] → `414`
//! - header block longer than [`MAX_HEAD`] or missing the `\r\n\r\n`
//!   terminator before EOF → `400`
//! - socket read timeout (slowloris: bytes trickling in forever) → `408`
//! - any method but `GET` → `405`
//! - malformed query values (`k=banana`) → `400`, reported per-parameter
//!
//! The response-rendering half is allocation-disciplined: head and error
//! rendering append into caller-owned arenas ([`write_response_head`],
//! [`write_error_response`]) instead of `format!`-ing fresh `String`s,
//! so the event loop's steady state does not touch the allocator.

use std::io::{ErrorKind, Read};

/// Longest accepted request line (`GET <target> HTTP/1.1`).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted request head (request line + all headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request target: path plus decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// URL path, percent-decoded (e.g. `/article/17`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served. Ordered roughly by how early in the
/// connection lifecycle each is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line exceeded [`MAX_REQUEST_LINE`] → `414 URI Too Long`.
    RequestLineTooLong,
    /// Head exceeded [`MAX_HEAD`], EOF before `\r\n\r\n`, or a request
    /// line that is not `METHOD TARGET VERSION` → `400 Bad Request`.
    Malformed(String),
    /// The socket timed out before a full head arrived → `408`.
    Timeout,
    /// Parsed fine but the method is not `GET` → `405`.
    MethodNotAllowed(String),
}

impl HttpError {
    /// The response status code for this error.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::RequestLineTooLong => 414,
            HttpError::Malformed(_) => 400,
            HttpError::Timeout => 408,
            HttpError::MethodNotAllowed(_) => 405,
        }
    }

    /// Human-readable cause, embedded in the JSON error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::RequestLineTooLong => {
                format!("request line exceeds {MAX_REQUEST_LINE} bytes")
            }
            HttpError::Malformed(why) => why.clone(),
            HttpError::Timeout => "timed out waiting for request".to_string(),
            HttpError::MethodNotAllowed(m) => format!("method {m} not allowed (only GET)"),
        }
    }
}

/// Read one request head from `stream` and parse its request line.
///
/// Reads until `\r\n\r\n` (headers are ignored — the API needs none),
/// enforcing [`MAX_REQUEST_LINE`] / [`MAX_HEAD`] as the bytes arrive, so
/// an attacker cannot buffer unbounded garbage. A read timeout configured
/// on the stream surfaces as [`HttpError::Timeout`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    read_request_with_target(stream).map(|(req, _)| req)
}

/// [`read_request`], also returning the raw (undecoded) request target
/// exactly as it appeared on the wire. The recording path needs the raw
/// form: RLOGv1 stores targets verbatim so replay re-issues the same
/// bytes the original client sent.
pub fn read_request_with_target(stream: &mut impl Read) -> Result<(Request, String), HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        if find_terminator(&head).is_some() {
            break;
        }
        // Enforce limits *before* reading more: if the request line is
        // already over budget there is no point waiting for the rest.
        if !head.contains(&b'\n') && head.len() > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::Malformed(format!("request head exceeds {MAX_HEAD} bytes")));
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before end of request head".to_string(),
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Malformed(format!("read error: {e}"))),
        };
        let Some(chunk) = buf.get(..n) else {
            // A Read impl that reports more bytes than the buffer holds
            // is broken; refuse the request rather than trust it.
            return Err(HttpError::Malformed("reader returned more bytes than requested".into()));
        };
        head.extend_from_slice(chunk);
    }

    let Some(line_end) = head.iter().position(|&b| b == b'\n') else {
        // Unreachable while find_terminator requires a newline, but a 400
        // is the right answer if that invariant ever shifts.
        return Err(HttpError::Malformed("request head has no request line".into()));
    };
    if line_end > MAX_REQUEST_LINE {
        return Err(HttpError::RequestLineTooLong);
    }
    let line_bytes = head.get(..line_end).unwrap_or_default();
    let line = String::from_utf8_lossy(line_bytes);
    let line = line.trim_end_matches(['\r', '\n']);
    let req = parse_request_line(line)?;
    let range = target_range(line_bytes);
    let target = String::from_utf8_lossy(line_bytes.get(range).unwrap_or_default()).into_owned();
    Ok((req, target))
}

/// Position just past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_terminator(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| head.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

/// One request head parsed out of a connection's read buffer by
/// [`try_parse_head`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedHead {
    /// The parsed request (path + decoded query), same shape the
    /// blocking path produces.
    pub req: Request,
    /// Bytes consumed from the buffer, through the head terminator.
    /// The event loop drains `consumed` bytes and re-parses whatever
    /// remains — the remainder is the next pipelined request.
    pub consumed: usize,
    /// The client sent an explicit `Connection: keep-alive`. Absent the
    /// header (or on `Connection: close`) the connection closes after
    /// the response, regardless of HTTP version — see the module docs
    /// for why keep-alive is opt-in here.
    pub keep_alive: bool,
    /// Byte range of the raw (undecoded) request target within the
    /// buffer. Used as a response-cache key: comparing raw bytes is
    /// exact (two targets with the same raw bytes decode identically)
    /// and costs no allocation.
    pub target: core::ops::Range<usize>,
}

/// Incrementally parse one request head out of `buf`.
///
/// Returns `Ok(None)` when the terminator has not arrived yet (the
/// caller should read more bytes and retry with the grown buffer) —
/// but still enforces [`MAX_REQUEST_LINE`] / [`MAX_HEAD`] on the
/// partial data, so a connection trickling an unbounded head is
/// rejected as soon as it crosses a limit, not when it finishes.
pub fn try_parse_head(buf: &[u8]) -> Result<Option<ParsedHead>, HttpError> {
    let Some(consumed) = find_terminator(buf) else {
        // Same early-limit discipline as the blocking reader: if the
        // request line is already over budget there is no point
        // buffering the rest.
        if !buf.contains(&b'\n') && buf.len() > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::Malformed(format!("request head exceeds {MAX_HEAD} bytes")));
        }
        return Ok(None);
    };
    if consumed > MAX_HEAD {
        return Err(HttpError::Malformed(format!("request head exceeds {MAX_HEAD} bytes")));
    }
    let head = buf.get(..consumed).unwrap_or_default();
    let Some(line_end) = head.iter().position(|&b| b == b'\n') else {
        return Err(HttpError::Malformed("request head has no request line".into()));
    };
    if line_end > MAX_REQUEST_LINE {
        return Err(HttpError::RequestLineTooLong);
    }
    let line_bytes = head.get(..line_end).unwrap_or_default();
    let line = String::from_utf8_lossy(line_bytes);
    let req = parse_request_line(line.trim_end_matches(['\r', '\n']))?;
    let target = target_range(line_bytes);
    let keep_alive = wants_keep_alive(head.get(line_end + 1..).unwrap_or_default());
    Ok(Some(ParsedHead { req, consumed, keep_alive, target }))
}

/// Byte range of the second whitespace-delimited token of `line` — the
/// request target. Empty on a degenerate line; the caller only uses the
/// range as a cache key, so an empty key merely misses the cache.
fn target_range(line: &[u8]) -> core::ops::Range<usize> {
    let is_ws = |b: u8| b == b' ' || b == b'\t';
    let mut i = 0;
    while line.get(i).is_some_and(|&b| !is_ws(b)) {
        i += 1; // skip the method token
    }
    while line.get(i).is_some_and(|&b| is_ws(b)) {
        i += 1;
    }
    let start = i;
    while line.get(i).is_some_and(|&b| !is_ws(b) && b != b'\r') {
        i += 1;
    }
    start..i
}

/// Whether the header block carries an explicit `Connection: keep-alive`.
///
/// The Connection header value is a comma-separated option list; an
/// explicit `close` anywhere in it wins over `keep-alive`.
fn wants_keep_alive(headers: &[u8]) -> bool {
    for raw in headers.split(|&b| b == b'\n') {
        let line = String::from_utf8_lossy(raw);
        let Some((name, value)) = line.split_once(':') else { continue };
        if !name.trim().eq_ignore_ascii_case("connection") {
            continue;
        }
        let mut keep = false;
        for opt in value.split(',') {
            let opt = opt.trim();
            if opt.eq_ignore_ascii_case("close") {
                return false;
            }
            if opt.eq_ignore_ascii_case("keep-alive") {
                keep = true;
            }
        }
        return keep;
    }
    false
}

fn parse_request_line(line: &str) -> Result<Request, HttpError> {
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line is not 'METHOD TARGET VERSION': {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    if method != "GET" {
        return Err(HttpError::MethodNotAllowed(method.to_string()));
    }
    Ok(parse_target(target))
}

/// Parse a bare request target (`/top?k=5&venue=X`) into a [`Request`],
/// exactly as the request-line parser would — same percent decoding,
/// same query splitting. This is what lets a recorded raw target (RLOGv1
/// stores targets verbatim off the wire) be re-interpreted offline:
/// shadow replay routes a recorded target through the same parse the
/// live server used.
pub fn parse_target(target: &str) -> Request {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();
    Request { path: percent_decode(path), query }
}

/// Decode `%XX` escapes and `+`-for-space. Invalid escapes pass through
/// literally (they can only make lookups miss, never panic).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h << 4 | l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(c @ b'0'..=b'9') => Some(c - b'0'),
        Some(c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Append the decimal rendering of `v` to `out` without allocating.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    let mut tmp = [0u8; 20];
    let mut n = 0;
    loop {
        // lint: allow(HOTPATH-PANIC) n < 20: a u64 has at most 20 decimal digits
        tmp[n] = b'0' + (v % 10) as u8;
        n += 1;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.extend(tmp.iter().take(n).rev());
}

/// Append one complete HTTP/1.1 response head (status line + headers +
/// blank line) to `out` without allocating. The caller appends exactly
/// `content_length` body bytes after it.
pub fn write_response_head(
    out: &mut Vec<u8>,
    status: u16,
    content_length: usize,
    keep_alive: bool,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    write_u64(out, u64::from(status));
    out.push(b' ');
    out.extend_from_slice(reason(status).as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: application/json\r\nContent-Length: ");
    write_u64(out, content_length as u64);
    out.extend_from_slice(if keep_alive {
        b"\r\nConnection: keep-alive\r\n\r\n".as_slice()
    } else {
        b"\r\nConnection: close\r\n\r\n".as_slice()
    });
}

fn hex_digit(v: u8) -> u8 {
    match v {
        0..=9 => b'0' + v,
        _ => b'a' + (v - 10),
    }
}

/// Append `s` JSON-string-escaped (no surrounding quotes) to `out`.
/// Mirrors the escaping `sjson` applies, so bodies assembled byte-wise
/// parse identically to builder-produced ones.
pub fn write_json_escaped(out: &mut Vec<u8>, s: &str) {
    for &b in s.as_bytes() {
        match b {
            b'"' => out.extend_from_slice(b"\\\""),
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            b'\t' => out.extend_from_slice(b"\\t"),
            0x00..=0x1f => {
                out.extend_from_slice(b"\\u00");
                out.push(hex_digit(b >> 4));
                out.push(hex_digit(b & 0xf));
            }
            _ => out.push(b),
        }
    }
}

/// Append one complete error response (head + JSON body matching
/// [`error_body`]'s shape) to `out` without allocating. `scratch` is a
/// caller-owned arena the body is staged in so its length is known
/// before the head is written; it is cleared first.
pub fn write_error_response(
    out: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    status: u16,
    message: &str,
    keep_alive: bool,
) {
    scratch.clear();
    scratch.extend_from_slice(b"{\"error\":\"");
    write_json_escaped(scratch, reason(status));
    scratch.extend_from_slice(b"\",\"status\":");
    write_u64(scratch, u64::from(status));
    scratch.extend_from_slice(b",\"message\":\"");
    write_json_escaped(scratch, message);
    scratch.extend_from_slice(b"\"}");
    write_response_head(out, status, scratch.len(), keep_alive);
    out.extend_from_slice(scratch);
}

/// Serialize one complete `Connection: close` HTTP/1.1 response with a
/// JSON body.
pub fn response_bytes(status: u16, body: &sjson::Value) -> Vec<u8> {
    let body = body.to_string_compact();
    let mut out = Vec::with_capacity(body.len() + 96);
    write_response_head(&mut out, status, body.len(), false);
    out.extend_from_slice(body.as_bytes());
    out
}

/// The JSON error body every non-2xx response carries.
pub fn error_body(status: u16, message: &str) -> sjson::Value {
    sjson::ObjectBuilder::new()
        .field("error", reason(status))
        .field("status", status as i64)
        .field("message", message)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_simple_get_with_query() {
        let r = parse("GET /top?k=5&venue=ICDE HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.path, "/top");
        assert_eq!(r.param("k"), Some("5"));
        assert_eq!(r.param("venue"), Some("ICDE"));
        assert_eq!(r.param("nope"), None);
    }

    #[test]
    fn percent_decoding_applies_to_path_and_params() {
        let r = parse("GET /top?author=Ada%20Lovelace&x=a%2Bb+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("author"), Some("Ada Lovelace"));
        assert_eq!(r.param("x"), Some("a+b c"));
        // Invalid escapes survive literally instead of erroring.
        assert_eq!(percent_decode("100%_x%zz"), "100%_x%zz");
    }

    #[test]
    fn oversized_request_line_is_414() {
        let raw = format!("GET /top?junk={} HTTP/1.1\r\n\r\n", "x".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(&raw), Err(HttpError::RequestLineTooLong));
        assert_eq!(HttpError::RequestLineTooLong.status(), 414);
    }

    #[test]
    fn missing_terminator_is_400() {
        let err = parse("GET /top HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("before end of request head"), "{}", err.message());
    }

    #[test]
    fn oversized_head_is_400() {
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n", "y".repeat(MAX_HEAD + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("head exceeds"));
    }

    #[test]
    fn garbage_request_line_is_400() {
        for raw in ["WHAT\r\n\r\n", "GET /top\r\n\r\n", "GET /x SMTP/3 extra\r\n\r\n"] {
            assert_eq!(parse(raw).unwrap_err().status(), 400, "raw = {raw:?}");
        }
        // Unsupported protocol version.
        assert_eq!(parse("GET / HTTP/3.0\r\n\r\n").unwrap_err().status(), 400);
    }

    #[test]
    fn non_get_is_405() {
        let err = parse("POST /top HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MethodNotAllowed("POST".to_string()));
        assert_eq!(err.status(), 405);
    }

    /// A reader that yields a few bytes then pretends the socket timed
    /// out — the slowloris case as the server sees it.
    struct Slowloris {
        sent: bool,
    }
    impl Read for Slowloris {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "timed out"))
            } else {
                self.sent = true;
                let part = b"GET /top?k=";
                buf[..part.len()].copy_from_slice(part);
                Ok(part.len())
            }
        }
    }

    #[test]
    fn slow_trickle_hits_timeout_408() {
        let err = read_request(&mut Slowloris { sent: false }).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let body = sjson::ObjectBuilder::new().field("ok", true).build();
        let raw = response_bytes(200, &body);
        let text = String::from_utf8(raw).unwrap();
        let (head, payload) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Content-Type: application/json"));
        assert!(head.contains(&format!("Content-Length: {}", payload.len())));
        assert!(head.contains("Connection: close"));
        assert_eq!(sjson::parse(payload).unwrap().get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn error_body_names_the_status() {
        let v = error_body(404, "no such article");
        assert_eq!(v.get("status").unwrap().as_i64(), Some(404));
        assert_eq!(v.get("error").unwrap().as_str(), Some("Not Found"));
        assert_eq!(v.get("message").unwrap().as_str(), Some("no such article"));
    }

    #[test]
    fn try_parse_needs_more_until_terminator_arrives() {
        let full = b"GET /top?k=3 HTTP/1.1\r\nHost: x\r\n\r\n";
        // Every strict prefix is NeedMore; the full head parses.
        for cut in 0..full.len() - 1 {
            assert_eq!(try_parse_head(&full[..cut]).unwrap(), None, "cut={cut}");
        }
        let h = try_parse_head(full).unwrap().unwrap();
        assert_eq!(h.req.path, "/top");
        assert_eq!(h.req.param("k"), Some("3"));
        assert_eq!(h.consumed, full.len());
        assert!(!h.keep_alive);
        assert_eq!(&full[h.target.clone()], b"/top?k=3");
    }

    #[test]
    fn try_parse_consumed_splits_pipelined_requests() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /top?k=1 HTTP/1.1\r\n\r\n".to_vec();
        let first = try_parse_head(&raw).unwrap().unwrap();
        assert_eq!(first.req.path, "/health");
        let rest = &raw[first.consumed..];
        let second = try_parse_head(rest).unwrap().unwrap();
        assert_eq!(second.req.path, "/top");
        assert_eq!(second.consumed, rest.len());
        assert_eq!(&rest[second.target.clone()], b"/top?k=1");
    }

    #[test]
    fn keep_alive_is_explicit_opt_in() {
        let parse_ka = |head: &str| try_parse_head(head.as_bytes()).unwrap().unwrap().keep_alive;
        // No Connection header → close, even on HTTP/1.1.
        assert!(!parse_ka("GET / HTTP/1.1\r\nHost: x\r\n\r\n"));
        assert!(parse_ka("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n"));
        // Case-insensitive name and value.
        assert!(parse_ka("GET / HTTP/1.1\r\nCONNECTION: Keep-Alive\r\n\r\n"));
        assert!(!parse_ka("GET / HTTP/1.1\r\nConnection: close\r\n\r\n"));
        // close anywhere in the option list wins.
        assert!(!parse_ka("GET / HTTP/1.1\r\nConnection: keep-alive, close\r\n\r\n"));
        assert!(parse_ka("GET / HTTP/1.1\r\nConnection: foo, keep-alive\r\n\r\n"));
    }

    #[test]
    fn try_parse_enforces_limits_on_partial_heads() {
        // Oversized request line with no newline yet → 414 immediately.
        let long = format!("GET /{}", "x".repeat(MAX_REQUEST_LINE));
        assert_eq!(try_parse_head(long.as_bytes()), Err(HttpError::RequestLineTooLong));
        // Oversized head (newline present, no terminator) → 400.
        let fat = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n", "y".repeat(MAX_HEAD));
        assert_eq!(try_parse_head(fat.as_bytes()).unwrap_err().status(), 400);
        // Errors propagate from the shared request-line grammar too.
        assert_eq!(
            try_parse_head(b"POST / HTTP/1.1\r\n\r\n").unwrap_err(),
            HttpError::MethodNotAllowed("POST".to_string())
        );
    }

    #[test]
    fn write_u64_renders_decimal() {
        for v in [0u64, 1, 9, 10, 204, 65535, u64::MAX] {
            let mut out = Vec::new();
            write_u64(&mut out, v);
            assert_eq!(String::from_utf8(out).unwrap(), v.to_string());
        }
    }

    #[test]
    fn written_head_matches_format_rendering() {
        for (status, len, ka) in [(200u16, 0usize, false), (404, 123, true), (500, 9999, false)] {
            let mut out = Vec::new();
            write_response_head(&mut out, status, len, ka);
            let conn = if ka { "keep-alive" } else { "close" };
            let expect = format!(
                "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                status,
                reason(status),
                len,
                conn
            );
            assert_eq!(String::from_utf8(out).unwrap(), expect);
        }
    }

    #[test]
    fn written_error_response_parses_and_escapes() {
        let mut out = Vec::new();
        let mut scratch = Vec::new();
        let nasty = "quote \" slash \\ newline \n ctl \u{1}";
        write_error_response(&mut out, &mut scratch, 400, nasty, true);
        let text = String::from_utf8(out).unwrap();
        let (head, payload) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 400 Bad Request\r\n"));
        assert!(head.contains("Connection: keep-alive"));
        assert!(head.contains(&format!("Content-Length: {}", payload.len())));
        let v = sjson::parse(payload).unwrap();
        assert_eq!(v.get("status").unwrap().as_i64(), Some(400));
        assert_eq!(v.get("message").unwrap().as_str(), Some(nasty));
        // Matches the builder-rendered body byte for byte.
        assert_eq!(payload, error_body(400, nasty).to_string_compact());
    }
}
