//! A deliberately small HTTP/1.1 layer over `std::net`: enough to parse
//! one `GET` request defensively and write one `Connection: close`
//! response. No external dependencies, no keep-alive, no chunked bodies —
//! the serving API is read-only and every response is a single JSON
//! document, so the simplest correct subset of the protocol wins.
//!
//! Defensive posture (each mapped to a distinct status):
//! - request line longer than [`MAX_REQUEST_LINE`] → `414`
//! - header block longer than [`MAX_HEAD`] or missing the `\r\n\r\n`
//!   terminator before EOF → `400`
//! - socket read timeout (slowloris: bytes trickling in forever) → `408`
//! - any method but `GET` → `405`
//! - malformed query values (`k=banana`) → `400`, reported per-parameter

use std::io::{ErrorKind, Read};

/// Longest accepted request line (`GET <target> HTTP/1.1`).
pub const MAX_REQUEST_LINE: usize = 4096;
/// Longest accepted request head (request line + all headers).
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed request target: path plus decoded query parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// URL path, percent-decoded (e.g. `/article/17`).
    pub path: String,
    /// Query parameters in order of appearance, percent-decoded.
    pub query: Vec<(String, String)>,
}

impl Request {
    /// First value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be served. Ordered roughly by how early in the
/// connection lifecycle each is detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Request line exceeded [`MAX_REQUEST_LINE`] → `414 URI Too Long`.
    RequestLineTooLong,
    /// Head exceeded [`MAX_HEAD`], EOF before `\r\n\r\n`, or a request
    /// line that is not `METHOD TARGET VERSION` → `400 Bad Request`.
    Malformed(String),
    /// The socket timed out before a full head arrived → `408`.
    Timeout,
    /// Parsed fine but the method is not `GET` → `405`.
    MethodNotAllowed(String),
}

impl HttpError {
    /// The response status code for this error.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::RequestLineTooLong => 414,
            HttpError::Malformed(_) => 400,
            HttpError::Timeout => 408,
            HttpError::MethodNotAllowed(_) => 405,
        }
    }

    /// Human-readable cause, embedded in the JSON error body.
    pub fn message(&self) -> String {
        match self {
            HttpError::RequestLineTooLong => {
                format!("request line exceeds {MAX_REQUEST_LINE} bytes")
            }
            HttpError::Malformed(why) => why.clone(),
            HttpError::Timeout => "timed out waiting for request".to_string(),
            HttpError::MethodNotAllowed(m) => format!("method {m} not allowed (only GET)"),
        }
    }
}

/// Read one request head from `stream` and parse its request line.
///
/// Reads until `\r\n\r\n` (headers are ignored — the API needs none),
/// enforcing [`MAX_REQUEST_LINE`] / [`MAX_HEAD`] as the bytes arrive, so
/// an attacker cannot buffer unbounded garbage. A read timeout configured
/// on the stream surfaces as [`HttpError::Timeout`].
pub fn read_request(stream: &mut impl Read) -> Result<Request, HttpError> {
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 1024];
    loop {
        if find_terminator(&head).is_some() {
            break;
        }
        // Enforce limits *before* reading more: if the request line is
        // already over budget there is no point waiting for the rest.
        if !head.contains(&b'\n') && head.len() > MAX_REQUEST_LINE {
            return Err(HttpError::RequestLineTooLong);
        }
        if head.len() > MAX_HEAD {
            return Err(HttpError::Malformed(format!("request head exceeds {MAX_HEAD} bytes")));
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                return Err(HttpError::Malformed(
                    "connection closed before end of request head".to_string(),
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                return Err(HttpError::Timeout)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(HttpError::Malformed(format!("read error: {e}"))),
        };
        let Some(chunk) = buf.get(..n) else {
            // A Read impl that reports more bytes than the buffer holds
            // is broken; refuse the request rather than trust it.
            return Err(HttpError::Malformed("reader returned more bytes than requested".into()));
        };
        head.extend_from_slice(chunk);
    }

    let Some(line_end) = head.iter().position(|&b| b == b'\n') else {
        // Unreachable while find_terminator requires a newline, but a 400
        // is the right answer if that invariant ever shifts.
        return Err(HttpError::Malformed("request head has no request line".into()));
    };
    if line_end > MAX_REQUEST_LINE {
        return Err(HttpError::RequestLineTooLong);
    }
    let line = String::from_utf8_lossy(head.get(..line_end).unwrap_or_default());
    let line = line.trim_end_matches(['\r', '\n']);
    parse_request_line(line)
}

/// Position just past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_terminator(head: &[u8]) -> Option<usize> {
    head.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| head.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

fn parse_request_line(line: &str) -> Result<Request, HttpError> {
    let mut parts = line.split_ascii_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "request line is not 'METHOD TARGET VERSION': {line:?}"
            )))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("unsupported protocol version {version:?}")));
    }
    if method != "GET" {
        return Err(HttpError::MethodNotAllowed(method.to_string()));
    }
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (percent_decode(k), percent_decode(v))
        })
        .collect();
    Ok(Request { path: percent_decode(path), query })
}

/// Decode `%XX` escapes and `+`-for-space. Invalid escapes pass through
/// literally (they can only make lookups miss, never panic).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        match byte {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h << 4 | l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b {
        Some(c @ b'0'..=b'9') => Some(c - b'0'),
        Some(c @ b'a'..=b'f') => Some(c - b'a' + 10),
        Some(c @ b'A'..=b'F') => Some(c - b'A' + 10),
        _ => None,
    }
}

/// Standard reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        414 => "URI Too Long",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize one complete `Connection: close` HTTP/1.1 response with a
/// JSON body.
pub fn response_bytes(status: u16, body: &sjson::Value) -> Vec<u8> {
    let body = body.to_string_compact();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// The JSON error body every non-2xx response carries.
pub fn error_body(status: u16, message: &str) -> sjson::Value {
    sjson::ObjectBuilder::new()
        .field("error", reason(status))
        .field("status", status as i64)
        .field("message", message)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut Cursor::new(raw.as_bytes().to_vec()))
    }

    #[test]
    fn parses_simple_get_with_query() {
        let r = parse("GET /top?k=5&venue=ICDE HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.path, "/top");
        assert_eq!(r.param("k"), Some("5"));
        assert_eq!(r.param("venue"), Some("ICDE"));
        assert_eq!(r.param("nope"), None);
    }

    #[test]
    fn percent_decoding_applies_to_path_and_params() {
        let r = parse("GET /top?author=Ada%20Lovelace&x=a%2Bb+c HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(r.param("author"), Some("Ada Lovelace"));
        assert_eq!(r.param("x"), Some("a+b c"));
        // Invalid escapes survive literally instead of erroring.
        assert_eq!(percent_decode("100%_x%zz"), "100%_x%zz");
    }

    #[test]
    fn oversized_request_line_is_414() {
        let raw = format!("GET /top?junk={} HTTP/1.1\r\n\r\n", "x".repeat(MAX_REQUEST_LINE));
        assert_eq!(parse(&raw), Err(HttpError::RequestLineTooLong));
        assert_eq!(HttpError::RequestLineTooLong.status(), 414);
    }

    #[test]
    fn missing_terminator_is_400() {
        let err = parse("GET /top HTTP/1.1\r\nHost: x\r\n").unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("before end of request head"), "{}", err.message());
    }

    #[test]
    fn oversized_head_is_400() {
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n", "y".repeat(MAX_HEAD + 10));
        let err = parse(&raw).unwrap_err();
        assert_eq!(err.status(), 400);
        assert!(err.message().contains("head exceeds"));
    }

    #[test]
    fn garbage_request_line_is_400() {
        for raw in ["WHAT\r\n\r\n", "GET /top\r\n\r\n", "GET /x SMTP/3 extra\r\n\r\n"] {
            assert_eq!(parse(raw).unwrap_err().status(), 400, "raw = {raw:?}");
        }
        // Unsupported protocol version.
        assert_eq!(parse("GET / HTTP/3.0\r\n\r\n").unwrap_err().status(), 400);
    }

    #[test]
    fn non_get_is_405() {
        let err = parse("POST /top HTTP/1.1\r\n\r\n").unwrap_err();
        assert_eq!(err, HttpError::MethodNotAllowed("POST".to_string()));
        assert_eq!(err.status(), 405);
    }

    /// A reader that yields a few bytes then pretends the socket timed
    /// out — the slowloris case as the server sees it.
    struct Slowloris {
        sent: bool,
    }
    impl Read for Slowloris {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.sent {
                Err(std::io::Error::new(ErrorKind::WouldBlock, "timed out"))
            } else {
                self.sent = true;
                let part = b"GET /top?k=";
                buf[..part.len()].copy_from_slice(part);
                Ok(part.len())
            }
        }
    }

    #[test]
    fn slow_trickle_hits_timeout_408() {
        let err = read_request(&mut Slowloris { sent: false }).unwrap_err();
        assert_eq!(err, HttpError::Timeout);
        assert_eq!(err.status(), 408);
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let body = sjson::ObjectBuilder::new().field("ok", true).build();
        let raw = response_bytes(200, &body);
        let text = String::from_utf8(raw).unwrap();
        let (head, payload) = text.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(head.contains("Content-Type: application/json"));
        assert!(head.contains(&format!("Content-Length: {}", payload.len())));
        assert!(head.contains("Connection: close"));
        assert_eq!(sjson::parse(payload).unwrap().get("ok").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn error_body_names_the_status() {
        let v = error_body(404, "no such article");
        assert_eq!(v.get("status").unwrap().as_i64(), Some(404));
        assert_eq!(v.get("error").unwrap().as_str(), Some("Not Found"));
        assert_eq!(v.get("message").unwrap().as_str(), Some("no such article"));
    }
}
