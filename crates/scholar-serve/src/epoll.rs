//! The nonblocking epoll backend: SO_REUSEPORT-sharded event loops with
//! HTTP/1.1 keep-alive, pipelining, and a zero-alloc response path.
//!
//! Each shard is one thread owning one `SO_REUSEPORT` listener and one
//! epoll instance — the kernel spreads incoming connections across
//! shards, so there is no accept lock and no cross-thread hand-off.
//! Within a shard everything is single-threaded: connections live in a
//! slab indexed by the epoll token, and all per-request scratch (top-k
//! id vector, body staging arena, rendered-response cache) is shard
//! state reused across requests, so the steady-state `/top` hot path
//! performs no allocations at all.
//!
//! ## Readiness state machine
//!
//! Sockets are registered edge-triggered for `IN | OUT | RDHUP`. Each
//! wake-up drives one connection through three phases:
//!
//! 1. **read** — drain the socket into the connection's buffer until
//!    `WouldBlock` (edge-triggered epoll requires draining) or EOF;
//! 2. **process** — peel complete request heads off the buffer with
//!    [`http::try_parse_head`], rendering each response into the
//!    connection's output buffer. Multiple heads in one buffer are
//!    pipelined requests: all are answered, in order, in one pass. A
//!    request without `Connection: keep-alive` marks the connection
//!    close-after-flush and stops the pipeline (parity with the
//!    blocking backend's one-request connections);
//! 3. **flush** — write the output buffer until done or `WouldBlock`;
//!    leftover bytes wait for the next `EPOLLOUT` edge.
//!
//! An idle sweep evicts connections idle past the read timeout:
//! mid-request stalls get the same `408` the blocking path produces
//! (slowloris parity); idle keep-alive connections are closed silently,
//! as keep-alive clients expect. The `epoll_wait` timeout is
//! deadline-driven: it is the time until the earliest idle connection's
//! eviction deadline, capped at [`TICK_MS`] (the stop-flag check
//! cadence), so an eviction lands within about a millisecond of its
//! deadline instead of up to a full tick late.
//!
//! ## Cache invalidation on swap
//!
//! The response cache keys on the raw request-target bytes and stamps
//! each entry with the generation of the index snapshot that rendered
//! it. A lookup only returns an entry whose stamp equals the *current*
//! snapshot's generation — publishing a new generation therefore
//! invalidates every entry at once without touching the cache, because
//! the stamp comparison fails. Stale entries are simply overwritten on
//! the next miss or evicted by LRU order.

use crate::http::{self, ParsedHead};
use crate::metrics::Metrics;
use crate::server::{self, ServeConfig};
use crate::swap::SharedIndex;
use crate::sys::{self, Epoll, EpollEvent};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Maximum epoll wait timeout: the cadence of the stop-flag check. The
/// actual timeout is the sooner of this and the earliest idle-eviction
/// deadline, so evictions are not quantized to this tick.
const TICK_MS: i32 = 25;
/// Events drained per `epoll_wait` call.
const EVENTS_CAP: usize = 256;
/// Stop the read phase and process once the buffer holds this much —
/// bounds memory against a client pipelining without bound. The loop
/// returns to reading afterwards, so nothing is lost.
const READ_LIMIT: usize = 64 * 1024;
/// Stop rendering pipelined responses once this much output is pending
/// flush — bounds memory against a client that pipelines requests but
/// never reads answers. Processing resumes as the client drains.
const WRITE_LIMIT: usize = 256 * 1024;
/// Rendered-response cache: entries per shard.
const CACHE_CAP: usize = 256;
/// Largest body the cache will hold (a `/top?k=10000` answer is ~1.5MB;
/// caching those would blow the per-shard memory budget).
const CACHE_MAX_BODY: usize = 64 * 1024;
/// Epoll token reserved for the shard's listener.
const LISTENER_TOKEN: u64 = u64::MAX;

/// Start the epoll backend: one shard thread per `config.workers`, all
/// listening on the same port via `SO_REUSEPORT`.
pub(crate) fn start(
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    config: &ServeConfig,
    stop: Arc<AtomicBool>,
) -> std::io::Result<(SocketAddr, Vec<JoinHandle<()>>)> {
    use std::net::ToSocketAddrs;
    let requested = config.addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
    })?;

    // The first bind may ask for port 0; every further shard must bind
    // the concrete port the kernel picked.
    let first = sys::bind_reuseport(requested)?;
    let addr = first.local_addr()?;
    let shards = config.workers.max(1);
    let mut listeners = vec![first];
    for _ in 1..shards {
        listeners.push(sys::bind_reuseport(addr)?);
    }

    let mut threads = Vec::with_capacity(shards);
    for (i, listener) in listeners.into_iter().enumerate() {
        let shared = Arc::clone(&shared);
        let metrics = Arc::clone(&metrics);
        let stop = Arc::clone(&stop);
        let read_timeout = config.read_timeout;
        let max_conns = config.max_conns.max(1);
        let recorder = config.recorder.clone();
        let thread =
            std::thread::Builder::new().name(format!("scholar-epoll-{i}")).spawn(move || {
                match Shard::new(listener, shared, metrics, read_timeout, max_conns, recorder) {
                    Ok(mut shard) => shard.run(&stop),
                    Err(e) => eprintln!("scholar-serve: epoll shard {i} failed to start: {e}"),
                }
            })?;
        threads.push(thread);
    }
    Ok((addr, threads))
}

/// One connection's state between wake-ups.
struct Conn {
    stream: TcpStream,
    /// Unparsed request bytes (the per-connection read arena).
    buf: Vec<u8>,
    /// Rendered-but-unflushed response bytes.
    out: Vec<u8>,
    /// How much of `out` has been written so far.
    out_pos: usize,
    last_activity: Instant,
    /// Requests completed on this connection (keep-alive accounting).
    served: u64,
    /// Close once `out` is fully flushed (response said close, or a
    /// parse error poisoned the byte stream).
    close_after_flush: bool,
    /// Peer EOF seen: flush what we owe, read nothing more.
    peer_gone: bool,
    /// Recorder-assigned connection id (0 without a recorder); recorded
    /// requests carry it so replay can preserve per-connection order.
    id: u64,
}

enum Drive {
    Keep,
    Close,
}

/// Shard-level request context: everything the render path needs, kept
/// apart from the connection slab so a connection and the context can
/// be borrowed mutably at the same time.
struct Ctx {
    shared: Arc<SharedIndex>,
    metrics: Arc<Metrics>,
    read_timeout: Duration,
    /// Scratch for [`crate::ScoreIndex::top_ids_into`].
    ids: Vec<u32>,
    /// Body staging arena (bodies are built here so their length is
    /// known before the head is written).
    body: Vec<u8>,
    cache: TopCache,
    /// Optional request recorder shared by every shard.
    recorder: Option<Arc<crate::record::Recorder>>,
}

struct Shard {
    epoll: Epoll,
    listener: TcpListener,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    active: usize,
    max_conns: usize,
    ctx: Ctx,
}

impl Shard {
    fn new(
        listener: TcpListener,
        shared: Arc<SharedIndex>,
        metrics: Arc<Metrics>,
        read_timeout: Duration,
        max_conns: usize,
        recorder: Option<Arc<crate::record::Recorder>>,
    ) -> std::io::Result<Shard> {
        let epoll = Epoll::new()?;
        epoll.add(listener.as_raw_fd(), LISTENER_TOKEN, sys::EPOLLIN)?;
        Ok(Shard {
            epoll,
            listener,
            conns: Vec::new(),
            free: Vec::new(),
            active: 0,
            max_conns,
            ctx: Ctx {
                shared,
                metrics,
                read_timeout,
                ids: Vec::new(),
                body: Vec::new(),
                cache: TopCache::new(CACHE_CAP),
                recorder,
            },
        })
    }

    fn run(&mut self, stop: &AtomicBool) {
        let mut events = vec![EpollEvent::zeroed(); EVENTS_CAP];
        let mut next_deadline: Option<Instant> = None;
        while !stop.load(Ordering::SeqCst) {
            // Wake for the earliest idle-eviction deadline if it is
            // sooner than the stop-check tick; round the remainder up so
            // a sub-millisecond wait cannot spin at timeout zero.
            let timeout = match next_deadline {
                Some(d) => {
                    let left = d.saturating_duration_since(Instant::now());
                    left.as_millis().saturating_add(1).min(TICK_MS as u128) as i32
                }
                None => TICK_MS,
            };
            let n = match self.epoll.wait(&mut events, timeout) {
                Ok(n) => n,
                Err(e) => {
                    eprintln!("scholar-serve: epoll_wait failed: {e}");
                    break;
                }
            };
            if stop.load(Ordering::SeqCst) {
                break;
            }
            for ev in events.iter().take(n) {
                let (token, bits) = (ev.data, ev.events);
                if token == LISTENER_TOKEN {
                    self.accept_ready();
                } else if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0
                    && bits & (sys::EPOLLIN | sys::EPOLLOUT) == 0
                {
                    // Error-only wake: the socket is dead and there is
                    // nothing left to read or write. (A HUP with unread
                    // data arrives with EPOLLIN set and drives normally.)
                    self.close(token as usize);
                } else {
                    self.conn_ready(token as usize);
                }
            }
            next_deadline = self.sweep_idle();
        }
        self.drain_pending_writes();
    }

    /// Accept until the listener runs dry (edge-triggered discipline —
    /// level-triggered here, but draining keeps the backlog short).
    fn accept_ready(&mut self) {
        loop {
            let (stream, _) = match self.listener.accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            if self.active >= self.max_conns {
                // Shed at the door, exactly like the blocking acceptor
                // does when its queue is full. The accepted socket is
                // still blocking; the small response fits in the socket
                // buffer, so this cannot stall the loop meaningfully.
                self.ctx.metrics.record_shed();
                let body = http::error_body(503, "server is at capacity, retry shortly");
                let mut stream = stream;
                let _ = stream.write_all(&http::response_bytes(503, &body));
                continue;
            }
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            let slot = match self.free.pop() {
                Some(s) => s,
                None => {
                    self.conns.push(None);
                    self.conns.len() - 1
                }
            };
            let conn = Conn {
                stream,
                buf: Vec::new(),
                out: Vec::new(),
                out_pos: 0,
                last_activity: Instant::now(),
                served: 0,
                close_after_flush: false,
                peer_gone: false,
                id: self.ctx.recorder.as_ref().map(|r| r.conn_id()).unwrap_or(0),
            };
            let interest = sys::EPOLLIN | sys::EPOLLOUT | sys::EPOLLRDHUP | sys::EPOLLET;
            if self.epoll.add(conn.stream.as_raw_fd(), slot as u64, interest).is_err() {
                self.free.push(slot);
                continue;
            }
            if let Some(cell) = self.conns.get_mut(slot) {
                *cell = Some(conn);
            }
            self.active += 1;
            self.ctx.metrics.record_conn_open();
        }
    }

    fn conn_ready(&mut self, slot: usize) {
        let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else {
            return; // already closed this batch (e.g. error after pipelined close)
        };
        conn.last_activity = Instant::now();
        let ctx = &mut self.ctx;
        // Last-resort isolation, mirroring the blocking worker loop: a
        // bug driving one connection must not take down the shard. The
        // narrow per-request catch inside `process` already turns
        // handler panics into recorded 500s; anything reaching here is
        // outside a request, so the connection is simply dropped.
        let drove = catch_unwind(AssertUnwindSafe(|| drive(conn, ctx)));
        match drove {
            Ok(Drive::Keep) => {}
            Ok(Drive::Close) => self.close(slot),
            Err(cause) => {
                self.ctx.metrics.record_panic();
                server::log_panic("driving a connection", cause.as_ref());
                self.close(slot);
            }
        }
    }

    fn close(&mut self, slot: usize) {
        if let Some(cell) = self.conns.get_mut(slot) {
            if let Some(conn) = cell.take() {
                // Closing the fd deregisters it; the explicit del only
                // tidies the interest list when the fd lives on (it
                // never does here, but the call is harmless).
                let _ = self.epoll.del(conn.stream.as_raw_fd());
                // All bookkeeping happens *before* the fd closes: the
                // close delivers EOF to the client, and a client that
                // reacts to that EOF by reading the metrics must see the
                // gauge already decremented.
                self.free.push(slot);
                self.active -= 1;
                self.ctx.metrics.record_conn_close();
                drop(conn);
            }
        }
    }

    /// Evict connections idle past the read timeout. Mid-request stalls
    /// (bytes buffered, or nothing ever served) answer `408` exactly
    /// like the blocking path's read-timeout; idle keep-alive
    /// connections close silently. Returns the earliest eviction
    /// deadline among the surviving connections, which becomes the next
    /// `epoll_wait` timeout.
    fn sweep_idle(&mut self) -> Option<Instant> {
        let now = Instant::now();
        let timeout = self.ctx.read_timeout;
        let mut earliest: Option<Instant> = None;
        for slot in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(slot).and_then(Option::as_mut) else { continue };
            let idle = now.duration_since(conn.last_activity);
            if idle <= timeout {
                let deadline = conn.last_activity + timeout;
                earliest = Some(match earliest {
                    Some(e) => e.min(deadline),
                    None => deadline,
                });
                continue;
            }
            let mid_request = !conn.buf.is_empty() || conn.served == 0;
            if mid_request && conn.out_pos >= conn.out.len() {
                let _gauge = self.ctx.metrics.begin();
                conn.out.clear();
                conn.out_pos = 0;
                http::write_error_response(
                    &mut conn.out,
                    &mut self.ctx.body,
                    408,
                    "timed out waiting for request",
                    false,
                );
                self.ctx.metrics.record(408, idle);
                self.ctx.metrics.record_generation(self.ctx.shared.generation(), 408);
                // One best-effort nonblocking flush; the client was the
                // slow side, so an unflushed remainder is its loss.
                let _ = flush(conn);
            }
            self.close(slot);
        }
        earliest
    }

    /// Post-shutdown courtesy: responses already rendered get a short
    /// blocking window to reach their clients before the fds close.
    fn drain_pending_writes(&mut self) {
        for cell in self.conns.iter_mut() {
            if let Some(conn) = cell.take() {
                let mut conn = conn;
                if conn.out_pos < conn.out.len() {
                    let _ = conn.stream.set_nonblocking(false);
                    let _ = conn.stream.set_write_timeout(Some(Duration::from_millis(250)));
                    let rest = conn.out.get(conn.out_pos..).unwrap_or_default();
                    let _ = conn.stream.write_all(rest);
                }
                self.ctx.metrics.record_conn_close();
            }
        }
    }
}

fn pending_out(conn: &Conn) -> usize {
    conn.out.len().saturating_sub(conn.out_pos)
}

/// Drive one woken connection through read → process → flush, looping
/// while there is still local work (read cap hit, or processing paused
/// on the write cap and flushing freed space).
fn drive(conn: &mut Conn, ctx: &mut Ctx) -> Drive {
    loop {
        let mut more = false;
        if !conn.peer_gone && !conn.close_after_flush && pending_out(conn) < WRITE_LIMIT {
            match fill(conn) {
                Fill::Drained => {}
                Fill::LimitHit => more = true,
                Fill::Error => return Drive::Close,
            }
        }
        let backpressured = process(conn, ctx);
        if let Flush::Error = flush(conn) {
            return Drive::Close;
        }
        if conn.out_pos >= conn.out.len() {
            conn.out.clear();
            conn.out_pos = 0;
            if conn.close_after_flush || (conn.peer_gone && conn.buf.is_empty()) {
                return Drive::Close;
            }
        }
        if backpressured && pending_out(conn) < WRITE_LIMIT {
            more = true;
        }
        if !more {
            return Drive::Keep;
        }
    }
}

enum Fill {
    Drained,
    LimitHit,
    Error,
}

/// Read until `WouldBlock`, EOF, or the buffer cap.
fn fill(conn: &mut Conn) -> Fill {
    let mut tmp = [0u8; 4096];
    loop {
        if conn.buf.len() >= READ_LIMIT {
            return Fill::LimitHit;
        }
        // Chaos site: a transient fault on the event loop's read path —
        // the connection is torn down as if the kernel failed the read.
        failpoint!("serve.io.read", return Fill::Error);
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                conn.peer_gone = true;
                return Fill::Drained;
            }
            Ok(n) => conn.buf.extend_from_slice(tmp.get(..n).unwrap_or_default()),
            Err(e) if e.kind() == ErrorKind::WouldBlock => return Fill::Drained,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Fill::Error,
        }
    }
}

/// Peel complete heads off the buffer and render their responses.
/// Returns `true` when it paused on the write cap with parseable bytes
/// still buffered (the caller resumes once flushing frees space).
fn process(conn: &mut Conn, ctx: &mut Ctx) -> bool {
    let mut parsed = 0;
    let mut backpressured = false;
    while !conn.close_after_flush {
        let rest = conn.buf.get(parsed..).unwrap_or_default();
        if rest.is_empty() {
            break;
        }
        if pending_out(conn) >= WRITE_LIMIT {
            backpressured = true;
            break;
        }
        match http::try_parse_head(rest) {
            Ok(None) => {
                if conn.peer_gone {
                    // EOF mid-head: the blocking path's 400, recorded
                    // the same way.
                    render_early_error(
                        conn,
                        ctx,
                        400,
                        "connection closed before end of request head",
                    );
                }
                break;
            }
            Ok(Some(head)) => {
                if conn.served > 0 {
                    ctx.metrics.record_keepalive_reuse();
                }
                let target_end = parsed + head.consumed;
                answer(conn, ctx, &head, parsed);
                conn.served += 1;
                parsed = target_end;
                if !head.keep_alive {
                    conn.close_after_flush = true;
                }
            }
            Err(e) => {
                // A malformed head poisons the byte stream — answer the
                // error and close, like the blocking path.
                render_early_error(conn, ctx, e.status(), &e.message());
                break;
            }
        }
    }
    if conn.peer_gone && conn.buf.is_empty() && conn.served == 0 && !conn.close_after_flush {
        // Connected and closed without sending a byte: blocking parity
        // again (read_request sees EOF and reports 400).
        render_early_error(conn, ctx, 400, "connection closed before end of request head");
    }
    conn.buf.drain(..parsed);
    backpressured
}

/// Render a pre-request failure (parse error, EOF mid-head, timeout) and
/// mark the connection for close — the byte stream is not trustworthy
/// past this point.
fn render_early_error(conn: &mut Conn, ctx: &mut Ctx, status: u16, message: &str) {
    let _gauge = ctx.metrics.begin();
    let started = Instant::now();
    http::write_error_response(&mut conn.out, &mut ctx.body, status, message, false);
    ctx.metrics.record(status, started.elapsed());
    // No index was consulted; attribute to the currently published
    // generation so per-generation requests still sum to `requests`.
    ctx.metrics.record_generation(ctx.shared.generation(), status);
    conn.close_after_flush = true;
}

/// Answer one parsed request into the connection's output buffer.
fn answer(conn: &mut Conn, ctx: &mut Ctx, head: &ParsedHead, head_offset: usize) {
    let metrics = Arc::clone(&ctx.metrics);
    let _gauge = metrics.begin();
    let started = Instant::now();
    let index = ctx.shared.load();
    let keep = head.keep_alive;
    // The raw target bytes, shifted by where this head sits in the
    // buffer (pipelined requests parse at nonzero offsets).
    let target_start = head_offset + head.target.start;
    let target_end = head_offset + head.target.end;
    let rollback = conn.out.len();
    let status = catch_unwind(AssertUnwindSafe(|| {
        let target = conn.buf.get(target_start..target_end).unwrap_or_default();
        write_answer(&head.req, target, &mut conn.out, ctx, &index, keep)
    }));
    let status = match status {
        Ok(s) => s,
        Err(cause) => {
            // Narrow per-request isolation, mirroring the blocking
            // path: a handler bug becomes a recorded 500, the client
            // still gets a whole response, and accounting stays exact.
            ctx.metrics.record_panic();
            server::log_panic("answering a request", cause.as_ref());
            conn.out.truncate(rollback);
            http::write_error_response(
                &mut conn.out,
                &mut ctx.body,
                500,
                "internal error while answering the request",
                keep,
            );
            500
        }
    };
    let took = started.elapsed();
    ctx.metrics.record(status, took);
    ctx.metrics.record_generation(index.generation(), status);
    // Record + mirror after the response is rendered and accounted:
    // `took` (what `/metrics` reports) never includes shadow work, and a
    // mirror fault can only degrade recording, never the answer already
    // sitting in the output buffer.
    let target = conn.buf.get(target_start..target_end).unwrap_or_default();
    let target = String::from_utf8_lossy(target);
    let us = took.as_micros().min(u128::from(u64::MAX)) as u64;
    server::observe_request(
        ctx.recorder.as_deref(),
        &ctx.shared,
        &index,
        &target,
        conn.id,
        conn.served,
        status,
        us,
        &ctx.metrics,
    );
}

/// Route one request, writing the complete response (head + body) into
/// `out`. `/top` takes the zero-alloc fast path: cache lookup on the raw
/// target, else fragment assembly into the staging arena. Everything
/// else goes through the shared pure router.
fn write_answer(
    req: &http::Request,
    target: &[u8],
    out: &mut Vec<u8>,
    ctx: &mut Ctx,
    index: &crate::ScoreIndex,
    keep: bool,
) -> u16 {
    // The shared chaos site both backends evaluate once per request.
    server::respond_failpoint();
    if req.path == "/top" {
        // ORDERING: endpoint hit counter — an independent monotone
        // statistic (see metrics.rs); no visibility hangs off it.
        ctx.metrics.endpoints.top.fetch_add(1, Ordering::Relaxed);
        return match server::parse_top_query(req, index) {
            Ok(q) => {
                if let Some(body) = ctx.cache.get(target, index.generation()) {
                    http::write_response_head(out, 200, body.len(), keep);
                    out.extend_from_slice(body);
                    return 200;
                }
                index.top_ids_into(&q, &mut ctx.ids);
                ctx.body.clear();
                ctx.body.extend_from_slice(b"{\"generation\":");
                http::write_u64(&mut ctx.body, index.generation());
                ctx.body.extend_from_slice(b",\"count\":");
                http::write_u64(&mut ctx.body, ctx.ids.len() as u64);
                ctx.body.extend_from_slice(b",\"results\":[");
                let mut broken = false;
                for (i, &a) in ctx.ids.iter().enumerate() {
                    let frag = index.hit_fragment(a);
                    if frag.is_empty() {
                        broken = true;
                        break;
                    }
                    if i > 0 {
                        ctx.body.push(b',');
                    }
                    ctx.body.extend_from_slice(frag);
                }
                if broken {
                    http::write_error_response(
                        out,
                        &mut ctx.body,
                        500,
                        "index returned an article outside the corpus",
                        keep,
                    );
                    return 500;
                }
                ctx.body.extend_from_slice(b"]}");
                http::write_response_head(out, 200, ctx.body.len(), keep);
                out.extend_from_slice(&ctx.body);
                ctx.cache.insert(target, index.generation(), &ctx.body);
                200
            }
            Err(msg) => {
                http::write_error_response(out, &mut ctx.body, 400, &msg, keep);
                400
            }
        };
    }
    // Cold endpoints (/health, /metrics, /article/{id}, /shadow, 404s):
    // the router's per-request serialization is fine here.
    let (status, body) = server::respond_full(req, index, Some(&ctx.shared), &ctx.metrics);
    let rendered = body.to_string_compact();
    http::write_response_head(out, status, rendered.len(), keep);
    out.extend_from_slice(rendered.as_bytes());
    status
}

enum Flush {
    Done,
    Error,
}

/// Write pending output until done or `WouldBlock`.
fn flush(conn: &mut Conn) -> Flush {
    while conn.out_pos < conn.out.len() {
        // Chaos site: a transient fault on the event loop's write path.
        failpoint!("serve.io.write", return Flush::Error);
        let rest = conn.out.get(conn.out_pos..).unwrap_or_default();
        match conn.stream.write(rest) {
            Ok(0) => return Flush::Error,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return Flush::Error,
        }
    }
    Flush::Done
}

/// One cached rendered `/top` body.
struct CacheEntry {
    generation: u64,
    last_used: u64,
    body: Vec<u8>,
}

/// A tiny per-shard LRU of rendered `/top` bodies keyed by raw request
/// target. Single-threaded (shard-local), so no locks; see the module
/// docs for the generation-stamp invalidation scheme.
struct TopCache {
    cap: usize,
    tick: u64,
    entries: HashMap<Vec<u8>, CacheEntry>,
}

impl TopCache {
    fn new(cap: usize) -> TopCache {
        TopCache { cap, tick: 0, entries: HashMap::with_capacity(cap) }
    }

    /// The cached body for `target`, only if it was rendered from the
    /// generation being served right now.
    fn get(&mut self, target: &[u8], generation: u64) -> Option<&[u8]> {
        self.tick += 1;
        let entry = self.entries.get_mut(target)?;
        if entry.generation != generation {
            return None;
        }
        entry.last_used = self.tick;
        Some(&entry.body)
    }

    fn insert(&mut self, target: &[u8], generation: u64, body: &[u8]) {
        if body.len() > CACHE_MAX_BODY {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(target) {
            entry.generation = generation;
            entry.last_used = self.tick;
            entry.body.clear();
            entry.body.extend_from_slice(body);
            return;
        }
        if self.entries.len() >= self.cap {
            // O(cap) eviction scan, but only on a miss that inserts
            // into a full cache — the hot steady state never pays it.
            if let Some(victim) =
                self.entries.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(
            target.to_vec(),
            CacheEntry { generation, last_used: self.tick, body: body.to_vec() },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_validates_generation_and_evicts_lru() {
        let mut c = TopCache::new(2);
        c.insert(b"/top?k=1", 1, b"one");
        assert_eq!(c.get(b"/top?k=1", 1), Some(b"one".as_slice()));
        // Wrong generation: entry exists but must not be served.
        assert_eq!(c.get(b"/top?k=1", 2), None);
        // Overwriting re-stamps in place.
        c.insert(b"/top?k=1", 2, b"two");
        assert_eq!(c.get(b"/top?k=1", 2), Some(b"two".as_slice()));

        // Fill to cap, touch the first, insert a third: the untouched
        // second entry is the LRU victim.
        c.insert(b"/top?k=9", 2, b"nine");
        assert_eq!(c.get(b"/top?k=1", 2), Some(b"two".as_slice()));
        c.insert(b"/top?k=5", 2, b"five");
        assert_eq!(c.get(b"/top?k=9", 2), None);
        assert_eq!(c.get(b"/top?k=1", 2), Some(b"two".as_slice()));
        assert_eq!(c.get(b"/top?k=5", 2), Some(b"five".as_slice()));
    }

    #[test]
    fn cache_refuses_oversized_bodies() {
        let mut c = TopCache::new(4);
        let big = vec![b'x'; CACHE_MAX_BODY + 1];
        c.insert(b"/top?k=10000", 1, &big);
        assert_eq!(c.get(b"/top?k=10000", 1), None);
    }
}
