//! SNAPv1: a durable single-file snapshot of the served ranking state.
//!
//! The serving stack's crash-safe restart path (DESIGN.md §2.11). One
//! file, `snapshot.snap`, holds everything [`crate::Reindexer`] needs to
//! resume serving without a solve: the corpus (articles, bylines,
//! references, names) and the four score vectors of the current
//! [`qrank::QRankResult`]. The layout follows the SCOLv1
//! discipline from `scholar_corpus::colstore`:
//!
//! - **checksummed sections** — every section carries an FNV-1a 64
//!   checksum in the section table; a flipped bit anywhere surfaces as a
//!   typed [`StateError::Corrupt`], never a panic or a wrong answer;
//! - **content-derived generation** — the snapshot generation is the
//!   FNV-1a hash of the entity counts, the WAL high-water mark, and all
//!   section checksums, so two snapshots of identical state agree and
//!   any difference in state changes the generation;
//! - **tmp-then-rename publish** — the writer streams to
//!   `snapshot.snap.tmp`, fsyncs, and renames into place, so readers see
//!   either the old complete snapshot or the new complete snapshot and
//!   never a torn file.
//!
//! Sections are 8-byte aligned so the loader can hand out `&[i32]` /
//! `&[f64]` views straight from the mmap without copying; only the
//! variable-width payloads (titles, names, bylines, references) are
//! decoded.
//!
//! Every write-path and map-path I/O step funnels through the
//! `snapshot.io` failpoint, mirroring `corpus.colstore.io`, so the chaos
//! suite can kill a snapshot publish (or a restart's load) at any step
//! and assert the all-or-nothing contract.

use qrank::QRankResult;
use scholar_corpus::model::{Article, ArticleId, Author, AuthorId, Venue, VenueId};
use scholar_corpus::Corpus;
use scholar_rank::Diagnostics;
use sgraph::mmap::Mmap;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Errors from the durable-state layer (snapshot + WAL).
#[derive(Debug)]
pub enum StateError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A state file failed validation (bad magic, checksum, bounds, or
    /// internal structure).
    Corrupt {
        /// The offending file name.
        file: String,
        /// Description of the problem.
        message: String,
    },
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Io(e) => write!(f, "state io error: {e}"),
            StateError::Corrupt { file, message } => {
                write!(f, "corrupt state file {file}: {message}")
            }
        }
    }
}

impl std::error::Error for StateError {}

impl From<std::io::Error> for StateError {
    fn from(e: std::io::Error) -> Self {
        StateError::Io(e)
    }
}

/// Result alias for the durable-state layer.
pub type Result<T> = std::result::Result<T, StateError>;

const MAGIC: &[u8; 8] = b"SNAPv1\0\0";
const END_MAGIC: &[u8; 8] = b"SNAPend\0";
const SNAP_FILE: &str = "snapshot.snap";
const TMP_FILE: &str = "snapshot.snap.tmp";

/// Header: magic, generation, wal_seq, n_articles, n_authors, n_venues,
/// section count.
const HEADER_BYTES: usize = 56;
/// Section-table entry: offset, length, checksum.
const ENTRY_BYTES: usize = 24;
/// Footer: end magic + generation echo (truncation tripwire).
const FOOTER_BYTES: usize = 16;

// Section ids, in file order. All sections start 8-byte aligned.
const S_YEARS: usize = 0; // i32 × n
const S_VENUES: usize = 1; // u32 × n
const S_TITLES_IDX: usize = 2; // u64 × (n+1)
const S_TITLES_DAT: usize = 3; // utf8 bytes
const S_AUTHORS_IDX: usize = 4; // u64 × (n+1)
const S_AUTHORS_DAT: usize = 5; // varint author ids
const S_REFS_IDX: usize = 6; // u64 × (n+1)
const S_REFS_DAT: usize = 7; // delta varints (refs are sorted)
const S_MERIT_MASK: usize = 8; // u8 × n
const S_MERIT_VAL: usize = 9; // f64 × n (0.0 where mask is 0)
const S_NAMES: usize = 10; // varint-len strings: venues then authors
const S_SCORE_ARTICLE: usize = 11; // f64 × n
const S_SCORE_VENUE: usize = 12; // f64 × n_venues
const S_SCORE_AUTHOR: usize = 13; // f64 × n_authors
const S_SCORE_TWPR: usize = 14; // f64 × n
const SECTIONS: usize = 15;

const TABLE_OFF: usize = HEADER_BYTES;
const DATA_OFF: usize = TABLE_OFF + SECTIONS * ENTRY_BYTES;

/// FNV-1a 64 — same function SCOLv1 uses; good dispersion, no tables,
/// and bit-for-bit reproducible across platforms.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.update(bytes);
    h.finish()
}

/// LEB128-style varint append (shared with WALv1).
pub(crate) fn push_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Varint read; `None` on truncation or a value wider than 64 bits.
pub(crate) fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 || (shift == 63 && b > 1) {
            return None;
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

/// Chaos site: every snapshot I/O step (tmp create, section writes,
/// fsync, the rename publish, and the restart-side mmap) funnels through
/// this one check, so a `fp::Script` over `snapshot.io` can kill a
/// snapshot publish or load at any step.
fn snapshot_io_check() -> Result<()> {
    failpoint!(
        "snapshot.io",
        return Err(StateError::Io(std::io::Error::other("injected I/O fault at snapshot.io")))
    );
    Ok(())
}

fn corrupt(message: impl Into<String>) -> StateError {
    StateError::Corrupt { file: SNAP_FILE.to_owned(), message: message.into() }
}

/// Path of the published snapshot inside a state directory.
pub fn snapshot_path(dir: &Path) -> PathBuf {
    dir.join(SNAP_FILE)
}

fn pad8(buf: &mut Vec<u8>) {
    while !buf.len().is_multiple_of(8) {
        buf.push(0);
    }
}

/// Encode the sections for `(corpus, result)`. Returns the concatenated
/// 8-aligned section bytes (relative to [`DATA_OFF`]) and the per-section
/// `(offset, length, checksum)` table.
fn encode_sections(
    corpus: &Corpus,
    result: &QRankResult,
) -> (Vec<u8>, [(u64, u64, u64); SECTIONS]) {
    let n = corpus.num_articles();
    let mut body = Vec::new();
    let mut table = [(0u64, 0u64, 0u64); SECTIONS];
    let mut section = |id: usize, body: &mut Vec<u8>, bytes: &[u8]| {
        debug_assert_eq!(body.len() % 8, 0);
        // lint: allow(HOTPATH-PANIC) every call site passes an S_* constant < SECTIONS
        table[id] = ((DATA_OFF + body.len()) as u64, bytes.len() as u64, fnv64(bytes));
        body.extend_from_slice(bytes);
        pad8(body);
    };

    let mut scratch = Vec::with_capacity(n * 4);
    for a in corpus.articles() {
        scratch.extend_from_slice(&a.year.to_le_bytes());
    }
    section(S_YEARS, &mut body, &scratch);

    scratch.clear();
    for a in corpus.articles() {
        scratch.extend_from_slice(&a.venue.0.to_le_bytes());
    }
    section(S_VENUES, &mut body, &scratch);

    // Ragged payloads share one encoding: an (n+1)-entry u64 index of
    // byte offsets into a data section.
    let ragged = |items: &mut dyn Iterator<Item = Vec<u8>>| {
        let mut idx = Vec::with_capacity((n + 1) * 8);
        let mut dat = Vec::new();
        idx.extend_from_slice(&0u64.to_le_bytes());
        for item in items {
            dat.extend_from_slice(&item);
            idx.extend_from_slice(&(dat.len() as u64).to_le_bytes());
        }
        (idx, dat)
    };

    let (idx, dat) = ragged(&mut corpus.articles().iter().map(|a| a.title.as_bytes().to_vec()));
    section(S_TITLES_IDX, &mut body, &idx);
    section(S_TITLES_DAT, &mut body, &dat);

    let (idx, dat) = ragged(&mut corpus.articles().iter().map(|a| {
        let mut b = Vec::new();
        for &u in &a.authors {
            push_varint(&mut b, u.0 as u64);
        }
        b
    }));
    section(S_AUTHORS_IDX, &mut body, &idx);
    section(S_AUTHORS_DAT, &mut body, &dat);

    let (idx, dat) = ragged(&mut corpus.articles().iter().map(|a| {
        // References are sorted and strictly increasing (a `Corpus`
        // invariant), so delta encoding keeps most of them one byte.
        let mut b = Vec::new();
        let mut prev = 0u64;
        for &r in &a.references {
            push_varint(&mut b, r.0 as u64 - prev);
            prev = r.0 as u64;
        }
        b
    }));
    section(S_REFS_IDX, &mut body, &idx);
    section(S_REFS_DAT, &mut body, &dat);

    scratch.clear();
    for a in corpus.articles() {
        scratch.push(a.merit.is_some() as u8);
    }
    section(S_MERIT_MASK, &mut body, &scratch);

    scratch.clear();
    for a in corpus.articles() {
        scratch.extend_from_slice(&a.merit.unwrap_or(0.0).to_le_bytes());
    }
    section(S_MERIT_VAL, &mut body, &scratch);

    scratch.clear();
    for v in corpus.venues() {
        push_varint(&mut scratch, v.name.len() as u64);
        scratch.extend_from_slice(v.name.as_bytes());
    }
    for u in corpus.authors() {
        push_varint(&mut scratch, u.name.len() as u64);
        scratch.extend_from_slice(u.name.as_bytes());
    }
    section(S_NAMES, &mut body, &scratch);

    let f64s = |xs: &[f64]| {
        let mut b = Vec::with_capacity(xs.len() * 8);
        for x in xs {
            b.extend_from_slice(&x.to_le_bytes());
        }
        b
    };
    section(S_SCORE_ARTICLE, &mut body, &f64s(&result.article_scores));
    section(S_SCORE_VENUE, &mut body, &f64s(&result.venue_scores));
    section(S_SCORE_AUTHOR, &mut body, &f64s(&result.author_scores));
    section(S_SCORE_TWPR, &mut body, &f64s(&result.twpr_scores));

    (body, table)
}

/// The content-derived generation: FNV-1a over the counts, the WAL
/// high-water mark, and every section checksum.
fn derive_generation(
    counts: (u64, u64, u64),
    wal_seq: u64,
    table: &[(u64, u64, u64); SECTIONS],
) -> u64 {
    let mut h = Fnv::new();
    h.update(&counts.0.to_le_bytes());
    h.update(&counts.1.to_le_bytes());
    h.update(&counts.2.to_le_bytes());
    h.update(&wal_seq.to_le_bytes());
    for &(_, _, checksum) in table {
        h.update(&checksum.to_le_bytes());
    }
    h.finish()
}

/// Write a snapshot of `(corpus, result)` into `dir/snapshot.snap`,
/// recording `wal_seq` as the WAL high-water mark it covers (replay
/// resumes after this sequence number). Atomic: the file appears under
/// its final name only complete and fsynced. Returns the content-derived
/// snapshot generation.
pub fn write_snapshot(
    dir: &Path,
    corpus: &Corpus,
    result: &QRankResult,
    wal_seq: u64,
) -> Result<u64> {
    let counts =
        (corpus.num_articles() as u64, corpus.num_authors() as u64, corpus.num_venues() as u64);
    let (body, table) = encode_sections(corpus, result);
    let generation = derive_generation(counts, wal_seq, &table);

    let mut header = Vec::with_capacity(DATA_OFF);
    header.extend_from_slice(MAGIC);
    header.extend_from_slice(&generation.to_le_bytes());
    header.extend_from_slice(&wal_seq.to_le_bytes());
    header.extend_from_slice(&counts.0.to_le_bytes());
    header.extend_from_slice(&counts.1.to_le_bytes());
    header.extend_from_slice(&counts.2.to_le_bytes());
    header.extend_from_slice(&(SECTIONS as u64).to_le_bytes());
    debug_assert_eq!(header.len(), HEADER_BYTES);
    for &(off, len, checksum) in &table {
        header.extend_from_slice(&off.to_le_bytes());
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&checksum.to_le_bytes());
    }
    debug_assert_eq!(header.len(), DATA_OFF);

    let mut footer = Vec::with_capacity(FOOTER_BYTES);
    footer.extend_from_slice(END_MAGIC);
    footer.extend_from_slice(&generation.to_le_bytes());

    std::fs::create_dir_all(dir)?;
    let tmp = dir.join(TMP_FILE);
    let out = TmpGuard { path: tmp.clone() };
    snapshot_io_check()?;
    let mut file = File::create(&tmp)?;
    // lint: allow(HOTPATH-PANIC) full-range slices cannot be out of bounds
    for chunk in [&header[..], &body[..], &footer[..]] {
        snapshot_io_check()?;
        file.write_all(chunk)?;
    }
    snapshot_io_check()?;
    file.sync_all()?;
    drop(file);
    snapshot_io_check()?;
    std::fs::rename(&tmp, snapshot_path(dir))?;
    std::mem::forget(out);
    // Make the rename durable; failure here is not a torn snapshot (the
    // rename is already atomic in-memory), so best effort.
    let _ = fsync_dir(dir);
    Ok(generation)
}

/// Fsync a directory so a rename into it survives a crash. The second
/// half of the publish protocol every tmp-then-rename site in this
/// crate follows: sync the file, rename, sync the parent dir.
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Removes the tmp file if the writer errors out partway.
struct TmpGuard {
    path: PathBuf,
}

impl Drop for TmpGuard {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Everything a restart recovers from a snapshot.
#[derive(Debug)]
pub struct RestoredState {
    /// The corpus as of the snapshot.
    pub corpus: Corpus,
    /// The ranking as of the snapshot. Convergence diagnostics are
    /// [`Diagnostics::closed_form`] — the snapshot stores the fixpoint,
    /// not the path to it.
    pub result: QRankResult,
    /// WAL sequence number the snapshot covers; replay resumes after it.
    pub wal_seq: u64,
    /// Content-derived snapshot generation.
    pub generation: u64,
}

/// A validated section view into the mapped snapshot.
struct Sections<'a> {
    map: &'a Mmap,
    table: [(u64, u64, u64); SECTIONS],
}

impl<'a> Sections<'a> {
    fn bytes(&self, id: usize) -> &'a [u8] {
        let (off, len, _) = self.table[id]; // lint: allow(HOTPATH-PANIC) id is an S_* constant < SECTIONS
                                            // lint: allow(HOTPATH-PANIC) every table entry was bounds-checked before Sections was built
        &self.map.bytes()[off as usize..(off + len) as usize]
    }

    /// Expect section `id` to hold exactly `count` little-endian i32s.
    fn i32s(&self, id: usize, count: usize) -> Result<&'a [i32]> {
        let (off, len, _) = self.table[id]; // lint: allow(HOTPATH-PANIC) id is an S_* constant < SECTIONS
        if len as usize != count * 4 {
            return Err(corrupt(format!("section {id} has {len} bytes, want {}", count * 4)));
        }
        Ok(self.map.as_i32s(off as usize, count))
    }

    fn u32s(&self, id: usize, count: usize) -> Result<&'a [u32]> {
        let (off, len, _) = self.table[id]; // lint: allow(HOTPATH-PANIC) id is an S_* constant < SECTIONS
        if len as usize != count * 4 {
            return Err(corrupt(format!("section {id} has {len} bytes, want {}", count * 4)));
        }
        Ok(self.map.as_u32s(off as usize, count))
    }

    fn u64s(&self, id: usize, count: usize) -> Result<&'a [u64]> {
        let (off, len, _) = self.table[id]; // lint: allow(HOTPATH-PANIC) id is an S_* constant < SECTIONS
        if len as usize != count * 8 {
            return Err(corrupt(format!("section {id} has {len} bytes, want {}", count * 8)));
        }
        Ok(self.map.as_u64s(off as usize, count))
    }

    fn f64s(&self, id: usize, count: usize) -> Result<Vec<f64>> {
        let (off, len, _) = self.table[id]; // lint: allow(HOTPATH-PANIC) id is an S_* constant < SECTIONS
        if len as usize != count * 8 {
            return Err(corrupt(format!("section {id} has {len} bytes, want {}", count * 8)));
        }
        Ok(self.map.as_f64s(off as usize, count).to_vec())
    }

    /// The byte range of ragged item `i` within data section `dat`,
    /// bounds-checked against the index section.
    fn ragged(&self, idx: &[u64], dat: usize, i: usize) -> Result<&'a [u8]> {
        let bytes = self.bytes(dat);
        let (lo, hi) = (idx[i] as usize, idx[i + 1] as usize); // lint: allow(HOTPATH-PANIC) callers pass i < n against an index of n + 1 entries
        if lo > hi || hi > bytes.len() {
            return Err(corrupt(format!("ragged index {i} out of bounds ({lo}..{hi})")));
        }
        Ok(&bytes[lo..hi]) // lint: allow(HOTPATH-PANIC) lo <= hi <= bytes.len() checked just above
    }
}

/// Map and validate `dir/snapshot.snap`, decoding it back into the
/// corpus and ranking it was written from. Every section checksum is
/// verified before any byte is interpreted; all structural errors come
/// back as [`StateError::Corrupt`].
pub fn load_snapshot(dir: &Path) -> Result<RestoredState> {
    snapshot_io_check()?;
    let path = snapshot_path(dir);
    let map = Mmap::map_file(&path)?;
    let bytes = map.bytes();
    if bytes.len() < DATA_OFF + FOOTER_BYTES {
        return Err(corrupt(format!("file is {} bytes, shorter than any snapshot", bytes.len())));
    }
    // lint: allow(HOTPATH-PANIC) bytes.len() >= DATA_OFF + FOOTER_BYTES checked above
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    // lint: allow(HOTPATH-PANIC) word() is only called at offsets inside the length-checked header and footer
    let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
    let generation = word(8);
    let wal_seq = word(16);
    let n = word(24) as usize;
    let n_authors = word(32) as usize;
    let n_venues = word(40) as usize;
    if word(48) != SECTIONS as u64 {
        return Err(corrupt(format!("section count {} != {SECTIONS}", word(48))));
    }
    let footer_at = bytes.len() - FOOTER_BYTES;
    // lint: allow(HOTPATH-PANIC) footer_at + 8 < bytes.len() by the length check above
    if &bytes[footer_at..footer_at + 8] != END_MAGIC {
        return Err(corrupt("missing end marker (truncated file)"));
    }
    if word(footer_at + 8) != generation {
        return Err(corrupt("footer generation does not echo the header"));
    }

    let mut table = [(0u64, 0u64, 0u64); SECTIONS];
    for (id, entry) in table.iter_mut().enumerate() {
        let at = TABLE_OFF + id * ENTRY_BYTES;
        *entry = (word(at), word(at + 8), word(at + 16));
        let (off, len, checksum) = *entry;
        let end = off.checked_add(len).ok_or_else(|| corrupt("section bounds overflow"))?;
        if off % 8 != 0 || (off as usize) < DATA_OFF || end as usize > footer_at {
            return Err(corrupt(format!("section {id} out of bounds ({off}+{len})")));
        }
        // lint: allow(HOTPATH-PANIC) off..end bounds were rejected above if out of range
        if fnv64(&bytes[off as usize..end as usize]) != checksum {
            return Err(corrupt(format!("section {id} checksum mismatch")));
        }
    }
    let counts = (n as u64, n_authors as u64, n_venues as u64);
    if derive_generation(counts, wal_seq, &table) != generation {
        return Err(corrupt("generation does not match content"));
    }

    let s = Sections { map: &map, table };
    let years = s.i32s(S_YEARS, n)?;
    let venues = s.u32s(S_VENUES, n)?;
    let titles_idx = s.u64s(S_TITLES_IDX, n + 1)?;
    let authors_idx = s.u64s(S_AUTHORS_IDX, n + 1)?;
    let refs_idx = s.u64s(S_REFS_IDX, n + 1)?;
    let merit_mask = s.bytes(S_MERIT_MASK);
    if merit_mask.len() != n {
        return Err(corrupt("merit mask length mismatch"));
    }
    let merit_val = s.f64s(S_MERIT_VAL, n)?;

    let id32 = |v: u64, what: &str| -> Result<u32> {
        u32::try_from(v).map_err(|_| corrupt(format!("{what} id {v} overflows u32")))
    };

    let mut articles = Vec::with_capacity(n);
    for i in 0..n {
        let title = std::str::from_utf8(s.ragged(titles_idx, S_TITLES_DAT, i)?)
            .map_err(|_| corrupt(format!("title {i} is not utf-8")))?
            .to_owned();
        let byline = s.ragged(authors_idx, S_AUTHORS_DAT, i)?;
        let mut pos = 0;
        let mut authors = Vec::new();
        while pos < byline.len() {
            let v = read_varint(byline, &mut pos)
                .ok_or_else(|| corrupt(format!("truncated byline varint in article {i}")))?;
            authors.push(AuthorId(id32(v, "author")?));
        }
        let refs = s.ragged(refs_idx, S_REFS_DAT, i)?;
        let mut pos = 0;
        let mut references = Vec::new();
        let mut prev = 0u64;
        while pos < refs.len() {
            let d = read_varint(refs, &mut pos)
                .ok_or_else(|| corrupt(format!("truncated reference varint in article {i}")))?;
            prev = prev
                .checked_add(d)
                .ok_or_else(|| corrupt(format!("reference delta overflow in article {i}")))?;
            references.push(ArticleId(id32(prev, "article")?));
        }
        articles.push(Article {
            id: ArticleId(i as u32),
            title,
            year: years[i], // lint: allow(HOTPATH-PANIC) section validated to exactly n entries, i < n
            venue: VenueId(venues[i]), // lint: allow(HOTPATH-PANIC) section validated to exactly n entries, i < n
            authors,
            references,
            // lint: allow(HOTPATH-PANIC) both sections validated to exactly n entries, i < n
            merit: (merit_mask[i] != 0).then(|| merit_val[i]),
        });
    }

    let names = s.bytes(S_NAMES);
    let mut pos = 0;
    let mut next_name = |what: &str, i: usize| -> Result<String> {
        let len = read_varint(names, &mut pos)
            .ok_or_else(|| corrupt(format!("truncated {what} name length at {i}")))?
            as usize;
        let end = pos
            .checked_add(len)
            .filter(|&e| e <= names.len())
            .ok_or_else(|| corrupt(format!("{what} name {i} overruns the names section")))?;
        // lint: allow(HOTPATH-PANIC) pos <= end <= names.len() by the filter above
        let name = std::str::from_utf8(&names[pos..end])
            .map_err(|_| corrupt(format!("{what} name {i} is not utf-8")))?
            .to_owned();
        pos = end;
        Ok(name)
    };
    let mut venue_table = Vec::with_capacity(n_venues);
    for i in 0..n_venues {
        venue_table.push(Venue { id: VenueId(i as u32), name: next_name("venue", i)? });
    }
    let mut author_table = Vec::with_capacity(n_authors);
    for i in 0..n_authors {
        author_table.push(Author { id: AuthorId(i as u32), name: next_name("author", i)? });
    }
    if pos != names.len() {
        return Err(corrupt("trailing bytes after the last name"));
    }

    let corpus = Corpus::assemble(articles, author_table, venue_table)
        .map_err(|e| corrupt(format!("decoded corpus failed validation: {e}")))?;
    let result = QRankResult {
        article_scores: s.f64s(S_SCORE_ARTICLE, n)?,
        venue_scores: s.f64s(S_SCORE_VENUE, n_venues)?,
        author_scores: s.f64s(S_SCORE_AUTHOR, n_authors)?,
        twpr_scores: s.f64s(S_SCORE_TWPR, n)?,
        twpr_diagnostics: Diagnostics::closed_form(),
        outer: Diagnostics::closed_form(),
    };
    Ok(RestoredState { corpus, result, wal_seq, generation })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qrank::QRank;
    use scholar_corpus::generator::Preset;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scholar-snap-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ranked(seed: u64) -> (Corpus, QRankResult) {
        let corpus = Preset::Tiny.generate(seed);
        let result = QRank::default().run(&corpus);
        (corpus, result)
    }

    #[test]
    fn round_trip_preserves_corpus_and_scores() {
        let dir = tmpdir("roundtrip");
        let (corpus, result) = ranked(71);
        let wrote = write_snapshot(&dir, &corpus, &result, 42).unwrap();
        let restored = load_snapshot(&dir).unwrap();
        assert_eq!(restored.generation, wrote);
        assert_eq!(restored.wal_seq, 42);
        assert_eq!(restored.corpus, corpus);
        assert_eq!(restored.result.article_scores, result.article_scores);
        assert_eq!(restored.result.venue_scores, result.venue_scores);
        assert_eq!(restored.result.author_scores, result.author_scores);
        assert_eq!(restored.result.twpr_scores, result.twpr_scores);
        // Names survive verbatim (fragments are rendered from them).
        assert_eq!(restored.corpus.venues()[0].name, corpus.venues()[0].name);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn generation_is_content_derived() {
        let dir_a = tmpdir("gen-a");
        let dir_b = tmpdir("gen-b");
        let (corpus, result) = ranked(72);
        let a = write_snapshot(&dir_a, &corpus, &result, 7).unwrap();
        let b = write_snapshot(&dir_b, &corpus, &result, 7).unwrap();
        assert_eq!(a, b, "identical state must produce identical generations");
        let c = write_snapshot(&dir_b, &corpus, &result, 8).unwrap();
        assert_ne!(a, c, "a different WAL high-water mark is different state");
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn tampered_snapshot_fails_with_typed_error() {
        let dir = tmpdir("tamper");
        let (corpus, result) = ranked(73);
        write_snapshot(&dir, &corpus, &result, 0).unwrap();
        let path = snapshot_path(&dir);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one payload bit past the table.
        let at = super::DATA_OFF + 5;
        bytes[at] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        match load_snapshot(&dir) {
            Err(StateError::Corrupt { .. }) => {}
            other => panic!("tampered snapshot must fail Corrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_snapshot_fails_with_typed_error() {
        let dir = tmpdir("truncate");
        let (corpus, result) = ranked(74);
        write_snapshot(&dir, &corpus, &result, 0).unwrap();
        let path = snapshot_path(&dir);
        let bytes = std::fs::read(&path).unwrap();
        for keep in [bytes.len() - 3, bytes.len() / 2, super::HEADER_BYTES, 5] {
            std::fs::write(&path, &bytes[..keep]).unwrap();
            match load_snapshot(&dir) {
                Err(StateError::Corrupt { .. }) | Err(StateError::Io(_)) => {}
                other => panic!("truncated snapshot ({keep} bytes) must fail, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_snapshot_is_io_not_corrupt() {
        let dir = tmpdir("missing");
        match load_snapshot(&dir) {
            Err(StateError::Io(_)) => {}
            other => panic!("missing snapshot must be Io, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
