//! RLOGv1: sampled request-log recording for live traffic.
//!
//! Production proof of a candidate index starts with knowing what the
//! live one actually served. Both backends funnel every answered request
//! through a [`Recorder`]: a sampled, bounded ring of [`ReqRecord`]s
//! behind a `try_lock` — the hot path **never blocks** on recording (a
//! contended tick is counted in `dropped` and skipped), and a recording
//! failure only degrades recording, never serving.
//!
//! [`Recorder::flush`] publishes the ring as an RLOGv1 file with the same
//! discipline as SNAPv1/SCOLv1: fully written and fsynced under a `.tmp`
//! name, then renamed into place, so the file either exists completely or
//! not at all. Format:
//!
//! ```text
//! RLOGv1\0\0 | sample_every: u64            (16-byte header)
//! len: u32 | checksum: u64 (FNV-1a) | payload   (per record)
//! RLOGend\0 | count: u64                    (16-byte footer)
//! ```
//!
//! The footer is the truncation tripwire (same trick as SNAPv1's end
//! magic): a file with a valid footer is *complete*, and any bad record
//! inside it is a typed [`StateError::Corrupt`] — bit rot, not a crash.
//! A file without the footer is *torn* (killed mid-write before the
//! rename, or truncated after the fact): decode returns the valid record
//! prefix and flags `torn_tail`, mirroring the WALv1 contract.
//!
//! A decoded log replays through `scholar-loadgen`'s replay driver, which
//! re-issues the records against a server preserving per-connection order
//! and digests the responses — turning any recorded log into a portable
//! regression fixture.

use crate::snapshot::{fnv64, push_varint, read_varint, Result, StateError};
use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

const MAGIC: &[u8; 8] = b"RLOGv1\0\0";
const END_MAGIC: &[u8; 8] = b"RLOGend\0";
const HEADER_BYTES: usize = 16;
const FOOTER_BYTES: usize = 16;
/// len + checksum.
const RECORD_HEADER: usize = 4 + 8;
/// A record larger than this is a corrupt length field, not a request (a
/// request target is bounded by `http::MAX_REQUEST_LINE`).
const MAX_RECORD: u32 = 1 << 20;

fn corrupt(message: impl Into<String>) -> StateError {
    StateError::Corrupt { file: "request log".to_owned(), message: message.into() }
}

/// Chaos site: every flush I/O step (tmp create, write, fsync, rename)
/// funnels through this check, so a `fp::Script` over `replay.record.io`
/// can kill the flush at any step; the recorder must then degrade —
/// flag itself, surface the error to its caller — while the live request
/// path keeps serving untouched.
fn record_io_check() -> Result<()> {
    failpoint!(
        "replay.record.io",
        return Err(StateError::Io(std::io::Error::other("injected I/O fault at replay.record.io")))
    );
    Ok(())
}

/// One recorded request: everything replay and shadow evaluation need to
/// re-issue it and attribute its outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqRecord {
    /// Recorder-assigned connection id; requests sharing one client
    /// connection share it, and replay preserves order within it.
    pub conn: u64,
    /// 0-based request ordinal within the connection.
    pub seq: u64,
    /// Generation of the index snapshot that answered.
    pub generation: u64,
    /// Response status.
    pub status: u16,
    /// Service time in microseconds.
    pub latency_us: u64,
    /// Raw request target as it appeared on the wire (e.g. `/top?k=5`).
    pub target: String,
}

fn encode_record(buf: &mut Vec<u8>, r: &ReqRecord) {
    push_varint(buf, r.conn);
    push_varint(buf, r.seq);
    push_varint(buf, r.generation);
    push_varint(buf, u64::from(r.status));
    push_varint(buf, r.latency_us);
    push_varint(buf, r.target.len() as u64);
    buf.extend_from_slice(r.target.as_bytes());
}

fn decode_record(payload: &[u8]) -> Option<ReqRecord> {
    let mut pos = 0;
    let conn = read_varint(payload, &mut pos)?;
    let seq = read_varint(payload, &mut pos)?;
    let generation = read_varint(payload, &mut pos)?;
    let status = u16::try_from(read_varint(payload, &mut pos)?).ok()?;
    let latency_us = read_varint(payload, &mut pos)?;
    let target_len = read_varint(payload, &mut pos)? as usize;
    let end = pos.checked_add(target_len).filter(|&e| e <= payload.len())?;
    // lint: allow(HOTPATH-PANIC) pos <= end <= payload.len() by the filter above
    let target = std::str::from_utf8(&payload[pos..end]).ok()?.to_owned();
    (end == payload.len()).then_some(ReqRecord {
        conn,
        seq,
        generation,
        status,
        latency_us,
        target,
    })
}

/// Serialize a complete RLOGv1 file (header, records, footer).
pub fn encode_rlog(records: &[ReqRecord], sample_every: u64) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(HEADER_BYTES + FOOTER_BYTES + records.len() * 48);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&sample_every.to_le_bytes());
    let mut payload = Vec::new();
    for r in records {
        payload.clear();
        encode_record(&mut payload, r);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&fnv64(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
    }
    bytes.extend_from_slice(END_MAGIC);
    bytes.extend_from_slice(&(records.len() as u64).to_le_bytes());
    bytes
}

/// A decoded request log.
#[derive(Debug)]
pub struct RecordLog {
    /// The recorder's sampling stride when the log was captured (1 =
    /// every request).
    pub sample_every: u64,
    /// The recorded requests, in capture order.
    pub records: Vec<ReqRecord>,
    /// Whether the file was torn (no valid footer): the records are the
    /// clean prefix that survived. A complete file with a bad record
    /// inside is *not* torn — that is [`StateError::Corrupt`].
    pub torn_tail: bool,
}

/// Decode an RLOGv1 byte image. See the module docs for the
/// complete-vs-torn distinction the footer draws.
pub fn decode_rlog(bytes: &[u8]) -> Result<RecordLog> {
    if bytes.len() < HEADER_BYTES {
        // Torn inside the header: nothing was durably recorded.
        return Ok(RecordLog { sample_every: 1, records: Vec::new(), torn_tail: true });
    }
    // lint: allow(HOTPATH-PANIC) bytes.len() >= HEADER_BYTES checked above
    if &bytes[..8] != MAGIC {
        return Err(corrupt("bad magic"));
    }
    // lint: allow(HOTPATH-PANIC) HEADER_BYTES is 16 and the length was checked; try_into is an exact 8-byte slice
    let sample_every = u64::from_le_bytes(bytes[8..16].try_into().unwrap()).max(1);
    let footer_at = bytes.len().saturating_sub(FOOTER_BYTES);
    let complete = footer_at >= HEADER_BYTES
        && bytes.get(footer_at..footer_at + 8).is_some_and(|m| m == END_MAGIC);
    let (region_end, expected) = if complete {
        let count = bytes
            .get(footer_at + 8..)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
            .unwrap_or(0);
        (footer_at, count)
    } else {
        (bytes.len(), 0)
    };
    let mut records = Vec::new();
    // A file without a footer is torn by definition: flush publishes the
    // footer atomically with the rename, so its absence means truncation.
    let torn_tail = !complete;
    let mut pos = HEADER_BYTES;
    while pos < region_end {
        if region_end - pos < RECORD_HEADER {
            if complete {
                return Err(corrupt("record header overlaps the footer"));
            }
            break; // torn mid-header
        }
        // lint: allow(HOTPATH-PANIC) RECORD_HEADER bytes remain past pos by the break above; try_into slices are exact-size
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        // lint: allow(HOTPATH-PANIC) RECORD_HEADER bytes remain past pos by the break above; try_into slices are exact-size
        let checksum = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().unwrap());
        let payload_at = pos + RECORD_HEADER;
        if len > MAX_RECORD || region_end - payload_at < len as usize {
            if complete {
                return Err(corrupt(format!("record {} length field is corrupt", records.len())));
            }
            break; // torn mid-payload
        }
        // lint: allow(HOTPATH-PANIC) len as usize bytes remain past payload_at by the break above
        let payload = &bytes[payload_at..payload_at + len as usize];
        if fnv64(payload) != checksum {
            if complete {
                // The footer proves the writer finished: a bad checksum
                // inside a complete file is corruption, never a tear.
                return Err(corrupt(format!("record {} checksum mismatch", records.len())));
            }
            break; // torn: the record being written when the crash hit
        }
        let record = decode_record(payload)
            .ok_or_else(|| corrupt(format!("record {} payload does not decode", records.len())))?;
        records.push(record);
        pos = payload_at + len as usize;
    }
    if complete && records.len() as u64 != expected {
        return Err(corrupt(format!(
            "footer promises {expected} records, file holds {}",
            records.len()
        )));
    }
    Ok(RecordLog { sample_every, records, torn_tail })
}

/// Read and decode `path` as RLOGv1.
pub fn read_rlog(path: &Path) -> Result<RecordLog> {
    let bytes = std::fs::read(path).map_err(StateError::Io)?;
    decode_rlog(&bytes)
}

/// Write a complete RLOGv1 file at `path`, tmp-then-rename: the file at
/// `path` is either the previous log or the new one, never a tear.
pub fn write_rlog(path: &Path, records: &[ReqRecord], sample_every: u64) -> Result<()> {
    record_io_check()?;
    let bytes = encode_rlog(records, sample_every);
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let mut file = File::create(&tmp)?;
    record_io_check()?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    record_io_check()?;
    std::fs::rename(&tmp, path).map_err(StateError::Io)?;
    // Make the rename durable: fsync the parent directory. Best effort —
    // the rename is already atomic in-memory, so a failure here cannot
    // tear the log, only lose the rotation on a crash.
    if let Some(dir) = path.parent() {
        let _ = crate::snapshot::fsync_dir(dir);
    }
    Ok(())
}

/// Sampled, non-blocking request recording shared by both serve
/// backends. One instance lives in an `Arc` inside [`crate::ServeConfig`].
#[derive(Debug)]
pub struct Recorder {
    path: PathBuf,
    sample_every: u64,
    capacity: usize,
    /// Global request tick driving the sampling stride.
    tick: AtomicU64,
    /// Sampled ticks skipped because the ring was contended. The live
    /// path never waits: a missed sample is a statistic, not a stall.
    dropped: AtomicU64,
    /// Set on the first flush failure; recording stops (cheaply) and
    /// [`Recorder::degraded`] reports it, but serving is unaffected.
    degraded: AtomicBool,
    /// Connection-id allocator shared by every shard and worker.
    next_conn: AtomicU64,
    ring: Mutex<VecDeque<ReqRecord>>,
}

impl Recorder {
    /// A recorder flushing to `path`, keeping every `sample_every`-th
    /// request (1 = all) among the most recent `capacity` samples.
    pub fn new(path: impl Into<PathBuf>, sample_every: u64, capacity: usize) -> Recorder {
        Recorder {
            path: path.into(),
            sample_every: sample_every.max(1),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
            degraded: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Allocate a connection id for a newly accepted connection.
    pub fn conn_id(&self) -> u64 {
        // ORDERING: a pure id allocator — uniqueness comes from the RMW
        // itself; no data is published under the returned id.
        self.next_conn.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Advance the sampling tick for one answered request. Returns
    /// whether this request is on-stride and the recorder is healthy —
    /// the caller then builds the [`ReqRecord`] (its only allocation)
    /// and [`Recorder::store`]s it. Split from `store` so off-stride
    /// requests cost one atomic increment and nothing else.
    pub fn sample(&self) -> bool {
        // ORDERING: `degraded` is an advisory kill switch — reading it
        // stale costs at most a few extra samples that the degraded
        // flush then discards; nothing is published under the flag.
        if self.degraded.load(Ordering::Relaxed) {
            return false;
        }
        // ORDERING: the tick is a stride counter; each thread only needs
        // a unique value, which the RMW guarantees on its own.
        let t = self.tick.fetch_add(1, Ordering::Relaxed);
        t.is_multiple_of(self.sample_every)
    }

    /// Push one sampled record into the ring without blocking. Returns
    /// `false` when the ring was contended (the sample is counted in
    /// `dropped` and lost — a statistic, never a stall).
    pub fn store(&self, record: ReqRecord) -> bool {
        match self.ring.try_lock() {
            Ok(mut ring) => {
                if ring.len() >= self.capacity {
                    ring.pop_front();
                }
                ring.push_back(record);
                true
            }
            Err(_) => {
                // Contended (a flush holds the lock, or another shard's
                // store is mid-push) or poisoned: drop the sample.
                // ORDERING: an independent monotone statistic; no reader
                // uses it to infer visibility of other data.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                false
            }
        }
    }

    /// Offer one answered request: [`Recorder::sample`] then
    /// [`Recorder::store`]. Returns whether it was sampled *and* stored.
    pub fn record(&self, record: ReqRecord) -> bool {
        self.sample() && self.store(record)
    }

    /// Publish the ring's current contents as an RLOGv1 file (see
    /// [`write_rlog`]), returning how many records it holds. On failure
    /// the recorder flags itself degraded: later [`Recorder::record`]
    /// calls become cheap no-ops, and serving continues untouched.
    pub fn flush(&self) -> Result<u64> {
        let records: Vec<ReqRecord> = {
            let ring = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.iter().cloned().collect()
        };
        match write_rlog(&self.path, &records, self.sample_every) {
            Ok(()) => Ok(records.len() as u64),
            Err(e) => {
                // ORDERING: advisory kill switch (see `sample`); the flag
                // guards no associated data, so there is nothing for a
                // Release store to publish.
                self.degraded.store(true, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Whether a flush failure has disabled recording.
    pub fn degraded(&self) -> bool {
        // ORDERING: advisory kill switch (see `sample`) — a stale read
        // is harmless and the flag publishes no data.
        self.degraded.load(Ordering::Relaxed)
    }

    /// Sampled requests lost to ring contention.
    pub fn dropped(&self) -> u64 {
        // ORDERING: independent monotone statistic, read for reporting
        // only — no data visibility depends on it.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records currently buffered in the ring.
    pub fn buffered(&self) -> u64 {
        self.ring.lock().unwrap_or_else(PoisonError::into_inner).len() as u64
    }

    /// The file this recorder flushes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(conn: u64, seq: u64, target: &str) -> ReqRecord {
        ReqRecord {
            conn,
            seq,
            generation: 3,
            status: 200,
            latency_us: 120 + seq,
            target: target.to_owned(),
        }
    }

    #[test]
    fn encode_decode_round_trips_byte_identically() {
        let records =
            vec![rec(1, 0, "/top?k=5"), rec(1, 1, "/article/17"), rec(2, 0, "/top?venue=V%200")];
        let bytes = encode_rlog(&records, 4);
        let log = decode_rlog(&bytes).unwrap();
        assert_eq!(log.sample_every, 4);
        assert!(!log.torn_tail);
        assert_eq!(log.records, records);
        // Re-encode: byte-identical.
        assert_eq!(encode_rlog(&log.records, log.sample_every), bytes);
    }

    #[test]
    fn empty_log_is_valid_and_complete() {
        let bytes = encode_rlog(&[], 1);
        let log = decode_rlog(&bytes).unwrap();
        assert!(log.records.is_empty());
        assert!(!log.torn_tail);
    }

    #[test]
    fn every_truncation_yields_a_clean_prefix() {
        let records = vec![rec(1, 0, "/top?k=5"), rec(1, 1, "/health"), rec(2, 0, "/top")];
        let bytes = encode_rlog(&records, 1);
        for cut in 0..bytes.len() {
            let log = decode_rlog(&bytes[..cut]).unwrap_or_else(|e| {
                panic!("cut at {cut} must decode as torn, got error: {e}");
            });
            assert!(log.torn_tail, "cut at {cut} lost the footer and must be torn");
            assert!(log.records.len() <= records.len());
            // Whatever survived is a prefix, record for record.
            for (i, r) in log.records.iter().enumerate() {
                assert_eq!(r, &records[i], "cut at {cut}");
            }
        }
    }

    #[test]
    fn checksum_flip_in_complete_file_is_a_typed_error() {
        let records = vec![rec(1, 0, "/top?k=5"), rec(1, 1, "/health")];
        let mut bytes = encode_rlog(&records, 1);
        // Flip one payload byte of the first record (payload starts right
        // after the 16-byte header + 12-byte record header).
        bytes[HEADER_BYTES + RECORD_HEADER] ^= 0x01;
        match decode_rlog(&bytes) {
            Err(StateError::Corrupt { message, .. }) => {
                assert!(message.contains("checksum"), "{message}");
            }
            other => panic!("flip must be Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn footer_count_mismatch_is_a_typed_error() {
        let bytes = encode_rlog(&[rec(1, 0, "/top")], 1);
        let mut lying = bytes.clone();
        let at = lying.len() - 8;
        lying[at..].copy_from_slice(&9u64.to_le_bytes());
        assert!(matches!(decode_rlog(&lying), Err(StateError::Corrupt { .. })));
    }

    #[test]
    fn recorder_samples_every_nth_and_caps_the_ring() {
        let dir = std::env::temp_dir();
        let r = Recorder::new(dir.join("rlog-sample-test.rlog"), 3, 4);
        let mut stored = 0;
        for i in 0..30u64 {
            if r.record(rec(1, i, "/top")) {
                stored += 1;
            }
        }
        assert_eq!(stored, 10, "stride 3 keeps every third of 30");
        assert_eq!(r.buffered(), 4, "ring keeps only the most recent capacity");
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn flush_round_trips_through_the_file() {
        let path =
            std::env::temp_dir().join(format!("rlog-flush-test-{}.rlog", std::process::id()));
        let r = Recorder::new(&path, 1, 64);
        assert_eq!(r.conn_id(), 1);
        assert_eq!(r.conn_id(), 2);
        r.record(rec(1, 0, "/top?k=2"));
        r.record(rec(2, 0, "/article/3"));
        assert_eq!(r.flush().unwrap(), 2);
        let log = read_rlog(&path).unwrap();
        assert_eq!(log.records.len(), 2);
        assert_eq!(log.records[1].target, "/article/3");
        assert!(!r.degraded());
        let _ = std::fs::remove_file(&path);
    }
}
