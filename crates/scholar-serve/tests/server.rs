//! End-to-end tests against a live server on a real socket: routing,
//! defensive parsing over TCP, and the no-torn-response guarantee while
//! the index is hot-swapped under load.

use scholar_corpus::generator::Preset;
use scholar_corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar_serve::{serve, Metrics, Reindexer, ScoreIndex, ServeConfig, SharedIndex, TopQuery};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start_server(seed: u64) -> (Arc<SharedIndex>, Reindexer, scholar_serve::ServerHandle) {
    let corpus = Preset::Tiny.generate(seed);
    let (shared, reindexer) = Reindexer::start(qrank::QRankConfig::default(), corpus, |_| {});
    let metrics = Arc::new(Metrics::new());
    let config =
        ServeConfig { workers: 2, read_timeout: Duration::from_millis(300), ..Default::default() };
    let server = serve(Arc::clone(&shared), metrics, &config).expect("bind");
    (shared, reindexer, server)
}

/// One raw HTTP exchange: write `raw`, read to EOF, return the response.
///
/// Tolerates the server resetting the connection after responding to an
/// oversized request (unread bytes in its receive buffer turn the close
/// into an RST): whatever arrived before the reset is the response.
fn raw_roundtrip(addr: SocketAddr, raw: &[u8]) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    let _ = s.write_all(raw);
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    loop {
        match s.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(_) if !out.is_empty() => break,
            Err(e) => panic!("read failed before any response arrived: {e}"),
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn get(addr: SocketAddr, target: &str) -> (u16, sjson::Value) {
    let raw = raw_roundtrip(addr, format!("GET {target} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes());
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    (status, sjson::parse(body).unwrap_or_else(|e| panic!("bad JSON body {body:?}: {e:?}")))
}

#[test]
fn endpoints_answer_over_real_sockets() {
    let (shared, reindexer, server) = start_server(31);
    let addr = server.addr();

    let (status, health) = get(addr, "/health");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(health.get("generation").unwrap().as_i64(), Some(1));

    let (status, top) = get(addr, "/top?k=5");
    assert_eq!(status, 200);
    let results = top.get("results").unwrap().as_array().unwrap();
    assert_eq!(results.len(), 5);
    // The HTTP answer is exactly the index answer, rank for rank.
    let expect = shared.load().top(&TopQuery { k: 5, ..Default::default() });
    for (r, h) in results.iter().zip(&expect) {
        assert_eq!(r.get("id").unwrap().as_u64(), Some(h.id.0 as u64));
        assert_eq!(r.get("rank").unwrap().as_usize(), Some(h.rank));
    }

    // Filter by a real venue name (URL-encoded).
    let venue = shared.load().corpus().venues()[0].name.clone();
    let encoded: String = venue
        .bytes()
        .map(|b| if b == b' ' { "+".to_string() } else { (b as char).to_string() })
        .collect();
    let (status, filtered) = get(addr, &format!("/top?k=3&venue={encoded}"));
    assert_eq!(status, 200, "venue {venue:?}");
    for r in filtered.get("results").unwrap().as_array().unwrap() {
        assert_eq!(r.get("venue").unwrap().as_str(), Some(venue.as_str()));
    }

    let (status, detail) = get(addr, "/article/0");
    assert_eq!(status, 200);
    assert_eq!(detail.get("id").unwrap().as_i64(), Some(0));
    assert!(detail.get("percentile").unwrap().as_f64().unwrap() > 0.0);
    assert!(!detail.get("neighbors").unwrap().as_array().unwrap().is_empty());

    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.get("requests").unwrap().as_i64().unwrap() >= 4);

    drop(server);
    reindexer.shutdown();
}

#[test]
fn malformed_requests_get_defensive_statuses_over_tcp() {
    let (_shared, reindexer, server) = start_server(32);
    let addr = server.addr();

    // 404 unknown route / unknown article, 400 bad id and bad query values.
    assert_eq!(get(addr, "/nope").0, 404);
    assert_eq!(get(addr, "/article/999999").0, 404);
    assert_eq!(get(addr, "/article/banana").0, 400);
    let (status, body) = get(addr, "/top?k=banana");
    assert_eq!(status, 400);
    assert!(body.get("message").unwrap().as_str().unwrap().contains("k=\"banana\""));
    assert_eq!(get(addr, "/top?k=999999999").0, 400); // over MAX_K
    assert_eq!(get(addr, "/top?year_min=MMXII").0, 400);
    assert_eq!(get(addr, "/top?venue=No+Such+Venue").0, 400);

    // Regression: an inverted year range used to panic in merge_years,
    // permanently killing a worker per request. It must be a 400, and
    // the server must keep answering on every worker afterwards.
    let (status, body) = get(addr, "/top?year_min=2010&year_max=2000");
    assert_eq!(status, 400);
    assert!(body.get("message").unwrap().as_str().unwrap().contains("inverted"));
    for _ in 0..4 {
        assert_eq!(get(addr, "/health").0, 200, "a worker died on the inverted-range request");
    }

    // 405 non-GET, 400 garbage request line.
    assert!(raw_roundtrip(addr, b"POST /top HTTP/1.1\r\n\r\n").starts_with("HTTP/1.1 405"));
    assert!(raw_roundtrip(addr, b"GARBAGE\r\n\r\n").starts_with("HTTP/1.1 400"));

    // 414 oversized request line.
    let long = format!("GET /top?pad={} HTTP/1.1\r\n\r\n", "x".repeat(8192));
    assert!(raw_roundtrip(addr, long.as_bytes()).starts_with("HTTP/1.1 414"));

    // 400 missing terminator: half a head then FIN.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /top HTTP/1.1\r\nHost: t\r\n").unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.starts_with("HTTP/1.1 400"), "{out:?}");
    }

    // 408 slowloris: trickle bytes slower than the read timeout allows.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET /top?k=").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap(); // server cuts us off
        assert!(out.starts_with("HTTP/1.1 408"), "{out:?}");
    }

    drop(server);
    reindexer.shutdown();
}

/// The `/metrics` accounting is exact, not approximate: under a
/// concurrent mix of 2xx and 4xx traffic, every request lands in exactly
/// one status class and exactly one histogram bucket, so the class
/// counters and the bucket counts both sum to the request counter.
#[test]
fn metrics_accounting_is_exact_under_concurrent_load() {
    let (_shared, reindexer, server) = start_server(34);
    let addr = server.addr();

    const CLIENTS: u64 = 4;
    const PER_CLIENT: u64 = 24;
    let threads: Vec<_> = (0..CLIENTS)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..PER_CLIENT {
                    match (t + i) % 4 {
                        0 => assert_eq!(get(addr, "/top?k=3").0, 200),
                        1 => assert_eq!(get(addr, "/nope").0, 404),
                        2 => assert_eq!(get(addr, "/top?k=banana").0, 400),
                        _ => assert_eq!(get(addr, "/health").0, 200),
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client panicked");
    }

    let metrics = Arc::clone(server.metrics());
    drop(server); // graceful drain: every admitted request completes
    reindexer.shutdown();

    use std::sync::atomic::Ordering::SeqCst;
    let requests = metrics.requests.load(SeqCst);
    let ok = metrics.ok.load(SeqCst);
    let client_errors = metrics.client_errors.load(SeqCst);
    let server_errors = metrics.server_errors.load(SeqCst);
    assert_eq!(requests, CLIENTS * PER_CLIENT);
    assert_eq!(ok + client_errors + server_errors, requests, "a request escaped classification");
    assert_eq!(ok, CLIENTS * PER_CLIENT / 2);
    assert_eq!(client_errors, CLIENTS * PER_CLIENT / 2);
    assert_eq!(server_errors, 0);
    assert_eq!(metrics.panics.load(SeqCst), 0);
    assert_eq!(metrics.in_flight.load(SeqCst), 0);

    // The histogram holds exactly one sample per request.
    let hist_sum: i64 = metrics
        .to_json()
        .get("latency")
        .and_then(|l| l.get("histogram"))
        .and_then(|h| h.as_array())
        .expect("histogram array")
        .iter()
        .map(|b| b.get("count").and_then(|c| c.as_i64()).unwrap())
        .sum();
    assert_eq!(hist_sum as u64, requests, "histogram mass diverged from the request counter");
}

/// Hammer the server from client threads while the reindexer publishes new
/// generations. Every response must be complete, well-formed JSON whose
/// rows are internally consistent with a single generation — no torn or
/// dropped responses.
#[test]
fn no_torn_responses_during_hot_swap() {
    let (shared, reindexer, server) = start_server(33);
    let addr = server.addr();
    let base_n = shared.load().num_articles();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut generations = Vec::new();
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let (status, top) = get(addr, "/top?k=8");
                    assert_eq!(status, 200);
                    let gen = top.get("generation").unwrap().as_u64().unwrap();
                    let results = top.get("results").unwrap().as_array().unwrap();
                    assert_eq!(results.len(), 8, "torn result list");
                    // Ranks must be strictly increasing and scores
                    // non-increasing — a response mixing two indexes
                    // would violate one of these.
                    for w in results.windows(2) {
                        assert!(
                            w[0].get("rank").unwrap().as_u64() < w[1].get("rank").unwrap().as_u64()
                        );
                        assert!(
                            w[0].get("score").unwrap().as_f64()
                                >= w[1].get("score").unwrap().as_f64()
                        );
                    }
                    generations.push(gen);
                    served += 1;
                }
                // Generations are monotone: a client can never observe
                // the index going backwards.
                assert!(generations.windows(2).all(|w| w[0] <= w[1]));
                served
            })
        })
        .collect();

    // Publish several generations while the clients hammer away.
    for batch in 0..3 {
        reindexer
            .submit(vec![Article {
                id: ArticleId(0),
                title: format!("hot-{batch}"),
                year: 2012,
                venue: VenueId(0),
                authors: vec![AuthorId(0)],
                references: vec![ArticleId(batch as u32)],
                merit: None,
            }])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < batch + 1 {
            assert!(Instant::now() < deadline, "publish {batch} never landed");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    assert_eq!(shared.load().num_articles(), base_n + 3);

    // Let the clients observe the final generation, then stop them.
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let total: u64 = clients.into_iter().map(|c| c.join().expect("client panicked")).sum();
    assert!(total > 0, "clients never got a response");

    // Drift check: the published index must equal a fresh build from the
    // same corpus + scores, hit for hit.
    let published = shared.load();
    let fresh = ScoreIndex::build(
        Arc::new(published.corpus().as_ref().clone()),
        published.scores().to_vec(),
    );
    let q = TopQuery { k: published.num_articles(), ..Default::default() };
    assert_eq!(published.top(&q), fresh.top(&q), "published index drifted from fresh build");

    // Graceful shutdown drains: zero dropped requests end-to-end.
    let metrics = Arc::clone(server.metrics());
    drop(server);
    reindexer.shutdown();
    assert_eq!(metrics.in_flight.load(std::sync::atomic::Ordering::SeqCst), 0);
}
