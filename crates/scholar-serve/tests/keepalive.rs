//! Keep-alive protocol edge cases against the epoll backend, driven by
//! byte-level clients: pipelining, requests split mid-header across
//! writes, connection reuse across a generation swap, explicit
//! `Connection: close`, and idle/slow-loris eviction from the event
//! loop. Linux-only: the blocking backend intentionally answers every
//! request with `Connection: close` (see `scholar_serve::http`), so
//! these reuse semantics exist only behind the event loop.
#![cfg(target_os = "linux")]

use scholar_corpus::generator::Preset;
use scholar_corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar_serve::{serve, Backend, Metrics, Reindexer, ServeConfig, SharedIndex};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::Ordering::SeqCst;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn start(seed: u64) -> (Arc<SharedIndex>, Reindexer, scholar_serve::ServerHandle) {
    let corpus = Preset::Tiny.generate(seed);
    let (shared, reindexer) = Reindexer::start(qrank::QRankConfig::default(), corpus, |_| {});
    let metrics = Arc::new(Metrics::new());
    let config = ServeConfig {
        workers: 2,
        read_timeout: Duration::from_millis(300),
        backend: Backend::Epoll,
        ..Default::default()
    };
    let server = serve(Arc::clone(&shared), metrics, &config).expect("bind");
    (shared, reindexer, server)
}

/// A GET that asks the server to keep the connection open.
fn keep_alive_get(target: &str) -> Vec<u8> {
    format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n").into_bytes()
}

/// Read exactly one framed response off a keep-alive connection:
/// head until `\r\n\r\n`, then `Content-Length` body bytes. `buf`
/// carries leftover bytes between calls — with pipelining, one socket
/// read may legitimately pull in the start of the *next* response.
/// Returns `(status, head, body)`.
fn read_response_buffered(s: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String, Vec<u8>) {
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        match s.read(&mut chunk) {
            Ok(0) => panic!("connection closed mid-head: {:?}", String::from_utf8_lossy(buf)),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read error mid-head: {e}"),
        }
    };
    let head = String::from_utf8_lossy(&buf[..head_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|t| t.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {head:?}"));
    let len: usize = head
        .lines()
        .find_map(|l| l.to_ascii_lowercase().strip_prefix("content-length:").map(str::to_owned))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no content-length in {head:?}"));
    while buf.len() < head_end + len {
        let n = s.read(&mut chunk).expect("read body");
        assert!(n > 0, "connection closed mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let body = buf[head_end..head_end + len].to_vec();
    buf.drain(..head_end + len);
    (status, head, body)
}

/// One-response-per-connection-state convenience for tests that never
/// pipeline: asserts nothing was left over from an earlier response.
fn read_response(s: &mut TcpStream) -> (u16, String, Vec<u8>) {
    let mut buf = Vec::new();
    let out = read_response_buffered(s, &mut buf);
    assert!(buf.is_empty(), "unexpected trailing bytes: {:?}", String::from_utf8_lossy(&buf));
    out
}

fn parse_json(body: &[u8]) -> sjson::Value {
    sjson::parse(std::str::from_utf8(body).expect("utf8 body")).expect("well-formed JSON body")
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (_shared, reindexer, server) = start(41);
    let mut s = TcpStream::connect(server.addr()).unwrap();

    // Three requests in a single write; responses must come back whole,
    // in order, each individually framed.
    let mut batch = Vec::new();
    batch.extend_from_slice(&keep_alive_get("/top?k=3"));
    batch.extend_from_slice(&keep_alive_get("/health"));
    batch.extend_from_slice(&keep_alive_get("/top?k=5"));
    s.write_all(&batch).unwrap();

    let mut carry = Vec::new();
    let (status, head, body) = read_response_buffered(&mut s, &mut carry);
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("connection: keep-alive"), "{head:?}");
    assert_eq!(parse_json(&body).get("count").unwrap().as_i64(), Some(3));
    let (status, _, body) = read_response_buffered(&mut s, &mut carry);
    assert_eq!(status, 200);
    assert_eq!(parse_json(&body).get("status").unwrap().as_str(), Some("ok"));
    let (status, _, body) = read_response_buffered(&mut s, &mut carry);
    assert_eq!(status, 200);
    assert_eq!(parse_json(&body).get("count").unwrap().as_i64(), Some(5));
    assert!(carry.is_empty(), "bytes past the third response: {carry:?}");

    // Requests #2 and #3 rode an already-used connection.
    assert!(server.metrics().keepalive_reuses.load(SeqCst) >= 2);
    drop(server);
    reindexer.shutdown();
}

#[test]
fn request_split_mid_header_is_reassembled_and_the_connection_reused() {
    let (_shared, reindexer, server) = start(42);
    let mut s = TcpStream::connect(server.addr()).unwrap();

    // Dribble one request a few bytes at a time, splitting inside the
    // request line and inside a header name — the event loop must
    // buffer partial heads across readiness cycles.
    let raw = keep_alive_get("/top?k=4");
    for piece in raw.chunks(7) {
        s.write_all(piece).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let (status, _, body) = read_response(&mut s);
    assert_eq!(status, 200);
    assert_eq!(parse_json(&body).get("count").unwrap().as_i64(), Some(4));

    // The same connection still serves a whole request afterwards.
    s.write_all(&keep_alive_get("/health")).unwrap();
    assert_eq!(read_response(&mut s).0, 200);
    assert!(server.metrics().keepalive_reuses.load(SeqCst) >= 1);
    drop(server);
    reindexer.shutdown();
}

#[test]
fn keep_alive_connection_survives_generation_swaps_untorn() {
    let (shared, reindexer, server) = start(43);
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let first_gen = shared.generation();

    // One long-lived connection querying while the index is republished
    // under it. Every response must be whole and internally consistent,
    // and the generations it observes must be monotone — the response
    // cache may serve stale-but-valid entries never, because entries
    // are stamped with the generation that rendered them.
    let mut seen = Vec::new();
    for batch in 0..3u32 {
        reindexer
            .submit(vec![Article {
                id: ArticleId(0),
                title: format!("swap-{batch}"),
                year: 2012,
                venue: VenueId(0),
                authors: vec![AuthorId(0)],
                references: vec![ArticleId(batch)],
                merit: None,
            }])
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(30);
        while reindexer.batches_published() < (batch + 1) as u64 {
            assert!(Instant::now() < deadline, "publish {batch} never landed");
            s.write_all(&keep_alive_get("/top?k=6")).unwrap();
            let (status, _, body) = read_response(&mut s);
            assert_eq!(status, 200);
            let top = parse_json(&body);
            let results = top.get("results").unwrap().as_array().unwrap();
            assert_eq!(results.len(), 6, "torn result list");
            for w in results.windows(2) {
                assert!(w[0].get("rank").unwrap().as_u64() < w[1].get("rank").unwrap().as_u64());
            }
            seen.push(top.get("generation").unwrap().as_u64().unwrap());
        }
    }
    // A final request must observe the last published generation — a
    // cache that failed to invalidate on swap would pin an old one.
    s.write_all(&keep_alive_get("/top?k=6")).unwrap();
    let (_, _, body) = read_response(&mut s);
    seen.push(parse_json(&body).get("generation").unwrap().as_u64().unwrap());
    assert!(seen.windows(2).all(|w| w[0] <= w[1]), "generation went backwards: {seen:?}");
    assert_eq!(*seen.last().unwrap(), shared.generation());
    assert!(shared.generation() > first_gen);
    drop(server);
    reindexer.shutdown();
}

#[test]
fn connection_close_anywhere_in_the_option_list_wins() {
    let (_shared, reindexer, server) = start(44);
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(b"GET /health HTTP/1.1\r\nHost: t\r\nConnection: keep-alive, close\r\n\r\n")
        .unwrap();
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("connection: close"), "{head:?}");
    // And the server actually closes: the next read is EOF.
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "bytes after a Connection: close response: {rest:?}");
    drop(server);
    reindexer.shutdown();
}

#[test]
fn idle_keep_alive_connections_are_evicted_silently() {
    let (_shared, reindexer, server) = start(45);
    let metrics = Arc::clone(server.metrics());
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&keep_alive_get("/health")).unwrap();
    assert_eq!(read_response(&mut s).0, 200);
    assert_eq!(metrics.connections_active.load(SeqCst), 1);

    // Sit idle past the read timeout. Between requests there is no
    // request to time out, so the eviction is a silent close — EOF, not
    // a 408 (that status is reserved for a *started* request stalling).
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "idle eviction leaked bytes: {rest:?}"),
        Err(e) => panic!("expected silent EOF, got {e}"),
    }
    assert_eq!(metrics.connections_active.load(SeqCst), 0);

    // A request *started* and then stalled on a reused connection still
    // earns the 408, exactly like a fresh connection would.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.write_all(&keep_alive_get("/health")).unwrap();
    assert_eq!(read_response(&mut s).0, 200);
    s.write_all(b"GET /top?k=").unwrap();
    let (status, _, _) = read_response(&mut s);
    assert_eq!(status, 408, "a stalled mid-request head on a reused connection");
    drop(server);
    reindexer.shutdown();
}

#[test]
fn idle_eviction_fires_near_the_deadline_not_a_tick_late() {
    let (_shared, reindexer, server) = start(47);
    let timeout = Duration::from_millis(300);
    let mut s = TcpStream::connect(server.addr()).unwrap();

    // Measure from before the request: the server's idle clock restarts
    // on the request's arrival, which is at or after this instant, so
    // EOF strictly before `t0 + timeout` would be a premature eviction.
    let t0 = Instant::now();
    s.write_all(&keep_alive_get("/health")).unwrap();
    assert_eq!(read_response(&mut s).0, 200);

    s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut rest = Vec::new();
    s.read_to_end(&mut rest).expect("expected silent EOF");
    let elapsed = t0.elapsed();
    assert!(rest.is_empty(), "idle eviction leaked bytes: {rest:?}");
    assert!(elapsed >= timeout, "evicted {elapsed:?} in, before the {timeout:?} idle deadline");
    // The wait timeout is deadline-driven, so the eviction lands close
    // to the deadline — the slack here covers request latency and CI
    // scheduling noise, not an eviction cadence.
    assert!(
        elapsed <= timeout + Duration::from_millis(150),
        "eviction landed {:?} past the {timeout:?} deadline",
        elapsed - timeout
    );
    drop(server);
    reindexer.shutdown();
}

#[test]
fn plain_requests_still_close_and_pipelined_leftovers_are_discarded() {
    let (_shared, reindexer, server) = start(46);
    // No Connection header: HTTP semantics here are opt-in keep-alive
    // (read-to-EOF clients predate the event loop), so the server must
    // answer the first request, close, and *not* answer the second.
    let mut s = TcpStream::connect(server.addr()).unwrap();
    let mut batch = Vec::new();
    batch.extend_from_slice(b"GET /health HTTP/1.1\r\nHost: t\r\n\r\n");
    batch.extend_from_slice(b"GET /top?k=3 HTTP/1.1\r\nHost: t\r\n\r\n");
    // The second request may race the close and die as an RST; the
    // response to the first must arrive either way.
    let _ = s.write_all(&batch);
    let (status, head, _) = read_response(&mut s);
    assert_eq!(status, 200);
    assert!(head.to_ascii_lowercase().contains("connection: close"), "{head:?}");
    let mut rest = Vec::new();
    match s.read_to_end(&mut rest) {
        Ok(_) => assert!(rest.is_empty(), "server answered past Connection: close: {rest:?}"),
        // An RST after the full first response is a legal outcome of
        // closing with unread pipelined bytes in the receive buffer.
        Err(e) => assert!(
            matches!(e.kind(), ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted),
            "unexpected error after close: {e}"
        ),
    }
    drop(server);
    reindexer.shutdown();
}
