//! Proof that the serving hot path is allocation-free: a counting
//! global allocator (test binary only — production builds keep plain
//! `System`) wraps every render primitive and the full `/top` body
//! assembly, asserting **zero** heap allocations once buffers are
//! warm. This is the regression fence for the arena-writer work: a
//! stray `format!` or `to_string` in `http.rs` or the fragment path
//! turns the count nonzero and fails here, not in a benchmark three
//! PRs later.

use scholar_corpus::generator::Preset;
use scholar_serve::http::{
    write_error_response, write_json_escaped, write_response_head, write_u64,
};
use scholar_serve::{ScoreIndex, TopQuery};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::Arc;

/// `System`, plus a per-thread allocation counter. Thread-local so the
/// test-harness thread's own allocations can't pollute a measurement;
/// const-initialized so reading it never itself allocates.
struct CountingAlloc;

thread_local! {
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the counter bump has no effect on layout or
// pointer validity.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocations made *by this thread* while running `f`.
fn allocations(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.with(Cell::get);
    f();
    ALLOCATIONS.with(Cell::get) - before
}

#[test]
fn warm_response_rendering_never_allocates() {
    // Build everything that legitimately allocates up front.
    let corpus = Arc::new(Preset::Tiny.generate(51));
    let n = corpus.num_articles();
    let scores: Vec<f64> = (0..n).map(|i| 1.0 / (i + 1) as f64).collect();
    let index = ScoreIndex::build(corpus, scores);
    let query = TopQuery { k: 25, ..Default::default() };

    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut scratch: Vec<u8> = Vec::with_capacity(4 * 1024);
    let mut ids: Vec<u32> = Vec::with_capacity(256);

    // Warm pass: lets every buffer reach its high-water capacity (and
    // faults in lazy pieces like the thread-local itself).
    render_everything(&index, &query, &mut out, &mut scratch, &mut ids);

    // Measured pass: byte-for-byte the same work, zero allocations.
    let count = allocations(|| {
        render_everything(&index, &query, &mut out, &mut scratch, &mut ids);
    });
    assert_eq!(count, 0, "the warm render path allocated {count} time(s)");
    assert!(!out.is_empty());
}

/// Every arena writer plus the full `/top` success body, exactly as the
/// event loop's fast path assembles it (fragments pre-rendered in the
/// index, numbers via `write_u64`, head via `write_response_head`).
fn render_everything(
    index: &ScoreIndex,
    query: &TopQuery,
    out: &mut Vec<u8>,
    scratch: &mut Vec<u8>,
    ids: &mut Vec<u32>,
) {
    out.clear();

    // The /top fast path: scratch body from pre-rendered fragments.
    index.top_ids_into(query, ids);
    scratch.clear();
    scratch.extend_from_slice(b"{\"generation\":");
    write_u64(scratch, index.generation());
    scratch.extend_from_slice(b",\"count\":");
    write_u64(scratch, ids.len() as u64);
    scratch.extend_from_slice(b",\"results\":[");
    for (i, &a) in ids.iter().enumerate() {
        if i > 0 {
            scratch.push(b',');
        }
        scratch.extend_from_slice(index.hit_fragment(a));
    }
    scratch.extend_from_slice(b"]}");
    write_response_head(out, 200, scratch.len(), true);
    out.extend_from_slice(scratch);

    // Error rendering and escaping, as the loop's 4xx/5xx arms use them.
    write_error_response(out, scratch, 400, "bad value k=\"banana\"\n", false);
    write_json_escaped(out, "quote\" slash\\ tab\t ctrl\u{1}");
    write_u64(out, u64::MAX);
}
