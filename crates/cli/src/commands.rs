//! Subcommand implementations. Every command writes human output to a
//! caller-provided sink so the logic is unit-testable.

use crate::args::Args;
use scholar::corpus::loader::{aan, jsonl, mag, LoadOptions, MissingYearPolicy};
use scholar::corpus::stats::corpus_stats;
use scholar::corpus::{snapshot_until, Preset};
use scholar::eval::groundtruth::future_citations;
use scholar::eval::tables::{fmt_metric, fmt_seconds, Table};
use scholar::eval::Experiment;
use scholar::rank::personalized::{related_articles, PersonalizedConfig};
use scholar::rank::scores::top_k;
use scholar::rank::{RankContext, SolveTelemetry};
use scholar::{Corpus, QRank, QRankConfig, Ranker};
use std::io::Write;
use std::path::Path;
use std::time::Instant;

type CmdResult = Result<(), String>;

fn wr<W: Write>(out: &mut W, text: std::fmt::Arguments<'_>) -> CmdResult {
    out.write_fmt(text).map_err(|e| e.to_string())
}

macro_rules! outln {
    ($out:expr, $($arg:tt)*) => {
        wr($out, format_args!("{}\n", format_args!($($arg)*)))?
    };
}

/// Loader options from the command line: `--missing-year error|drop|YEAR`
/// (default `error` — records without a year abort the load instead of
/// silently becoming year-0 articles that time-decay kernels zero out).
fn load_options(args: &Args) -> Result<LoadOptions, String> {
    let mut opts = LoadOptions::default();
    if let Some(policy) = args.get("missing-year") {
        opts.missing_year = match policy {
            "error" => MissingYearPolicy::Error,
            "drop" => MissingYearPolicy::Drop,
            other => match other.parse() {
                Ok(y) => MissingYearPolicy::Impute(y),
                Err(_) => {
                    return Err(format!("invalid --missing-year '{other}' (error|drop|YEAR)"))
                }
            },
        };
    }
    Ok(opts)
}

fn load_corpus(path: &str, args: &Args) -> Result<Corpus, String> {
    jsonl::read_jsonl_file(Path::new(path), &load_options(args)?)
        .map_err(|e| format!("cannot load '{path}': {e}"))
}

/// Read the QRank configuration: `--config file.json` (partial JSON —
/// missing fields keep their defaults) or the built-in defaults. A
/// `--threads N` flag overrides the worker count from either source
/// (`--threads 1` forces sequential execution; the `SCHOLAR_THREADS`
/// environment variable sets the default instead).
fn qrank_config(args: &Args) -> Result<QRankConfig, String> {
    let mut cfg = match args.get("config") {
        None => QRankConfig::default(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read config '{path}': {e}"))?;
            let cfg = QRankConfig::from_json_str(&text)
                .map_err(|e| format!("bad config '{path}': {e}"))?;
            cfg.validate().map_err(|e| format!("invalid config '{path}': {e}"))?;
            cfg
        }
    };
    if let Some(t) = args.get("threads") {
        let threads: usize =
            t.parse().map_err(|_| format!("invalid --threads '{t}' (positive integer)"))?;
        if threads == 0 {
            return Err("--threads must be >= 1".into());
        }
        cfg.twpr.pagerank.threads = threads;
    }
    Ok(cfg)
}

/// `scholar generate --preset tiny --seed 1 --out corpus.jsonl`, or the
/// out-of-core form `--preset mag-scale --articles N --out DIR`, which
/// streams a columnar store instead of materializing a corpus in RAM.
pub fn generate<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let seed: u64 = args.get_parsed("seed", 42)?;
    let out_path = args.get("out").ok_or("missing --out FILE")?;
    let preset = match args.get("preset").unwrap_or("tiny") {
        "tiny" => Preset::Tiny,
        "aan" => Preset::AanLike,
        "dblp" => Preset::DblpLike,
        "mag" => Preset::MagLike,
        "mag-scale" => {
            let articles: usize = args.get_parsed("articles", 10_000_000)?;
            std::fs::create_dir_all(out_path)
                .map_err(|e| format!("cannot create '{out_path}': {e}"))?;
            let stats =
                scholar::corpus::generator::generate_mag_scale(Path::new(out_path), articles, seed)
                    .map_err(|e| e.to_string())?;
            outln!(
                out,
                "wrote colstore {}: {} articles, {} citations, {} authors, {} venues (generation {:016x})",
                out_path,
                stats.articles,
                stats.citations,
                stats.authors,
                stats.venues,
                stats.generation
            );
            return Ok(());
        }
        other => return Err(format!("unknown preset '{other}' (tiny|aan|dblp|mag|mag-scale)")),
    };
    let corpus = preset.generate(seed);
    jsonl::write_jsonl_file(&corpus, Path::new(out_path)).map_err(|e| e.to_string())?;
    outln!(
        out,
        "wrote {}: {} articles, {} citations",
        out_path,
        corpus.num_articles(),
        corpus.num_citations()
    );
    Ok(())
}

/// `scholar stats corpus.jsonl`
pub fn stats<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    outln!(out, "{}", corpus_stats(&corpus));
    let report = scholar::corpus::validate::quality_report(&corpus);
    outln!(
        out,
        "\ndata quality: {} time-travel citations, {} authorless, {} reference-less",
        report.time_travel_citations,
        report.articles_without_authors,
        report.articles_without_references
    );
    Ok(())
}

fn ranker_by_name(name: &str) -> Result<Box<dyn Ranker>, String> {
    Ok(match name {
        "qrank" => Box::new(QRank::default()),
        "twpr" => Box::new(scholar::TimeWeightedPageRank::default()),
        "pagerank" => Box::new(scholar::PageRank::default()),
        "cc" => Box::new(scholar::CitationCount),
        "hits" => Box::new(scholar::Hits::default()),
        "citerank" => Box::new(scholar::CiteRank::default()),
        "futurerank" => Box::new(scholar::FutureRank::default()),
        "prank" => Box::new(scholar::PRank::default()),
        other => {
            return Err(format!(
                "unknown method '{other}' (qrank|twpr|pagerank|cc|hits|citerank|futurerank|prank)"
            ))
        }
    })
}

/// `scholar rank corpus.jsonl --method qrank --top 20 [--explain] [--json]`,
/// or `scholar rank STORE_DIR --store mmap ...` to rank an out-of-core
/// columnar store through the mmap backend.
pub fn rank<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    match args.get("store").unwrap_or("ram") {
        "ram" => {}
        "mmap" => return rank_mmap(args, out),
        other => return Err(format!("unknown --store '{other}' (ram|mmap)")),
    }
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let method = args.get("method").unwrap_or("qrank");
    let top: usize = args.get_parsed("top", 20)?;
    let cfg = qrank_config(args)?;
    if args.has_switch("explain") && method != "qrank" {
        return Err("--explain is only available for --method qrank".into());
    }
    // The qrank path goes through the prepared engine so one build + one
    // solve serves both the score listing and the optional explanations.
    let (method_name, scores, telemetry, qrank_run) = if method == "qrank" {
        let built = Instant::now();
        let engine = scholar::QRankEngine::build(&corpus, &cfg);
        let build_secs = built.elapsed().as_secs_f64();
        let solved = Instant::now();
        let result = engine.solve(&scholar::MixParams::from_config(&cfg));
        let telemetry = SolveTelemetry {
            iterations: result.outer.iterations + result.twpr_diagnostics.iterations,
            converged: result.outer.converged && result.twpr_diagnostics.converged,
            residuals: result.outer.residuals.clone(),
            build_secs,
            solve_secs: solved.elapsed().as_secs_f64(),
            cached: false,
        };
        let scores = result.article_scores.clone();
        ("QRank".to_string(), scores, telemetry, Some((engine, result)))
    } else {
        let ranker = ranker_by_name(method)?;
        let solved = ranker.solve_ctx(&RankContext::new(&corpus));
        (ranker.name(), solved.scores, solved.telemetry, None)
    };
    let best = top_k(&scores, top);

    if args.has_switch("json") {
        let rows: Vec<sjson::Value> = best
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                let a = &corpus.articles()[i];
                sjson::ObjectBuilder::new()
                    .field("rank", pos + 1)
                    .field("id", u64::from(a.id.0))
                    .field("title", a.title.as_str())
                    .field("year", a.year)
                    .field("venue", corpus.venue(a.venue).name.as_str())
                    .field("score", scores[i])
                    .build()
            })
            .collect();
        outln!(out, "{}", sjson::Value::Array(rows).to_string_pretty());
        return Ok(());
    }

    outln!(out, "top {} articles by {}:", best.len(), method_name);
    for (pos, &i) in best.iter().enumerate() {
        let a = &corpus.articles()[i];
        outln!(
            out,
            "{:>3}. [{:.6}] {} ({}, {})",
            pos + 1,
            scores[i],
            a.title,
            a.year,
            corpus.venue(a.venue).name
        );
    }
    if telemetry.iterations == 0 {
        outln!(
            out,
            "\nsolver: closed form (build {}, solve {})",
            fmt_seconds(telemetry.build_secs),
            fmt_seconds(telemetry.solve_secs)
        );
    } else {
        outln!(
            out,
            "\nsolver: {} iterations{}, final residual {:.2e}, build {}, solve {}",
            telemetry.iterations,
            if telemetry.converged { "" } else { " (NOT converged)" },
            telemetry.final_residual().unwrap_or(0.0),
            fmt_seconds(telemetry.build_secs),
            fmt_seconds(telemetry.solve_secs)
        );
    }

    if args.has_switch("explain") {
        let (engine, result) = qrank_run.as_ref().expect("--explain implies the qrank path ran");
        let explainer = scholar::core::Explainer::from_engine(&corpus, engine, result);
        outln!(out, "\nexplanations:");
        for &i in best.iter().take(5) {
            let e = explainer.explain(scholar::corpus::ArticleId(i as u32), 3, &cfg);
            wr(out, format_args!("{}", e.render(&corpus)))?;
        }
    }
    Ok(())
}

/// The `--store mmap` arm of [`rank`]: open a columnar store directory
/// and rank it through the mmap backend without materializing the corpus
/// in RAM. Scores are bit-identical to the in-RAM path; only the listing
/// is leaner (ids and years — the colstore carries no title strings).
fn rank_mmap<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let dir = args.positional(0, "colstore directory")?;
    let method = args.get("method").unwrap_or("qrank");
    let top: usize = args.get_parsed("top", 20)?;
    let cfg = qrank_config(args)?;
    if args.has_switch("explain") {
        return Err(
            "--explain needs article metadata; it is not available with --store mmap".into()
        );
    }
    let store = scholar::corpus::colstore::ColStore::open(Path::new(dir))
        .map_err(|e| format!("cannot open colstore '{dir}': {e}"))?;
    let ctx = RankContext::from_colstore(&store);
    let (method_name, scores, telemetry) = if method == "qrank" {
        let built = Instant::now();
        let engine = scholar::QRankEngine::build_from_ctx(&ctx, &cfg);
        let build_secs = built.elapsed().as_secs_f64();
        let solved = Instant::now();
        let result = engine.solve(&scholar::MixParams::from_config(&cfg));
        let telemetry = SolveTelemetry {
            iterations: result.outer.iterations + result.twpr_diagnostics.iterations,
            converged: result.outer.converged && result.twpr_diagnostics.converged,
            residuals: result.outer.residuals.clone(),
            build_secs,
            solve_secs: solved.elapsed().as_secs_f64(),
            cached: false,
        };
        ("QRank".to_string(), result.article_scores, telemetry)
    } else {
        let ranker = ranker_by_name(method)?;
        let solved = ranker.solve_ctx(&ctx);
        (ranker.name(), solved.scores, solved.telemetry)
    };
    let best = top_k(&scores, top);
    let years = ctx.years();

    if args.has_switch("json") {
        let rows: Vec<sjson::Value> = best
            .iter()
            .enumerate()
            .map(|(pos, &i)| {
                sjson::ObjectBuilder::new()
                    .field("rank", pos + 1)
                    .field("id", i as u64)
                    .field("year", years[i])
                    .field("score", scores[i])
                    .build()
            })
            .collect();
        outln!(out, "{}", sjson::Value::Array(rows).to_string_pretty());
        return Ok(());
    }

    outln!(out, "top {} articles by {} (colstore {}):", best.len(), method_name, dir);
    for (pos, &i) in best.iter().enumerate() {
        outln!(out, "{:>3}. [{:.6}] article-{} ({})", pos + 1, scores[i], i, years[i]);
    }
    outln!(
        out,
        "\nsolver: {} iterations{}, build {}, solve {}",
        telemetry.iterations,
        if telemetry.converged { "" } else { " (NOT converged)" },
        fmt_seconds(telemetry.build_secs),
        fmt_seconds(telemetry.solve_secs)
    );
    Ok(())
}

/// `scholar ablate corpus.jsonl [--json] [--config FILE] [--threads N]`
///
/// Runs all seven ablation variants of R-Table 5 over one corpus, sharing
/// prepared engines between structurally identical variants, and reports
/// how far each ablated ranking drifts from the full model.
pub fn ablate<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let cfg = qrank_config(args)?;
    let swept = scholar::Ablation::sweep(&cfg, &corpus);
    let full = swept
        .iter()
        .find(|(ab, _)| *ab == scholar::Ablation::Full)
        .map(|(_, res)| res.article_scores.clone())
        .expect("sweep always contains the full model");

    if args.has_switch("json") {
        let rows: Vec<sjson::Value> = swept
            .iter()
            .map(|(ab, res)| {
                sjson::ObjectBuilder::new()
                    .field("variant", ab.name().trim())
                    .field("outer_iterations", res.outer.iterations)
                    .field("inner_iterations", res.twpr_diagnostics.iterations)
                    .field("converged", res.outer.converged)
                    .field(
                        "l1_vs_full",
                        scholar::graph::stochastic::l1_distance(&res.article_scores, &full),
                    )
                    .field("top_article", top_k(&res.article_scores, 1)[0])
                    .build()
            })
            .collect();
        outln!(out, "{}", sjson::Value::Array(rows).to_string_pretty());
        return Ok(());
    }

    let mut table = Table::new(
        &format!("ablation sweep over {} articles (shared engines)", corpus.num_articles()),
        &["variant", "outer iters", "inner iters", "L1 vs full", "top article"],
    );
    for (ab, res) in &swept {
        let l1 = scholar::graph::stochastic::l1_distance(&res.article_scores, &full);
        let best = top_k(&res.article_scores, 1)[0];
        table.row(vec![
            ab.name().to_string(),
            format!("{}", res.outer.iterations),
            format!("{}", res.twpr_diagnostics.iterations),
            format!("{l1:.3e}"),
            corpus.articles()[best].title.clone(),
        ]);
    }
    outln!(out, "{table}");
    Ok(())
}

/// `scholar related corpus.jsonl --seeds 12,99 --top 10`
pub fn related<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let seeds_raw = args.get("seeds").ok_or("missing --seeds ID[,ID...]")?;
    let top: usize = args.get_parsed("top", 10)?;
    let mut seeds = Vec::new();
    for tok in seeds_raw.split(',') {
        let id: u32 =
            tok.trim().parse().map_err(|_| format!("invalid article id '{tok}' in --seeds"))?;
        if id as usize >= corpus.num_articles() {
            return Err(format!(
                "article id {id} out of range (corpus has {})",
                corpus.num_articles()
            ));
        }
        seeds.push(scholar::corpus::ArticleId(id));
    }
    outln!(out, "seeds:");
    for &s in &seeds {
        let a = corpus.article(s);
        outln!(out, "  - [{}] {} ({})", s, a.title, a.year);
    }
    let hits = related_articles(&corpus, &seeds, top, &PersonalizedConfig::default());
    outln!(out, "\nrelated articles (personalized lift over global PageRank):");
    for (pos, (id, lift)) in hits.iter().enumerate() {
        let a = corpus.article(*id);
        outln!(out, "{:>3}. [{:+.3e}] {} ({})", pos + 1, lift, a.title, a.year);
    }
    Ok(())
}

/// `scholar analyze corpus.jsonl`
pub fn analyze<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    use scholar::corpus::analysis::{
        citation_age_histogram, h_index, mean_citation_age, self_citation_rate, venue_insularity,
    };
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    outln!(out, "{}", corpus_stats(&corpus));

    if let Some(age) = mean_citation_age(&corpus) {
        outln!(out, "\nmean citation age: {age:.1} years");
        let hist = citation_age_histogram(&corpus);
        let total: usize = hist.iter().sum();
        for (a, &n) in hist.iter().enumerate().take(8) {
            let bar = "#".repeat((n * 40 / total.max(1)).min(40));
            outln!(out, "  {a:>2}y {n:>6} {bar}");
        }
    }
    if let Some(rate) = self_citation_rate(&corpus) {
        outln!(out, "self-citation rate: {:.1}%", rate * 100.0);
    }
    let ins = venue_insularity(&corpus);
    let by_venue = corpus.articles_by_venue();
    let mut venues: Vec<usize> = (0..corpus.num_venues()).collect();
    venues.sort_by_key(|&v| std::cmp::Reverse(by_venue[v].len()));
    outln!(out, "\nlargest venues (insularity = in-venue citation share):");
    for &v in venues.iter().take(5) {
        outln!(
            out,
            "  {:<24} {:>6} articles, {:>5.1}% insular",
            corpus.venues()[v].name,
            by_venue[v].len(),
            ins[v] * 100.0
        );
    }
    let h = h_index(&corpus);
    let hf: Vec<f64> = h.iter().map(|&x| x as f64).collect();
    outln!(out, "\ntop authors by within-corpus h-index:");
    for idx in top_k(&hf, 5) {
        outln!(out, "  h={:<3} {}", h[idx], corpus.authors()[idx].name);
    }
    Ok(())
}

/// `scholar coldstart corpus.jsonl --venue NAME --authors NAME[,NAME...]`
pub fn coldstart<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let venue_name = args.get("venue").ok_or("missing --venue NAME")?;
    let venue = corpus
        .venues()
        .iter()
        .find(|v| v.name == venue_name)
        .map(|v| v.id)
        .ok_or_else(|| format!("unknown venue '{venue_name}'"))?;
    let mut authors = Vec::new();
    if let Some(names) = args.get("authors") {
        for name in names.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let id = corpus
                .authors()
                .iter()
                .find(|u| u.name == name)
                .map(|u| u.id)
                .ok_or_else(|| format!("unknown author '{name}'"))?;
            authors.push(id);
        }
    }
    let cfg = qrank_config(args)?;
    let mix = scholar::MixParams::from_config(&cfg);
    let result = QRank::new(cfg).run(&corpus);
    let scorer = scholar::ColdStartScorer::from_mix(&result, &mix);
    let score = scorer.score(venue, &authors);
    let pct = scorer.percentile_among(score, &result, &corpus) * 100.0;
    outln!(
        out,
        "a new submission at '{venue_name}' by [{}]",
        authors.iter().map(|&u| corpus.author(u).name.clone()).collect::<Vec<_>>().join(", ")
    );
    outln!(out, "  cold-start score: {score:.3e}");
    outln!(out, "  would enter the index at the {pct:.1}th percentile");
    Ok(())
}

/// `scholar eval corpus.jsonl --cutoff-frac 0.8 --window 5`
pub fn eval<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let frac: f64 = args.get_parsed("cutoff-frac", 0.8)?;
    let window: i32 = args.get_parsed("window", 5)?;
    if !(0.0..=1.0).contains(&frac) {
        return Err("--cutoff-frac must be in [0, 1]".into());
    }
    let (first, last) = corpus.year_range().ok_or("corpus is empty")?;
    let cutoff = first + ((last - first) as f64 * frac) as i32;
    let snap = snapshot_until(&corpus, cutoff);
    if snap.corpus.num_articles() < 10 {
        return Err(format!("only {} articles at cutoff {cutoff}", snap.corpus.num_articles()));
    }
    let truth = future_citations(&corpus, &snap, window);
    let exp = Experiment { corpus: &snap.corpus, truth: &truth };
    let rows = exp.run(&scholar::evaluation_rankers());
    let mut table = Table::new(
        &format!(
            "future-citation prediction: {} articles at cutoff {cutoff}, {}",
            snap.corpus.num_articles(),
            truth.description
        ),
        &["method", "pairwise", "spearman", "kendall", "ndcg@50", "iters", "build/solve", "time"],
    );
    for r in rows {
        let t = &r.telemetry;
        table.row(vec![
            r.method,
            fmt_metric(r.pairwise_accuracy),
            fmt_metric(r.spearman),
            fmt_metric(r.kendall),
            fmt_metric(r.ndcg_at_50),
            format!("{}{}", t.iterations, if t.converged { "" } else { "*" }),
            format!("{}/{}", fmt_seconds(t.build_secs), fmt_seconds(t.solve_secs)),
            fmt_seconds(r.seconds),
        ]);
    }
    outln!(out, "{table}");
    Ok(())
}

/// `scholar convert --from aan|mag ... --out FILE`
pub fn convert<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let out_path = args.get("out").ok_or("missing --out FILE")?;
    let corpus = match args.get("from") {
        Some("aan") => {
            let meta = args.get("meta").ok_or("missing --meta FILE")?;
            let cites = args.get("cites").ok_or("missing --cites FILE")?;
            aan::read_aan_files(Path::new(meta), Path::new(cites), &LoadOptions::default())
                .map_err(|e| e.to_string())?
        }
        Some("mag") => {
            let papers = args.get("papers").ok_or("missing --papers FILE")?;
            let authors = args.get("authors").ok_or("missing --authors FILE")?;
            let refs = args.get("refs").ok_or("missing --refs FILE")?;
            mag::read_mag_files(
                Path::new(papers),
                Path::new(authors),
                Path::new(refs),
                &LoadOptions::default(),
            )
            .map_err(|e| e.to_string())?
        }
        Some(other) => return Err(format!("unknown source format '{other}' (aan|mag)")),
        None => return Err("missing --from aan|mag".into()),
    };
    jsonl::write_jsonl_file(&corpus, Path::new(out_path)).map_err(|e| e.to_string())?;
    outln!(
        out,
        "wrote {}: {} articles, {} citations, {} authors, {} venues",
        out_path,
        corpus.num_articles(),
        corpus.num_citations(),
        corpus.num_authors(),
        corpus.num_venues()
    );
    Ok(())
}

/// `scholar serve corpus.jsonl [--addr HOST:PORT] [--workers N]
/// [--queue N] [--read-timeout-ms MS] [--max-conns N]
/// [--backend auto|epoll|blocking] [--duration SECS] [--state DIR]
/// [--snapshot-every N]`
///
/// Rank the corpus, then serve it over HTTP: `GET /top`,
/// `GET /article/{id}`, `GET /health`, `GET /metrics`. Without
/// `--duration` the server runs until stdin closes (Ctrl-D); with it, for
/// that many seconds. Either way shutdown is graceful — in-flight
/// requests drain before the process moves on. `--backend auto` (the
/// default) picks the nonblocking epoll event loop on Linux and the
/// portable blocking pool elsewhere.
///
/// With `--state DIR` the server is crash-safe: accepted batches are
/// journaled to `DIR/wal.log` before they are acknowledged, the ranked
/// state is snapshotted to `DIR/snapshot.snap` every `--snapshot-every`
/// batches (default 8), and a restart restores from the snapshot plus
/// journal replay — milliseconds instead of a full re-rank, losing no
/// accepted batch.
pub fn serve<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let config = qrank_config(args)?;
    let duration: Option<u64> = match args.get("duration") {
        Some(raw) => {
            Some(raw.parse().map_err(|_| format!("invalid --duration '{raw}' (seconds)"))?)
        }
        None => None,
    };
    let backend = match args.get("backend").unwrap_or("auto") {
        "auto" => scholar::serve::Backend::Auto,
        "epoll" => scholar::serve::Backend::Epoll,
        "blocking" => scholar::serve::Backend::Blocking,
        other => return Err(format!("invalid --backend '{other}' (auto|epoll|blocking)")),
    };
    // --record PATH arms the sampled request recorder; the ring is
    // flushed to an RLOGv1 file at shutdown (and keeps the most recent
    // --record-cap samples until then).
    let recorder = match args.get("record") {
        Some(path) => {
            let sample = args.get_parsed("sample", 1u64)?;
            if sample == 0 {
                return Err("--sample must be >= 1".into());
            }
            let cap = args.get_parsed("record-cap", 65536usize)?;
            Some(std::sync::Arc::new(scholar::serve::Recorder::new(path, sample, cap)))
        }
        None => None,
    };
    let serve_config = scholar::serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7171").to_string(),
        workers: args.get_parsed("workers", 4)?,
        queue_depth: args.get_parsed("queue", 64)?,
        read_timeout: std::time::Duration::from_millis(args.get_parsed("read-timeout-ms", 5000)?),
        max_conns: args.get_parsed("max-conns", 1024)?,
        backend,
        recorder: recorder.clone(),
    };
    let shadow_gate = if args.has_switch("shadow") {
        if args.get("state").is_some() {
            return Err("--shadow and --state cannot be combined yet".into());
        }
        let d = scholar::serve::ShadowThresholds::default();
        Some(scholar::serve::ShadowThresholds {
            min_mirrored: args.get_parsed("shadow-min-mirrored", d.min_mirrored)?,
            min_topk_overlap: args.get_parsed("shadow-min-overlap", d.min_topk_overlap)?,
            min_kendall_tau: args.get_parsed("shadow-min-tau", d.min_kendall_tau)?,
            max_score_l1: args.get_parsed("shadow-max-l1", d.max_score_l1)?,
            max_status_mismatches: args
                .get_parsed("shadow-max-mismatches", d.max_status_mismatches)?,
        })
    } else {
        None
    };

    let metrics = std::sync::Arc::new(scholar::serve::Metrics::new());
    let swap_metrics = std::sync::Arc::clone(&metrics);
    let on_publish = move |_| swap_metrics.record_swap();
    let (shared, reindexer) = match args.get("state") {
        Some(dir) => {
            let mut opts = scholar::serve::DurableOptions::new(dir);
            opts.snapshot_every = args.get_parsed("snapshot-every", opts.snapshot_every)?;
            let started = Instant::now();
            let (shared, reindexer, report) =
                scholar::serve::Reindexer::start_durable(config, corpus, opts, on_publish)
                    .map_err(|e| format!("cannot recover state in '{dir}': {e}"))?;
            if report.restored_from_snapshot {
                outln!(
                    out,
                    "restored snapshot generation {:016x} + {} journaled batches \
                     ({} articles{}) in {:?}",
                    report.snapshot_generation,
                    report.replayed_batches,
                    report.replayed_articles,
                    if report.torn_tail { ", torn journal tail discarded" } else { "" },
                    started.elapsed()
                );
            } else {
                outln!(
                    out,
                    "cold start: ranked and wrote snapshot generation {:016x} in {:?}",
                    report.snapshot_generation,
                    started.elapsed()
                );
            }
            (shared, reindexer)
        }
        None => {
            outln!(out, "ranking {} articles...", corpus.num_articles());
            match shadow_gate.clone() {
                Some(gate) => {
                    scholar::serve::Reindexer::start_gated(config, corpus, gate, on_publish)
                }
                None => scholar::serve::Reindexer::start(config, corpus, on_publish),
            }
        }
    };
    let mut server = scholar::serve::serve(
        std::sync::Arc::clone(&shared),
        std::sync::Arc::clone(&metrics),
        &serve_config,
    )
    .map_err(|e| format!("cannot bind {}: {e}", serve_config.addr))?;
    outln!(out, "listening on http://{}", server.addr());
    outln!(out, "endpoints: /top /article/{{id}} /health /metrics /shadow");
    if shadow_gate.is_some() {
        outln!(
            out,
            "shadow gate armed: rebuilt indexes stage at /shadow and must pass before publish"
        );
    }

    match duration {
        Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
        None => {
            outln!(out, "press Ctrl-D (close stdin) to stop");
            let mut line = String::new();
            while std::io::stdin().read_line(&mut line).map(|n| n > 0).unwrap_or(false) {
                line.clear();
            }
        }
    }

    server.shutdown();
    reindexer.shutdown();
    let rel = std::sync::atomic::Ordering::Relaxed;
    outln!(
        out,
        "served {} requests ({} ok, {} client errors, {} shed), p50 {}us, p99 {}us",
        metrics.requests.load(rel),
        metrics.ok.load(rel),
        metrics.client_errors.load(rel),
        metrics.shed.load(rel),
        metrics.latency_quantile_us(0.50),
        metrics.latency_quantile_us(0.99)
    );
    if let Some(r) = &recorder {
        match r.flush() {
            Ok(n) => outln!(
                out,
                "recorded {} requests to {} ({} dropped to ring contention)",
                n,
                r.path().display(),
                r.dropped()
            ),
            Err(e) => outln!(out, "request log flush failed (recording degraded): {e}"),
        }
    }
    if let Some(gate) = &shadow_gate {
        if let Some(report) = shared.shadow_report() {
            let failures = report.failures(gate);
            if failures.is_empty() {
                outln!(
                    out,
                    "shadow candidate generation {} healthy ({} mirrored)",
                    report.candidate_generation,
                    report.mirrored
                );
            } else {
                outln!(
                    out,
                    "shadow candidate generation {} NOT promotable: {}",
                    report.candidate_generation,
                    failures.join("; ")
                );
            }
        }
    }
    Ok(())
}

/// `scholar replay LOG.rlog --addr HOST:PORT [--connections N]
/// [--no-keep-alive] [--expect DIGESTS] [--write-digests FILE] [--json]`
///
/// Re-issue a recorded RLOGv1 request log against a running server,
/// preserving per-connection request order, and digest the responses
/// per endpoint. With `--expect FILE` the digests are compared against
/// a previously written sidecar and any drift is an error — the
/// regression-gate mode CI uses. `--write-digests FILE` records the
/// sidecar for a future `--expect`.
pub fn replay<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let log_path = args.positional(0, "request log path")?;
    let log = scholar::serve::read_rlog(Path::new(log_path))
        .map_err(|e| format!("cannot read '{log_path}': {e}"))?;
    if log.torn_tail {
        outln!(out, "note: {log_path} has a torn tail; replaying the clean prefix");
    }
    if log.records.is_empty() {
        return Err(format!("'{log_path}' holds no records"));
    }
    let addr_raw = args.get("addr").ok_or("missing --addr HOST:PORT")?;
    let addr = resolve_addr(addr_raw)?;
    let config = scholar_loadgen::ReplayConfig {
        addr,
        connections: args.get_parsed("connections", 2)?,
        keep_alive: !args.has_switch("no-keep-alive"),
    };
    let report = scholar_loadgen::replay(&log.records, &config).map_err(|e| e.to_string())?;
    if args.has_switch("json") {
        outln!(out, "{}", report.to_json().to_string_pretty());
    } else {
        outln!(
            out,
            "replayed {} of {} records in {:?}: {} transport errors, {} status mismatches",
            report.replayed,
            log.records.len(),
            report.elapsed,
            report.transport_errors,
            report.status_mismatches
        );
        for line in report.format_digests().lines() {
            outln!(out, "  {line}");
        }
    }
    if let Some(path) = args.get("write-digests") {
        std::fs::write(path, report.format_digests())
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        outln!(out, "wrote digests to {path}");
    }
    if report.transport_errors > 0 {
        return Err(format!("{} transport errors — digests unusable", report.transport_errors));
    }
    if let Some(path) = args.get("expect") {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read '{path}': {e}"))?;
        let expected = scholar_loadgen::parse_digests(&text)
            .map_err(|e| format!("bad digest file '{path}': {e}"))?;
        let drift = report.diff_digests(&expected);
        if !drift.is_empty() {
            return Err(format!("response digest drift vs {path}:\n  {}", drift.join("\n  ")));
        }
        outln!(out, "digests match {path}");
    }
    Ok(())
}

/// Resolve `HOST:PORT` to one socket address.
fn resolve_addr(raw: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs;
    raw.to_socket_addrs()
        .map_err(|e| format!("cannot resolve '{raw}': {e}"))?
        .next()
        .ok_or_else(|| format!("'{raw}' resolves to no address"))
}

/// `scholar snapshot corpus.jsonl --state DIR [--config FILE]`
///
/// Rank the corpus offline and publish the result as a durable state
/// directory (`DIR/snapshot.snap` + an empty `DIR/wal.log`), exactly
/// what a cold `serve --state DIR` would write — so the first real
/// `serve --state DIR` restores in milliseconds instead of ranking.
pub fn snapshot<W: Write>(args: &Args, out: &mut W) -> CmdResult {
    let corpus = load_corpus(args.positional(0, "corpus path")?, args)?;
    let config = qrank_config(args)?;
    let dir = std::path::PathBuf::from(args.get("state").ok_or("missing --state DIR")?);
    outln!(out, "ranking {} articles...", corpus.num_articles());
    let started = Instant::now();
    let ranker = scholar::core::IncrementalRanker::new(config, corpus);
    let ranked_in = started.elapsed();
    let generation = scholar::serve::write_snapshot(&dir, ranker.corpus(), ranker.result(), 0)
        .map_err(|e| format!("cannot write snapshot in '{}': {e}", dir.display()))?;
    scholar::serve::Wal::create(&dir, 0)
        .map_err(|e| format!("cannot create journal in '{}': {e}", dir.display()))?;
    outln!(
        out,
        "wrote {} generation {:016x} ({} articles, ranked in {:?})",
        scholar::serve::snapshot::snapshot_path(&dir).display(),
        generation,
        ranker.corpus().num_articles(),
        ranked_in
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch;

    fn tmpdir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "scholar_cli_test_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn run(argv: &[&str]) -> Result<String, String> {
        let parsed = Args::parse(argv.iter().map(|s| s.to_string()))?;
        let mut buf = Vec::new();
        dispatch(&parsed, &mut buf)?;
        Ok(String::from_utf8(buf).unwrap())
    }

    fn corpus_file(dir: &std::path::Path) -> String {
        let path = dir.join("c.jsonl");
        let c = Preset::Tiny.generate(5);
        jsonl::write_jsonl_file(&c, &path).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn generate_mag_scale_writes_colstore_and_rank_mmap_reads_it() {
        let dir = tmpdir();
        let store = dir.join("store");
        let store_s = store.to_string_lossy().into_owned();
        let out = run(&[
            "generate",
            "--preset",
            "mag-scale",
            "--articles",
            "3000",
            "--seed",
            "7",
            "--out",
            &store_s,
        ])
        .unwrap();
        assert!(out.contains("wrote colstore"), "{out}");
        assert!(out.contains("3000 articles"), "{out}");

        // Rank it through the mmap backend, plain and JSON.
        let ranked =
            run(&["rank", &store_s, "--store", "mmap", "--method", "twpr", "--top", "5"]).unwrap();
        assert!(ranked.contains("top 5 articles by TWPR"), "{ranked}");
        assert!(ranked.contains("article-"), "{ranked}");
        let js =
            run(&["rank", &store_s, "--store", "mmap", "--method", "pagerank", "--json"]).unwrap();
        assert!(js.contains("\"score\""), "{js}");

        // QRank end-to-end through the engine path.
        let q = run(&["rank", &store_s, "--store", "mmap", "--top", "3"]).unwrap();
        assert!(q.contains("top 3 articles by QRank"), "{q}");

        // Guard rails: --explain needs RAM metadata; unknown stores fail.
        let err = run(&["rank", &store_s, "--store", "mmap", "--explain"]).unwrap_err();
        assert!(err.contains("--store mmap"), "{err}");
        let err = run(&["rank", &store_s, "--store", "tape"]).unwrap_err();
        assert!(err.contains("unknown --store"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mmap_backend_scores_match_ram_backend() {
        // The same corpus written both ways must rank identically: write
        // a small generated corpus to a colstore and compare solve_ctx
        // outputs across backends through the public CLI-facing APIs.
        let dir = tmpdir();
        let store = dir.join("eqstore");
        let c = Preset::Tiny.generate(11);
        c.write_colstore(&store).unwrap();
        let cs = scholar::corpus::colstore::ColStore::open(&store).unwrap();
        let ram = RankContext::new(&c);
        let mm = RankContext::from_colstore(&cs);
        for ranker in scholar::evaluation_rankers() {
            let a = ranker.solve_ctx(&ram);
            let b = ranker.solve_ctx(&mm);
            let drift: f64 = a.scores.iter().zip(&b.scores).map(|(x, y)| (x - y).abs()).sum();
            assert!(drift <= 1e-12, "{} drifted {drift}", ranker.name());
            assert_eq!(a.telemetry.iterations, b.telemetry.iterations, "{}", ranker.name());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_binds_ranks_and_shuts_down_cleanly() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        // --duration 0: bind, publish generation 1, drain, exit.
        let out =
            run(&["serve", &path, "--addr", "127.0.0.1:0", "--workers", "1", "--duration", "0"])
                .unwrap();
        assert!(out.contains("listening on http://127.0.0.1:"), "{out}");
        assert!(out.contains("served 0 requests"), "{out}");
        let err = run(&["serve", &path, "--duration", "soon"]).unwrap_err();
        assert!(err.contains("--duration"), "{err}");
        // Both explicit backends bind and drain; a typo is rejected.
        for backend in ["blocking", if cfg!(target_os = "linux") { "epoll" } else { "auto" }] {
            let out = run(&[
                "serve",
                &path,
                "--addr",
                "127.0.0.1:0",
                "--backend",
                backend,
                "--duration",
                "0",
            ])
            .unwrap();
            assert!(out.contains("listening on"), "backend {backend}: {out}");
        }
        let err = run(&["serve", &path, "--backend", "iocp"]).unwrap_err();
        assert!(err.contains("--backend"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generate_stats_roundtrip() {
        let dir = tmpdir();
        let path = dir.join("gen.jsonl").to_string_lossy().into_owned();
        let out = run(&["generate", "--preset", "tiny", "--seed", "3", "--out", &path]).unwrap();
        assert!(out.contains("articles"));
        let stats_out = run(&["stats", &path]).unwrap();
        assert!(stats_out.contains("citations"));
        assert!(stats_out.contains("data quality"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_text_and_json() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let text = run(&["rank", &path, "--method", "pagerank", "--top", "3"]).unwrap();
        assert!(text.contains("top 3 articles by PageRank"));
        let json = run(&["rank", &path, "--method", "cc", "--top", "2", "--json"]).unwrap();
        let parsed = sjson::parse(&json).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("rank").unwrap().as_usize(), Some(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rank_explain_requires_qrank() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let err = run(&["rank", &path, "--method", "cc", "--explain"]).unwrap_err();
        assert!(err.contains("only available"));
        let ok = run(&["rank", &path, "--method", "qrank", "--top", "2", "--explain"]).unwrap();
        assert!(ok.contains("signal mix"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ablate_text_and_json() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let text = run(&["ablate", &path]).unwrap();
        assert!(text.contains("ablation sweep"));
        assert!(text.contains("QRank (full)"));
        assert!(text.contains("PageRank"));
        let json = run(&["ablate", &path, "--json"]).unwrap();
        let parsed = sjson::parse(&json).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0].get("variant").unwrap().as_str(), Some("QRank (full)"));
        assert_eq!(rows[0].get("l1_vs_full").unwrap().as_f64(), Some(0.0));
        assert_eq!(rows[0].get("converged").unwrap().as_bool(), Some(true));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn threads_flag_is_validated_and_accepted() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        // --threads 1 (the sequential escape hatch) must give the same
        // ranking as the default thread count. The trailing solver line
        // carries wall-clock times, so compare everything above it.
        let ranking_lines = |s: &str| -> Vec<String> {
            s.lines().filter(|l| !l.starts_with("solver:")).map(str::to_owned).collect()
        };
        let seq =
            run(&["rank", &path, "--method", "qrank", "--top", "3", "--threads", "1"]).unwrap();
        let par =
            run(&["rank", &path, "--method", "qrank", "--top", "3", "--threads", "4"]).unwrap();
        assert_eq!(ranking_lines(&seq), ranking_lines(&par));
        assert!(seq.contains("solver: "), "rank output reports solver telemetry");
        let err = run(&["rank", &path, "--threads", "0"]).unwrap_err();
        assert!(err.contains("--threads"));
        let err2 = run(&["rank", &path, "--threads", "lots"]).unwrap_err();
        assert!(err2.contains("invalid --threads"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn related_finds_neighbors() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let out = run(&["related", &path, "--seeds", "0,1", "--top", "4"]).unwrap();
        assert!(out.contains("related articles"));
        assert!(
            out.lines().filter(|l| l.trim_start().starts_with(['1', '2', '3', '4'])).count() >= 4
        );
        let err = run(&["related", &path, "--seeds", "999999"]).unwrap_err();
        assert!(err.contains("out of range"));
        let err2 = run(&["related", &path, "--seeds", "abc"]).unwrap_err();
        assert!(err2.contains("invalid article id"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn eval_produces_table() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let out = run(&["eval", &path, "--cutoff-frac", "0.8", "--window", "5"]).unwrap();
        assert!(out.contains("future-citation prediction"));
        assert!(out.contains("QRank"));
        assert!(out.contains("PageRank"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_then_serve_state_restores_instead_of_ranking() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let state = dir.join("state").to_string_lossy().into_owned();
        let out = run(&["snapshot", &path, "--state", &state]).unwrap();
        assert!(out.contains("generation"), "{out}");
        let out =
            run(&["serve", &path, "--state", &state, "--addr", "127.0.0.1:0", "--duration", "0"])
                .unwrap();
        assert!(out.contains("restored snapshot generation"), "{out}");
        let err = run(&["snapshot", &path]).unwrap_err();
        assert!(err.contains("--state"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn convert_aan_roundtrip() {
        let dir = tmpdir();
        let c = Preset::Tiny.generate(6);
        let meta = dir.join("meta.txt");
        let cites = dir.join("cites.txt");
        std::fs::write(&meta, aan::write_metadata(&c)).unwrap();
        std::fs::write(&cites, aan::write_citations(&c)).unwrap();
        let out_path = dir.join("converted.jsonl").to_string_lossy().into_owned();
        let out = run(&[
            "convert",
            "--from",
            "aan",
            "--meta",
            &meta.to_string_lossy(),
            "--cites",
            &cites.to_string_lossy(),
            "--out",
            &out_path,
        ])
        .unwrap();
        assert!(out.contains(&format!("{} articles", c.num_articles())));
        let loaded = load_corpus(&out_path, &Args::default()).unwrap();
        assert_eq!(loaded.num_citations(), c.num_citations());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn analyze_prints_diagnostics() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let out = run(&["analyze", &path]).unwrap();
        assert!(out.contains("mean citation age"));
        assert!(out.contains("self-citation rate"));
        assert!(out.contains("h-index"));
        assert!(out.contains("insular"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coldstart_by_name() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        // Use names that exist in the generated corpus.
        let out = run(&["coldstart", &path, "--venue", "Venue-0000", "--authors", "Author-000000"])
            .unwrap();
        assert!(out.contains("cold-start score"));
        assert!(out.contains("percentile"));
        let err = run(&["coldstart", &path, "--venue", "Nope"]).unwrap_err();
        assert!(err.contains("unknown venue"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_file_overrides_defaults() {
        let dir = tmpdir();
        let path = corpus_file(&dir);
        let cfg_path = dir.join("cfg.json");
        std::fs::write(
            &cfg_path,
            r#"{"lambda_article": 1.0, "lambda_venue": 0.0, "lambda_author": 0.0}"#,
        )
        .unwrap();
        let out = run(&[
            "rank",
            &path,
            "--method",
            "qrank",
            "--top",
            "3",
            "--config",
            &cfg_path.to_string_lossy(),
        ])
        .unwrap();
        assert!(out.contains("top 3 articles"));
        // Invalid config is rejected with a clear message.
        std::fs::write(&cfg_path, r#"{"lambda_article": 2.0}"#).unwrap();
        let err =
            run(&["rank", &path, "--method", "qrank", "--config", &cfg_path.to_string_lossy()])
                .unwrap_err();
        assert!(err.contains("invalid config"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_year_policy_flag() {
        let dir = tmpdir();
        let path = dir.join("yearless.jsonl");
        std::fs::write(
            &path,
            "{\"id\": \"A\"}\n{\"id\": \"B\", \"year\": 2000, \"references\": [\"A\"]}\n",
        )
        .unwrap();
        let path = path.to_string_lossy().into_owned();
        // Default: the yearless record aborts the load.
        let err = run(&["stats", &path]).unwrap_err();
        assert!(err.contains("no publication year"), "{err}");
        // Explicit policies let the load proceed.
        let article_count = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("articles"))
                .and_then(|l| l.split_whitespace().last())
                .map(str::to_owned)
        };
        let dropped = run(&["stats", &path, "--missing-year", "drop"]).unwrap();
        assert_eq!(article_count(&dropped).as_deref(), Some("1"), "{dropped}");
        let imputed = run(&["stats", &path, "--missing-year", "1995"]).unwrap();
        assert_eq!(article_count(&imputed).as_deref(), Some("2"), "{imputed}");
        let bad = run(&["stats", &path, "--missing-year", "whenever"]).unwrap_err();
        assert!(bad.contains("invalid --missing-year"), "{bad}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_paths() {
        assert!(run(&["nonsense"]).unwrap_err().contains("unknown command"));
        assert!(run(&["rank", "/no/such/file.jsonl"]).unwrap_err().contains("cannot load"));
        assert!(run(&["generate", "--preset", "bogus", "--out", "/tmp/x"])
            .unwrap_err()
            .contains("unknown preset"));
        assert!(run(&["convert", "--out", "/tmp/x"]).unwrap_err().contains("--from"));
        let help = run(&["help"]).unwrap();
        assert!(help.contains("USAGE"));
    }
}
