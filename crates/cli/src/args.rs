//! A minimal `--flag value` argument parser (no external dependencies).

use std::collections::HashMap;

/// Parsed command line: a subcommand, positional arguments, and
/// `--key value` / `--switch` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    options: HashMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parse from an iterator of argument strings (excluding `argv[0]`).
    ///
    /// Rules: the first non-`--` token is the subcommand; later non-`--`
    /// tokens are positional; `--key value` pairs become options unless
    /// the next token is absent or itself a flag, in which case `--key`
    /// is a boolean switch.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut iter = args.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                if key.is_empty() {
                    return Err("bare '--' is not a valid flag".into());
                }
                match iter.peek() {
                    Some(next) if !next.starts_with("--") => {
                        let val = iter.next().unwrap();
                        out.options.insert(key.to_owned(), val);
                    }
                    _ => out.switches.push(key.to_owned()),
                }
            } else if out.command.is_empty() {
                out.command = tok;
            } else {
                out.positional.push(tok);
            }
        }
        Ok(out)
    }

    /// String option by key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Option parsed to a type, with a default.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// `true` if `--key` appeared as a boolean switch.
    pub fn has_switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Positional argument by index, with a helpful error.
    pub fn positional(&self, index: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(index)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what} argument"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(toks: &[&str]) -> Args {
        Args::parse(toks.iter().map(|s| s.to_string())).unwrap()
    }

    #[test]
    fn command_and_positionals() {
        let a = parse(&["rank", "corpus.jsonl", "extra"]);
        assert_eq!(a.command, "rank");
        assert_eq!(a.positional, vec!["corpus.jsonl", "extra"]);
        assert_eq!(a.positional(0, "corpus").unwrap(), "corpus.jsonl");
        assert!(a.positional(5, "nope").is_err());
    }

    #[test]
    fn options_and_switches() {
        let a = parse(&["rank", "c.jsonl", "--method", "qrank", "--top", "5", "--explain"]);
        assert_eq!(a.get("method"), Some("qrank"));
        assert_eq!(a.get_parsed::<usize>("top", 10).unwrap(), 5);
        assert!(a.has_switch("explain"));
        assert!(!a.has_switch("quiet"));
        assert_eq!(a.get_parsed::<usize>("missing", 42).unwrap(), 42);
    }

    #[test]
    fn flag_followed_by_flag_is_switch() {
        let a = parse(&["x", "--verbose", "--top", "3"]);
        assert!(a.has_switch("verbose"));
        assert_eq!(a.get("top"), Some("3"));
    }

    #[test]
    fn bad_parse_value() {
        let a = parse(&["x", "--top", "many"]);
        assert!(a.get_parsed::<usize>("top", 1).is_err());
    }

    #[test]
    fn bare_double_dash_rejected() {
        assert!(Args::parse(vec!["--".to_string()]).is_err());
    }
}
