#![warn(missing_docs)]

//! Library backing the `scholar` command-line tool.
//!
//! All command logic lives here (and is unit-tested here); `main.rs` is a
//! thin dispatcher. Commands write to a generic `Write` sink so tests can
//! capture output.

pub mod args;
pub mod commands;

pub use args::Args;

/// Dispatch a parsed command line, writing human output to `out`.
pub fn dispatch<W: std::io::Write>(parsed: &Args, out: &mut W) -> Result<(), String> {
    match parsed.command.as_str() {
        "generate" => commands::generate(parsed, out),
        "stats" => commands::stats(parsed, out),
        "rank" => commands::rank(parsed, out),
        "ablate" => commands::ablate(parsed, out),
        "related" => commands::related(parsed, out),
        "coldstart" => commands::coldstart(parsed, out),
        "analyze" => commands::analyze(parsed, out),
        "eval" => commands::eval(parsed, out),
        "convert" => commands::convert(parsed, out),
        "serve" => commands::serve(parsed, out),
        "replay" => commands::replay(parsed, out),
        "snapshot" => commands::snapshot(parsed, out),
        "" | "help" => {
            writeln!(out, "{}", help_text()).map_err(|e| e.to_string())?;
            Ok(())
        }
        other => Err(format!("unknown command '{other}' (try 'scholar help')")),
    }
}

/// The help screen.
pub fn help_text() -> &'static str {
    "scholar — query-independent scholarly article ranking

USAGE: scholar <command> [args]

COMMANDS:
  generate  --preset tiny|aan|dblp|mag [--seed N] --out FILE
            synthesize a corpus and write it as JSON lines
  generate  --preset mag-scale [--articles N] [--seed N] --out DIR
            stream a MAG-scale corpus straight into an out-of-core
            columnar store (default 10M articles; RAM stays bounded)
  stats     CORPUS.jsonl
            print corpus-level statistics
  rank      CORPUS.jsonl [--method qrank|twpr|pagerank|cc|hits|citerank|futurerank|prank]
            [--top N] [--explain] [--json]
            rank every article, print the top N
  rank      STORE_DIR --store mmap [--method ...] [--top N] [--json]
            rank an out-of-core columnar store through the mmap backend
            (bit-identical scores; listing shows ids and years)
  ablate    CORPUS.jsonl [--json]
            run all seven ablation variants over one corpus, sharing
            prepared engines between structurally identical variants
  related   CORPUS.jsonl --seeds ID[,ID...] [--top N]
            personalized-PageRank related-article search from seed articles
  coldstart CORPUS.jsonl --venue NAME [--authors NAME,NAME...]
            score a not-yet-indexed submission from venue/author prestige
  analyze   CORPUS.jsonl
            bibliometric diagnostics: citation-age profile, self-citation
            rate, venue insularity, h-index leaderboard
  eval      CORPUS.jsonl [--cutoff-frac F] [--window YEARS]
            hold out the last part of the timeline and compare all methods
  convert   --from aan --meta META --cites CITES --out FILE
            convert the AAN release format to JSON lines
  convert   --from mag --papers P --authors A --refs R --out FILE
            convert MAG-style TSV tables to JSON lines
  serve     CORPUS.jsonl [--addr HOST:PORT] [--workers N] [--queue N]
            [--read-timeout-ms MS] [--max-conns N]
            [--backend auto|epoll|blocking] [--duration SECS]
            [--state DIR] [--snapshot-every N]
            [--record FILE [--sample N] [--record-cap N]] [--shadow]
            rank the corpus and serve it over HTTP: GET /top (k, venue,
            author, year_min, year_max filters), /article/{id}, /health,
            /metrics, /shadow; runs until stdin closes unless --duration
            is given; --backend auto picks the nonblocking epoll event
            loop on Linux (keep-alive, SO_REUSEPORT shards) and the
            portable blocking pool elsewhere; --state DIR makes the
            server crash-safe: batches journal to DIR/wal.log before
            they are acknowledged, state snapshots to DIR/snapshot.snap
            every --snapshot-every batches, and a restart restores
            snapshot + journal in milliseconds instead of re-ranking;
            --record FILE samples every --sample N-th request (default
            every request) into an RLOGv1 log flushed at shutdown;
            --shadow stages rebuilt indexes as candidates that must pass
            drift thresholds on mirrored live traffic before publishing
            (--shadow-min-mirrored N, --shadow-min-overlap F,
            --shadow-min-tau F, --shadow-max-l1 F,
            --shadow-max-mismatches N tune the gate)
  replay    LOG.rlog --addr HOST:PORT [--connections N]
            [--no-keep-alive] [--expect FILE] [--write-digests FILE]
            [--json]
            re-issue a recorded request log against a running server,
            preserving per-connection order, and digest the responses
            per endpoint; --expect FILE fails on any digest drift
            (regression gate), --write-digests FILE saves the sidecar
            a future --expect compares against
  snapshot  CORPUS.jsonl --state DIR
            rank the corpus offline and publish it as a durable state
            directory, so the first `serve --state DIR` restores
            instantly instead of ranking

Commands reading CORPUS.jsonl accept --missing-year error|drop|YEAR for
records without a publication year (default: error — yearless records
abort the load rather than silently becoming year-0 articles).

Commands running QRank (rank, ablate, coldstart, eval, serve, snapshot) accept --config FILE
with a partial QRankConfig as JSON; unspecified fields keep tuned defaults.
They also accept --threads N to set the worker count (--threads 1 forces
sequential execution); the SCHOLAR_THREADS environment variable changes
the default instead."
}
