//! `scholar` — command-line interface to the qrank ranking stack.
//! All logic lives in the library (`scholar_cli`); this is the
//! process-boundary shim.

fn main() {
    let parsed = match scholar_cli::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = scholar_cli::dispatch(&parsed, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
