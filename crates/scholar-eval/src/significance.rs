//! Paired-bootstrap significance testing for metric differences.
//!
//! "Method A scores 0.79, method B scores 0.78" means little without a
//! significance statement; published evaluations (and R-Table 2's
//! narrative in EXPERIMENTS.md) report whether differences survive a
//! paired bootstrap over articles: resample the article set with
//! replacement, recompute the metric for both methods on the same
//! resample, and look at the distribution of the difference.

use crate::metrics::spearman;
use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};

/// Which metric to bootstrap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BootstrapMetric {
    /// Spearman rank correlation against the ground truth (fast and
    /// well-behaved under resampling; the default).
    Spearman,
}

/// Result of a paired bootstrap comparison of two methods.
#[derive(Debug, Clone, PartialEq)]
pub struct BootstrapResult {
    /// Point estimate of `metric(A) − metric(B)` on the full data.
    pub observed_delta: f64,
    /// Mean of the bootstrap deltas.
    pub mean_delta: f64,
    /// 2.5th percentile of the bootstrap deltas.
    pub ci_low: f64,
    /// 97.5th percentile of the bootstrap deltas.
    pub ci_high: f64,
    /// Two-sided bootstrap p-value for "the difference is zero".
    pub p_value: f64,
    /// Number of bootstrap replicates used.
    pub replicates: usize,
}

impl BootstrapResult {
    /// `true` when the 95% interval excludes zero.
    pub fn significant(&self) -> bool {
        self.ci_low > 0.0 || self.ci_high < 0.0
    }
}

/// Paired bootstrap over articles: is `scores_a` better than `scores_b`
/// at recovering `truth`?
///
/// Deterministic given `seed`. Panics on length mismatches or fewer than
/// 10 items.
pub fn paired_bootstrap(
    truth: &[f64],
    scores_a: &[f64],
    scores_b: &[f64],
    metric: BootstrapMetric,
    replicates: usize,
    seed: u64,
) -> BootstrapResult {
    assert_eq!(truth.len(), scores_a.len(), "length mismatch (A)");
    assert_eq!(truth.len(), scores_b.len(), "length mismatch (B)");
    let n = truth.len();
    assert!(n >= 10, "need at least 10 items to bootstrap");
    assert!(replicates >= 10, "need at least 10 replicates");

    let eval = |t: &[f64], s: &[f64]| -> f64 {
        match metric {
            BootstrapMetric::Spearman => spearman(t, s),
        }
    };
    let observed_delta = eval(truth, scores_a) - eval(truth, scores_b);

    let mut rng = SmallRng::seed_from_u64(seed);
    let mut deltas = Vec::with_capacity(replicates);
    let mut t = vec![0.0; n];
    let mut a = vec![0.0; n];
    let mut b = vec![0.0; n];
    for _ in 0..replicates {
        for slot in 0..n {
            let idx = rng.gen_range(0..n);
            t[slot] = truth[idx];
            a[slot] = scores_a[idx];
            b[slot] = scores_b[idx];
        }
        let d = eval(&t, &a) - eval(&t, &b);
        if d.is_finite() {
            deltas.push(d);
        }
    }
    assert!(!deltas.is_empty(), "all bootstrap replicates degenerate");
    deltas.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let m = deltas.len();
    let mean_delta = deltas.iter().sum::<f64>() / m as f64;
    let pct = |q: f64| deltas[((q * (m - 1) as f64).round() as usize).min(m - 1)];
    let ci_low = pct(0.025);
    let ci_high = pct(0.975);
    let frac_le = deltas.iter().filter(|&&d| d <= 0.0).count() as f64 / m as f64;
    let frac_ge = deltas.iter().filter(|&&d| d >= 0.0).count() as f64 / m as f64;
    let p_value = (2.0 * frac_le.min(frac_ge)).min(1.0);

    BootstrapResult { observed_delta, mean_delta, ci_low, ci_high, p_value, replicates: m }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_truth(n: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        // truth = i; A = truth + small noise; B = mostly noise.
        let mut state = 42u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 32) as f64 / u32::MAX as f64) - 0.5
        };
        let truth: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let a: Vec<f64> = (0..n).map(|i| i as f64 + 3.0 * next()).collect();
        let b: Vec<f64> = (0..n).map(|i| 0.05 * i as f64 + 100.0 * next()).collect();
        (truth, a, b)
    }

    #[test]
    fn clearly_better_method_is_significant() {
        let (t, a, b) = noisy_truth(300);
        let res = paired_bootstrap(&t, &a, &b, BootstrapMetric::Spearman, 500, 1);
        assert!(res.observed_delta > 0.2);
        assert!(res.significant(), "CI [{}, {}]", res.ci_low, res.ci_high);
        assert!(res.p_value < 0.05);
        assert!(res.ci_low <= res.mean_delta && res.mean_delta <= res.ci_high);
    }

    #[test]
    fn method_vs_itself_is_not_significant() {
        let (t, a, _) = noisy_truth(300);
        let res = paired_bootstrap(&t, &a, &a, BootstrapMetric::Spearman, 300, 2);
        assert_eq!(res.observed_delta, 0.0);
        assert!(!res.significant());
        assert!(res.p_value > 0.9);
    }

    #[test]
    fn deterministic_per_seed() {
        let (t, a, b) = noisy_truth(100);
        let r1 = paired_bootstrap(&t, &a, &b, BootstrapMetric::Spearman, 200, 9);
        let r2 = paired_bootstrap(&t, &a, &b, BootstrapMetric::Spearman, 200, 9);
        assert_eq!(r1, r2);
    }

    #[test]
    fn sign_flips_with_order() {
        let (t, a, b) = noisy_truth(200);
        let ab = paired_bootstrap(&t, &a, &b, BootstrapMetric::Spearman, 200, 3);
        let ba = paired_bootstrap(&t, &b, &a, BootstrapMetric::Spearman, 200, 3);
        assert!((ab.observed_delta + ba.observed_delta).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least 10 items")]
    fn tiny_input_panics() {
        paired_bootstrap(&[1.0; 3], &[1.0; 3], &[1.0; 3], BootstrapMetric::Spearman, 100, 0);
    }
}
