//! Ground-truth construction (DESIGN.md §4 / §5).
//!
//! Three constructions, mirroring what the published evaluation gathered
//! from the real world:
//!
//! 1. **Future citations** — rank articles visible at a cutoff year by the
//!    citations they receive in a held-out future window. This is the
//!    standard "predict eventual impact" ground truth and requires no
//!    planted information at all, so it works on real datasets too.
//! 2. **Award lists** — the top-merit articles per year bucket, standing in
//!    for best-paper / test-of-time award lists (uses the generator's
//!    planted merit; unavailable for real corpora without award data).
//! 3. **Expert pairs** — sampled article pairs with a clear merit margin,
//!    standing in for pairwise expert judgments.

use scholar_corpus::{Corpus, Snapshot};
use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};
use std::collections::HashSet;

/// A graded ground truth over the articles of a (snapshot) corpus.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruth {
    /// One non-negative grade per article (higher = objectively better).
    pub values: Vec<f64>,
    /// Human-readable description for table captions.
    pub description: String,
}

/// Future-citation ground truth for the articles of `snapshot`: citations
/// received from full-corpus articles published in
/// `(cutoff, cutoff + window_years]`.
///
/// Returned values are aligned with the *snapshot's* article ids.
pub fn future_citations(full: &Corpus, snapshot: &Snapshot, window_years: i32) -> GroundTruth {
    assert!(window_years > 0, "window must be positive");
    let horizon = snapshot.cutoff.saturating_add(window_years);
    let mut values = vec![0.0f64; snapshot.corpus.num_articles()];
    for citing in full.articles() {
        if citing.year <= snapshot.cutoff || citing.year > horizon {
            continue;
        }
        for &cited in &citing.references {
            if let Some(snap_id) = snapshot.to_snapshot(cited) {
                values[snap_id.index()] += 1.0;
            }
        }
    }
    GroundTruth {
        values,
        description: format!("citations received in ({}, {}]", snapshot.cutoff, horizon),
    }
}

/// Planted-merit ground truth (synthetic corpora only).
///
/// Returns `None` if any article lacks planted merit.
pub fn planted_merit(corpus: &Corpus) -> Option<GroundTruth> {
    let values: Option<Vec<f64>> = corpus.articles().iter().map(|a| a.merit).collect();
    values.map(|values| GroundTruth { values, description: "planted intrinsic merit".into() })
}

/// Award-list ground truth: within each `bucket_years`-wide publication
/// window, the top `top_frac` articles by planted merit (at least one per
/// non-empty bucket) are "award papers".
///
/// Returns the set of article indices. Panics if merit is missing.
pub fn award_set(corpus: &Corpus, bucket_years: i32, top_frac: f64) -> HashSet<usize> {
    assert!(bucket_years > 0, "bucket width must be positive");
    assert!((0.0..=1.0).contains(&top_frac), "top_frac must be in [0, 1]");
    let Some((first, last)) = corpus.year_range() else {
        return HashSet::new();
    };
    let mut awards = HashSet::new();
    let mut bucket_start = first;
    while bucket_start <= last {
        let bucket_end = bucket_start + bucket_years - 1;
        let mut members: Vec<(usize, f64)> = corpus
            .articles()
            .iter()
            .filter(|a| a.year >= bucket_start && a.year <= bucket_end)
            .map(|a| (a.id.index(), a.merit.expect("award_set needs planted merit")))
            .collect();
        if !members.is_empty() {
            members.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            let take = ((members.len() as f64 * top_frac).ceil() as usize).max(1);
            for &(idx, _) in members.iter().take(take) {
                awards.insert(idx);
            }
        }
        bucket_start += bucket_years;
    }
    awards
}

/// Expert-pair ground truth: up to `n_pairs` article pairs `(winner,
/// loser)` whose planted merits differ by at least `margin_ratio`×
/// (ratio ≥ margin_ratio > 1 guarantees a judgment an expert would make
/// confidently). Deterministic given `seed`.
pub fn expert_pairs(
    corpus: &Corpus,
    n_pairs: usize,
    margin_ratio: f64,
    seed: u64,
) -> Vec<(usize, usize)> {
    assert!(margin_ratio > 1.0, "margin ratio must exceed 1");
    let n = corpus.num_articles();
    if n < 2 {
        return Vec::new();
    }
    let merit: Vec<f64> = corpus
        .articles()
        .iter()
        .map(|a| a.merit.expect("expert_pairs needs planted merit"))
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut pairs = Vec::with_capacity(n_pairs);
    let max_attempts = n_pairs.saturating_mul(50).max(1000);
    let mut attempts = 0;
    while pairs.len() < n_pairs && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        if merit[i] >= margin_ratio * merit[j] {
            pairs.push((i, j));
        } else if merit[j] >= margin_ratio * merit[i] {
            pairs.push((j, i));
        }
    }
    pairs
}

/// Fraction of expert pairs a score vector orders correctly (ties get half
/// credit). `NaN` for an empty pair list.
pub fn pair_agreement(pairs: &[(usize, usize)], scores: &[f64]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    let mut credit = 0.0;
    for &(winner, loser) in pairs {
        if scores[winner] > scores[loser] {
            credit += 1.0;
        } else if scores[winner] == scores[loser] {
            credit += 0.5;
        }
    }
    credit / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use scholar_corpus::generator::Preset;
    use scholar_corpus::{snapshot_until, CorpusBuilder};

    fn staged_corpus() -> Corpus {
        // a0 (1990), a1 (1995) visible at cutoff 2000;
        // a2 (2005) cites a0; a3 (2010) cites a0, a1; a4 (2020) cites a1.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        let a0 = b.add_article("a0", 1990, v, vec![], vec![], Some(5.0));
        let a1 = b.add_article("a1", 1995, v, vec![], vec![a0], Some(1.0));
        b.add_article("a2", 2005, v, vec![], vec![a0], Some(2.0));
        b.add_article("a3", 2010, v, vec![], vec![a0, a1], Some(3.0));
        b.add_article("a4", 2020, v, vec![], vec![a1], Some(0.5));
        b.finish().unwrap()
    }

    #[test]
    fn future_citations_respect_window() {
        let c = staged_corpus();
        let snap = snapshot_until(&c, 2000);
        assert_eq!(snap.corpus.num_articles(), 2);
        // Window 10 years: citations in (2000, 2010] = a2, a3.
        let gt = future_citations(&c, &snap, 10);
        assert_eq!(gt.values, vec![2.0, 1.0]);
        // Window 6: only a2 counts.
        let gt6 = future_citations(&c, &snap, 6);
        assert_eq!(gt6.values, vec![1.0, 0.0]);
        // Window 25: a4's citation to a1 now counts.
        let gt25 = future_citations(&c, &snap, 25);
        assert_eq!(gt25.values, vec![2.0, 2.0]);
    }

    #[test]
    fn planted_merit_roundtrip() {
        let c = staged_corpus();
        let gt = planted_merit(&c).unwrap();
        assert_eq!(gt.values, vec![5.0, 1.0, 2.0, 3.0, 0.5]);
        // Missing merit -> None.
        let mut b = CorpusBuilder::new();
        let v = b.venue("V");
        b.add_article("x", 2000, v, vec![], vec![], None);
        let c2 = b.finish().unwrap();
        assert!(planted_merit(&c2).is_none());
    }

    #[test]
    fn award_set_per_bucket() {
        let c = staged_corpus();
        // Buckets of 10y starting 1990: [1990-1999]={a0,a1}, [2000-2009]={a2},
        // [2010-2019]={a3}, [2020-2029]={a4}. top_frac tiny -> 1 per bucket.
        let awards = award_set(&c, 10, 0.01);
        assert_eq!(awards.len(), 4);
        assert!(awards.contains(&0)); // a0 beats a1 in its bucket
        assert!(awards.contains(&2));
        assert!(awards.contains(&3));
        assert!(awards.contains(&4));
        assert!(!awards.contains(&1));
    }

    #[test]
    fn award_set_fraction_scales() {
        let c = Preset::Tiny.generate(5);
        let small = award_set(&c, 5, 0.02);
        let large = award_set(&c, 5, 0.2);
        assert!(large.len() > small.len());
        assert!(small.iter().all(|i| large.contains(i) || !large.is_empty()));
    }

    #[test]
    fn expert_pairs_have_margin() {
        let c = Preset::Tiny.generate(6);
        let pairs = expert_pairs(&c, 500, 2.0, 9);
        assert!(pairs.len() > 100, "should find plenty of 2x-margin pairs");
        for &(w, l) in &pairs {
            let mw = c.articles()[w].merit.unwrap();
            let ml = c.articles()[l].merit.unwrap();
            assert!(mw >= 2.0 * ml);
        }
        // Determinism.
        assert_eq!(pairs, expert_pairs(&c, 500, 2.0, 9));
    }

    #[test]
    fn pair_agreement_scores() {
        let pairs = vec![(0usize, 1usize), (2, 1)];
        assert_eq!(pair_agreement(&pairs, &[2.0, 1.0, 3.0]), 1.0);
        assert_eq!(pair_agreement(&pairs, &[0.0, 1.0, 0.5]), 0.0);
        assert_eq!(pair_agreement(&pairs, &[1.0, 1.0, 2.0]), 0.75);
        assert!(pair_agreement(&[], &[1.0]).is_nan());
    }

    #[test]
    fn empty_corpus_edge_cases() {
        let c = CorpusBuilder::new().finish().unwrap();
        assert!(award_set(&c, 5, 0.1).is_empty());
        assert!(expert_pairs(&c, 10, 2.0, 0).is_empty());
    }
}
