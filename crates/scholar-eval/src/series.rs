//! Figure series: named (x, y) sequences rendered as aligned text and CSV.
//!
//! Each R-Figure is one [`SeriesSet`]: a shared x-axis and one y-series
//! per method. `render` prints a readable text block; `to_csv` produces
//! the machine-readable form recorded in EXPERIMENTS.md.

/// One named y-series.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// y values, aligned with the owning [`SeriesSet`]'s x values.
    pub values: Vec<f64>,
}

/// A figure: shared x-axis plus one or more series.
#[derive(Debug, Clone)]
pub struct SeriesSet {
    /// Figure caption.
    pub title: String,
    /// x-axis label.
    pub x_label: String,
    /// x values.
    pub x: Vec<f64>,
    /// The series.
    pub series: Vec<Series>,
}

impl SeriesSet {
    /// A new figure with the given x-axis.
    pub fn new(title: &str, x_label: &str, x: Vec<f64>) -> Self {
        SeriesSet { title: title.to_owned(), x_label: x_label.to_owned(), x, series: Vec::new() }
    }

    /// Add a series (must match the x-axis length).
    pub fn add(&mut self, name: &str, values: Vec<f64>) -> &mut Self {
        assert_eq!(values.len(), self.x.len(), "series length must match x-axis");
        self.series.push(Series { name: name.to_owned(), values });
        self
    }

    /// Render as an aligned text block.
    pub fn render(&self) -> String {
        let mut out = format!("== {} ==\n", self.title);
        let name_w = self
            .series
            .iter()
            .map(|s| s.name.len())
            .chain([self.x_label.len()])
            .max()
            .unwrap_or(8)
            .max(8);
        out.push_str(&format!("{:<name_w$}", self.x_label));
        for &x in &self.x {
            out.push_str(&format!(" {x:>9.3}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:<name_w$}", s.name));
            for &v in &s.values {
                if v.is_nan() {
                    out.push_str(&format!(" {:>9}", "n/a"));
                } else {
                    out.push_str(&format!(" {v:>9.4}"));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Render as CSV: header `x_label,name1,name2,...`, one line per x.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.x_label.replace(',', ";"));
        for s in &self.series {
            out.push(',');
            out.push_str(&s.name.replace(',', ";"));
        }
        out.push('\n');
        for (i, &x) in self.x.iter().enumerate() {
            out.push_str(&format!("{x}"));
            for s in &self.series {
                out.push_str(&format!(",{}", s.values[i]));
            }
            out.push('\n');
        }
        out
    }

    /// For each series, the x value at which it attains its maximum
    /// (`None` for empty or all-NaN series). Used to report optima in
    /// sensitivity figures.
    pub fn argmax_x(&self) -> Vec<(String, Option<f64>)> {
        self.series
            .iter()
            .map(|s| {
                let mut best: Option<(usize, f64)> = None;
                for (i, &v) in s.values.iter().enumerate() {
                    if v.is_nan() {
                        continue;
                    }
                    match best {
                        Some((_, bv)) if bv >= v => {}
                        _ => best = Some((i, v)),
                    }
                }
                (s.name.clone(), best.map(|(i, _)| self.x[i]))
            })
            .collect()
    }
}

impl std::fmt::Display for SeriesSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SeriesSet {
        let mut s = SeriesSet::new("accuracy vs rho", "rho", vec![0.0, 0.1, 0.2]);
        s.add("QRank", vec![0.7, 0.9, 0.8]);
        s.add("PageRank", vec![0.7, 0.7, 0.7]);
        s
    }

    #[test]
    fn render_contains_everything() {
        let text = sample().render();
        assert!(text.contains("accuracy vs rho"));
        assert!(text.contains("QRank"));
        assert!(text.contains("0.9000"));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "rho,QRank,PageRank");
        assert!(lines[1].starts_with("0,"));
    }

    #[test]
    fn argmax_reports_optimum() {
        let opt = sample().argmax_x();
        assert_eq!(opt[0], ("QRank".to_string(), Some(0.1)));
        assert_eq!(opt[1].1, Some(0.0)); // flat series: first max
    }

    #[test]
    #[should_panic(expected = "length must match")]
    fn mismatched_series_panics() {
        let mut s = SeriesSet::new("t", "x", vec![1.0]);
        s.add("bad", vec![1.0, 2.0]);
    }

    #[test]
    fn nan_rendering() {
        let mut s = SeriesSet::new("t", "x", vec![1.0]);
        s.add("m", vec![f64::NAN]);
        assert!(s.render().contains("n/a"));
    }
}
