//! Score-distribution diagnostics.
//!
//! PageRank-family scores on scholarly graphs are heavily concentrated
//! (Pandurangan, Raghavan & Upfal 2002 observed power-law PageRank on the
//! web); how concentrated differs meaningfully across methods and is
//! reported as R-Table 7. Concentration matters operationally: a ranker
//! whose top-100 carries half the probability mass behaves very
//! differently in a search mixer than one with a flat tail.

/// Summary of one score vector's distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoreStats {
    /// Gini coefficient (0 = uniform, → 1 = concentrated).
    pub gini: f64,
    /// Fraction of total mass carried by the top 1% of items.
    pub top1pct_mass: f64,
    /// Fraction of total mass carried by the top 10% of items.
    pub top10pct_mass: f64,
    /// Ratio max/mean (peak dominance).
    pub max_over_mean: f64,
    /// Fraction of items scoring below 1% of the mean (the "dead tail").
    pub dead_tail_fraction: f64,
}

/// Compute [`ScoreStats`]; scores must be non-negative. Returns `None`
/// for empty or zero-mass input.
pub fn score_stats(scores: &[f64]) -> Option<ScoreStats> {
    let n = scores.len();
    if n == 0 {
        return None;
    }
    debug_assert!(scores.iter().all(|&s| s >= 0.0), "scores must be non-negative");
    let total: f64 = scores.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    // Gini over the ascending-sorted values.
    let weighted: f64 = sorted.iter().enumerate().map(|(i, &s)| (i as f64 + 1.0) * s).sum();
    let gini = (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64;

    let top_mass = |frac: f64| -> f64 {
        let k = ((n as f64 * frac).ceil() as usize).clamp(1, n);
        sorted[n - k..].iter().sum::<f64>() / total
    };
    let mean = total / n as f64;
    let dead = sorted.iter().take_while(|&&s| s < 0.01 * mean).count();

    Some(ScoreStats {
        gini,
        top1pct_mass: top_mass(0.01),
        top10pct_mass: top_mass(0.10),
        max_over_mean: sorted[n - 1] / mean,
        dead_tail_fraction: dead as f64 / n as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_scores_are_flat() {
        let s = score_stats(&[0.25; 4]).unwrap();
        assert!(s.gini.abs() < 1e-12);
        assert!((s.top10pct_mass - 0.25).abs() < 1e-12); // ceil(0.4)=1 item of 4
        assert!((s.max_over_mean - 1.0).abs() < 1e-12);
        assert_eq!(s.dead_tail_fraction, 0.0);
    }

    #[test]
    fn delta_distribution_is_maximally_concentrated() {
        let mut v = vec![0.0; 100];
        v[17] = 1.0;
        let s = score_stats(&v).unwrap();
        assert!(s.gini > 0.98);
        assert!((s.top1pct_mass - 1.0).abs() < 1e-12);
        assert!((s.max_over_mean - 100.0).abs() < 1e-9);
        assert!(s.dead_tail_fraction > 0.98);
    }

    #[test]
    fn ordering_of_concentration() {
        let flat = score_stats(&[1.0, 1.0, 1.0, 1.0]).unwrap();
        let skewed = score_stats(&[10.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(skewed.gini > flat.gini);
        assert!(skewed.top10pct_mass > flat.top10pct_mass);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(score_stats(&[]).is_none());
        assert!(score_stats(&[0.0, 0.0]).is_none());
    }
}
