//! Plain-text table rendering for the repro harness and examples.

/// A simple column-aligned ASCII table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with a caption and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                // Left-align the first column (method names), right-align
                // numeric columns.
                if i == 0 {
                    line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
                } else {
                    line.push_str(&format!("{:>width$}", cells[i], width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.headers));
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Format a metric that may be NaN.
pub fn fmt_metric(v: f64) -> String {
    if v.is_nan() {
        "n/a".into()
    } else {
        format!("{v:.4}")
    }
}

/// Format a duration in seconds adaptively.
pub fn fmt_seconds(s: f64) -> String {
    if s < 1e-3 {
        format!("{:.0}µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["method", "acc"]);
        t.row(vec!["PageRank".into(), "0.91".into()]);
        t.row(vec!["CC".into(), "0.8".into()]);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("method"));
        let lines: Vec<&str> = text.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_enforced() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(f64::NAN), "n/a");
        assert_eq!(fmt_metric(0.91237), "0.9124");
        assert_eq!(fmt_seconds(0.000002), "2µs");
        assert_eq!(fmt_seconds(0.25), "250.0ms");
        assert_eq!(fmt_seconds(2.5), "2.50s");
    }

    #[test]
    fn display_impl() {
        let t = Table::new("t", &["h"]);
        assert!(format!("{t}").contains("h"));
    }
}
