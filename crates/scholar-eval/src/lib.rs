#![warn(missing_docs)]

//! # scholar-eval — ground truth, metrics, and the experiment harness
//!
//! Everything needed to score a ranking against what the paper's
//! evaluation would have scored it against:
//!
//! * [`groundtruth`] — the three ground-truth constructions (future
//!   citations in a held-out window; award lists from planted merit;
//!   expert preference pairs) described in DESIGN.md §4.
//! * [`metrics`] — pairwise accuracy, Spearman ρ, Kendall τ-b (O(n log n)),
//!   NDCG@k, precision/recall@k, MRR, Jaccard@k, rank-biased overlap.
//! * [`significance`] — paired-bootstrap tests for metric differences.
//! * [`score_stats`] — score-distribution concentration diagnostics.
//! * [`experiment`] — runs a set of [`scholar_rank::Ranker`]s over a
//!   corpus snapshot and evaluates each against a ground truth, producing
//!   the rows of the R-Tables; includes temporal cross-validation over
//!   several cutoffs.
//! * [`tables`] / [`series`] — plain-text rendering of tables and figure
//!   series, plus machine-readable JSON for EXPERIMENTS.md.

pub mod experiment;
pub mod groundtruth;
pub mod metrics;
pub mod score_stats;
pub mod series;
pub mod significance;
pub mod tables;

pub use experiment::{evaluate_ranking, run_temporal_cv, CvRow, EvalRow, Experiment};
pub use groundtruth::GroundTruth;
pub use significance::{paired_bootstrap, BootstrapMetric, BootstrapResult};
