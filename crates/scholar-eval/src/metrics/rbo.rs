//! Rank-biased overlap (Webber, Moffat & Zobel 2010).
//!
//! Kendall τ treats a swap at rank 3 and a swap at rank 30,000 the same;
//! for comparing *rankings as users see them*, the head matters far more.
//! RBO computes a top-weighted similarity: with persistence `p`, the
//! agreement at depth `d` is weighted `p^(d-1)`, so ~`1/(1-p)` top ranks
//! carry most of the weight (`p = 0.9` ⇒ the top ~10 dominate; `p = 0.98`
//! ⇒ the top ~50).
//!
//! We implement the extrapolated point estimate RBO_EXT over a fixed
//! evaluation depth: two identical rankings score 1 regardless of depth,
//! two disjoint ones score ~0.

use scholar_rank::scores::top_k;
use std::collections::HashSet;

/// Extrapolated rank-biased overlap of two rankings, evaluated to
/// `depth`, with persistence `p ∈ (0, 1)`.
///
/// The rankings are given as score vectors over the same item universe;
/// ranks are derived by descending score with deterministic tie-breaks.
/// Returns `NaN` for empty inputs.
pub fn rbo(scores_a: &[f64], scores_b: &[f64], p: f64, depth: usize) -> f64 {
    assert_eq!(scores_a.len(), scores_b.len(), "length mismatch");
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0, 1)");
    let n = scores_a.len();
    if n == 0 || depth == 0 {
        return f64::NAN;
    }
    let depth = depth.min(n);
    let order_a = top_k(scores_a, depth);
    let order_b = top_k(scores_b, depth);

    let mut seen_a: HashSet<usize> = HashSet::with_capacity(depth);
    let mut seen_b: HashSet<usize> = HashSet::with_capacity(depth);
    let mut overlap = 0usize;
    let mut sum = 0.0f64;
    let mut weight = 1.0f64; // p^(d-1)
    let mut agreement_at_depth = 0.0;
    for d in 0..depth {
        let a = order_a[d];
        let b = order_b[d];
        if a == b {
            overlap += 1;
        } else {
            if seen_b.contains(&a) {
                overlap += 1;
            }
            if seen_a.contains(&b) {
                overlap += 1;
            }
            seen_a.insert(a);
            seen_b.insert(b);
        }
        agreement_at_depth = overlap as f64 / (d + 1) as f64;
        sum += weight * agreement_at_depth;
        weight *= p;
    }
    // RBO_EXT: the finite prefix plus the tail extrapolated at the final
    // agreement level. Σ_{d=1..k} p^{d-1} = (1 - p^k)/(1 - p); the tail
    // Σ_{d>k} p^{d-1} = p^k/(1-p).
    let pk = p.powi(depth as i32);
    (1.0 - p) * sum + pk * agreement_at_depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_rankings_score_one() {
        let s = [0.5, 0.4, 0.3, 0.2, 0.1];
        let v = rbo(&s, &s, 0.9, 5);
        assert!((v - 1.0).abs() < 1e-12, "rbo = {v}");
    }

    #[test]
    fn disjoint_heads_score_low() {
        // Ranking A puts items 0..5 on top; B puts 5..10 on top.
        let a: Vec<f64> = (0..10).map(|i| 10.0 - i as f64).collect();
        let b: Vec<f64> =
            (0..10).map(|i| if i >= 5 { 20.0 - i as f64 } else { 1.0 - i as f64 * 0.01 }).collect();
        let v = rbo(&a, &b, 0.9, 5);
        assert!(v < 0.2, "disjoint heads should score low, rbo = {v}");
    }

    #[test]
    fn head_swap_hurts_more_than_tail_swap() {
        let base: Vec<f64> = (0..20).map(|i| 20.0 - i as f64).collect();
        let mut head_swapped = base.clone();
        head_swapped.swap(0, 1);
        let mut tail_swapped = base.clone();
        tail_swapped.swap(18, 19);
        let head = rbo(&base, &head_swapped, 0.9, 20);
        let tail = rbo(&base, &tail_swapped, 0.9, 20);
        assert!(head < tail, "head swap ({head}) must cost more than tail swap ({tail})");
        assert!(tail < 1.0 + 1e-12);
    }

    #[test]
    fn symmetric() {
        let a: Vec<f64> = (0..15).map(|i| ((i * 7) % 15) as f64).collect();
        let b: Vec<f64> = (0..15).map(|i| ((i * 4) % 15) as f64).collect();
        let ab = rbo(&a, &b, 0.9, 15);
        let ba = rbo(&b, &a, 0.9, 15);
        assert!((ab - ba).abs() < 1e-12);
        assert!((0.0..=1.0).contains(&ab));
    }

    #[test]
    fn higher_p_discounts_a_good_head_with_a_bad_tail() {
        // Universe of 100 items. Ranking B agrees with A on the top item,
        // then fills its head with items from deep in A's tail. Head-heavy
        // weighting (small p) rewards the top-1 agreement; persistent
        // weighting (large p) averages in the disagreement below it.
        let a: Vec<f64> = (0..100).map(|i| 100.0 - i as f64).collect();
        let mut b = vec![0.0; 100];
        b[0] = 100.0; // agree on the champion
        for (rank, item) in (50..59).enumerate() {
            b[item] = 99.0 - rank as f64; // bogus head
        }
        let head_heavy = rbo(&a, &b, 0.5, 10);
        let deep = rbo(&a, &b, 0.95, 10);
        assert!(head_heavy > deep, "small p should forgive the bad tail: {head_heavy} vs {deep}");
    }

    #[test]
    fn degenerate_inputs() {
        assert!(rbo(&[], &[], 0.9, 10).is_nan());
        assert!(rbo(&[1.0], &[1.0], 0.9, 0).is_nan());
        let one = rbo(&[1.0], &[1.0], 0.9, 5);
        assert!((one - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn bad_p_panics() {
        rbo(&[1.0], &[1.0], 1.0, 5);
    }
}
