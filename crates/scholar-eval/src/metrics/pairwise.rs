//! Pairwise ranking accuracy — the headline metric of the reconstructed
//! evaluation (R-Table 2).
//!
//! Given ground-truth values `g` and predicted scores `p` over the same
//! items, accuracy is the fraction of item pairs with distinct ground
//! truth that the prediction orders the same way; prediction ties score
//! half credit. 0.5 is chance, 1.0 is perfect.

use srand::rngs::SmallRng;
use srand::{Rng, SeedableRng};

fn pair_credit(gi: f64, gj: f64, pi: f64, pj: f64) -> Option<f64> {
    if gi == gj {
        return None; // not an informative pair
    }
    let g_ord = gi > gj;
    Some(if pi == pj {
        0.5
    } else if (pi > pj) == g_ord {
        1.0
    } else {
        0.0
    })
}

/// Exact pairwise accuracy over *all* informative pairs — O(n²); use the
/// sampled variant above ~5k items. Returns `NaN` when no informative
/// pairs exist.
pub fn pairwise_accuracy(truth: &[f64], predicted: &[f64]) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let n = truth.len();
    let mut credit = 0.0f64;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            if let Some(c) = pair_credit(truth[i], truth[j], predicted[i], predicted[j]) {
                credit += c;
                pairs += 1;
            }
        }
    }
    if pairs == 0 {
        f64::NAN
    } else {
        credit / pairs as f64
    }
}

/// Monte-Carlo pairwise accuracy over `samples` random informative pairs
/// (deterministic given `seed`). Standard error ≈ 0.5/√samples. Returns
/// `NaN` when the items admit no informative pair.
pub fn pairwise_accuracy_sampled(
    truth: &[f64],
    predicted: &[f64],
    samples: usize,
    seed: u64,
) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    let n = truth.len();
    if n < 2 {
        return f64::NAN;
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut credit = 0.0f64;
    let mut pairs = 0usize;
    let mut attempts = 0usize;
    let max_attempts = samples.saturating_mul(20).max(1000);
    while pairs < samples && attempts < max_attempts {
        attempts += 1;
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        if i == j {
            continue;
        }
        if let Some(c) = pair_credit(truth[i], truth[j], predicted[i], predicted[j]) {
            credit += c;
            pairs += 1;
        }
    }
    if pairs == 0 {
        f64::NAN
    } else {
        credit / pairs as f64
    }
}

/// Pairwise accuracy that picks the exact algorithm below `exact_cutoff`
/// items and sampling above it.
pub fn pairwise_accuracy_auto(truth: &[f64], predicted: &[f64], seed: u64) -> f64 {
    const EXACT_CUTOFF: usize = 3000;
    const SAMPLES: usize = 200_000;
    if truth.len() <= EXACT_CUTOFF {
        pairwise_accuracy(truth, predicted)
    } else {
        pairwise_accuracy_sampled(truth, predicted, SAMPLES, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_and_inverted() {
        let g = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(pairwise_accuracy(&g, &g), 1.0);
        let inv = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(pairwise_accuracy(&g, &inv), 0.0);
    }

    #[test]
    fn constant_prediction_scores_half() {
        let g = [1.0, 2.0, 3.0];
        let p = [5.0, 5.0, 5.0];
        assert_eq!(pairwise_accuracy(&g, &p), 0.5);
    }

    #[test]
    fn ground_truth_ties_are_skipped() {
        let g = [1.0, 1.0, 2.0];
        let p = [9.0, 0.0, 5.0]; // pair (0,1) uninformative; (0,2) wrong, (1,2) right
        assert_eq!(pairwise_accuracy(&g, &p), 0.5);
    }

    #[test]
    fn all_tied_truth_is_nan() {
        assert!(pairwise_accuracy(&[1.0, 1.0], &[0.0, 1.0]).is_nan());
        assert!(pairwise_accuracy(&[], &[]).is_nan());
    }

    #[test]
    fn sampled_approximates_exact() {
        // Deterministic data, 300 items.
        let g: Vec<f64> = (0..300).map(|i| (i % 50) as f64).collect();
        let p: Vec<f64> = (0..300).map(|i| ((i * 7) % 53) as f64).collect();
        let exact = pairwise_accuracy(&g, &p);
        let sampled = pairwise_accuracy_sampled(&g, &p, 100_000, 1);
        assert!((exact - sampled).abs() < 0.01, "exact {exact}, sampled {sampled}");
    }

    #[test]
    fn sampled_is_deterministic_per_seed() {
        let g: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let p: Vec<f64> = (0..100).map(|i| ((i * 13) % 100) as f64).collect();
        let a = pairwise_accuracy_sampled(&g, &p, 1000, 7);
        let b = pairwise_accuracy_sampled(&g, &p, 1000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn auto_switches_mode() {
        let g: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(pairwise_accuracy_auto(&g, &g, 0), 1.0);
        let big: Vec<f64> = (0..4000).map(|i| i as f64).collect();
        let acc = pairwise_accuracy_auto(&big, &big, 0);
        assert!(acc > 0.999);
    }
}
