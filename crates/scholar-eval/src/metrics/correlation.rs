//! Rank and linear correlation coefficients.

use scholar_rank::scores::fractional_ranks;

/// Pearson linear correlation. `NaN` when either input is constant or
/// inputs are shorter than 2.
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        f64::NAN
    } else {
        sxy / (sxx * syy).sqrt()
    }
}

/// Spearman rank correlation (Pearson on fractional ranks, which handles
/// ties correctly).
pub fn spearman(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let rx = fractional_ranks(x);
    let ry = fractional_ranks(y);
    pearson(&rx, &ry)
}

/// Kendall τ-b rank correlation with tie correction, computed in
/// O(n log n) via Knight's algorithm (sort by x, count discordant pairs as
/// merge-sort inversions on y).
///
/// Returns `NaN` for inputs shorter than 2 or when either input is fully
/// tied.
pub fn kendall_tau_b(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    let n = x.len();
    if n < 2 {
        return f64::NAN;
    }
    // Pair and sort by (x, y).
    let mut pairs: Vec<(f64, f64)> = x.iter().copied().zip(y.iter().copied()).collect();
    pairs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    let n0 = n as f64 * (n as f64 - 1.0) / 2.0;

    // Ties in x (n1) and joint ties (n3).
    let mut n1 = 0.0f64;
    let mut n3 = 0.0f64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && pairs[j + 1].0 == pairs[i].0 {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            n1 += t * (t - 1.0) / 2.0;
            // Joint ties within the x-tie block (pairs are sorted by y there).
            let mut a = i;
            while a <= j {
                let mut b2 = a;
                while b2 < j && pairs[b2 + 1].1 == pairs[a].1 {
                    b2 += 1;
                }
                let u = (b2 - a + 1) as f64;
                n3 += u * (u - 1.0) / 2.0;
                a = b2 + 1;
            }
            i = j + 1;
        }
    }

    // Discordant pairs: inversions of the y sequence (merge sort count).
    let mut ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
    let mut buf = vec![0.0f64; n];
    let swaps = count_inversions(&mut ys, &mut buf);
    // `ys` is now fully sorted by y: count ties in y (n2).
    let mut n2 = 0.0f64;
    {
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && ys[j + 1] == ys[i] {
                j += 1;
            }
            let t = (j - i + 1) as f64;
            n2 += t * (t - 1.0) / 2.0;
            i = j + 1;
        }
    }

    let num = n0 - n1 - n2 + n3 - 2.0 * swaps as f64;
    let den = ((n0 - n1) * (n0 - n2)).sqrt();
    if den <= 0.0 {
        f64::NAN
    } else {
        num / den
    }
}

/// Merge sort counting inversions (strict `>` pairs); `v` ends sorted.
fn count_inversions(v: &mut [f64], buf: &mut [f64]) -> u64 {
    let n = v.len();
    if n <= 1 {
        return 0;
    }
    let mid = n / 2;
    let (left, right) = v.split_at_mut(mid);
    let mut inv = count_inversions(left, buf) + count_inversions(right, buf);
    // Merge with counting.
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < left.len() && j < right.len() {
        if left[i] <= right[j] {
            buf[k] = left[i];
            i += 1;
        } else {
            buf[k] = right[j];
            j += 1;
            inv += (left.len() - i) as u64;
        }
        k += 1;
    }
    while i < left.len() {
        buf[k] = left[i];
        i += 1;
        k += 1;
    }
    while j < right.len() {
        buf[k] = right[j];
        j += 1;
        k += 1;
    }
    v.copy_from_slice(&buf[..n]);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn pearson_perfect_and_inverse() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert_close(pearson(&x, &y), 1.0);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert_close(pearson(&x, &z), -1.0);
        assert!(pearson(&x, &[5.0; 4]).is_nan());
        assert!(pearson(&[1.0], &[2.0]).is_nan());
    }

    #[test]
    fn spearman_is_rank_based() {
        // Monotone but nonlinear: Spearman 1, Pearson < 1.
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.0, 8.0, 27.0, 64.0, 125.0];
        assert_close(spearman(&x, &y), 1.0);
        assert!(pearson(&x, &y) < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 2.0, 3.0];
        assert_close(spearman(&x, &y), 1.0);
    }

    #[test]
    fn kendall_known_values() {
        // Perfect agreement / disagreement.
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_close(kendall_tau_b(&x, &x), 1.0);
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_close(kendall_tau_b(&x, &rev), -1.0);
        // Classic small example: x = 1..4, y = (1, 3, 2, 4):
        // 5 concordant, 1 discordant => tau = 4/6.
        let y = [1.0, 3.0, 2.0, 4.0];
        assert_close(kendall_tau_b(&x, &y), 4.0 / 6.0);
    }

    #[test]
    fn kendall_with_ties_matches_reference() {
        // Reference value computed with scipy.stats.kendalltau:
        // x = [1,2,2,3], y = [1,2,3,4] -> tau_b ≈ 0.9128709291752769.
        let x = [1.0, 2.0, 2.0, 3.0];
        let y = [1.0, 2.0, 3.0, 4.0];
        let tau = kendall_tau_b(&x, &y);
        assert!((tau - 0.912_870_929_175_276_9).abs() < 1e-12, "tau {tau}");
    }

    #[test]
    fn kendall_nan_cases() {
        assert!(kendall_tau_b(&[1.0], &[1.0]).is_nan());
        assert!(kendall_tau_b(&[1.0, 1.0], &[1.0, 2.0]).is_nan());
    }

    #[test]
    fn kendall_matches_naive_on_random_data() {
        // O(n²) reference implementation.
        fn naive_tau_b(x: &[f64], y: &[f64]) -> f64 {
            let n = x.len();
            let (mut conc, mut disc, mut tx, mut ty) = (0f64, 0f64, 0f64, 0f64);
            for i in 0..n {
                for j in (i + 1)..n {
                    let dx = x[i] - x[j];
                    let dy = y[i] - y[j];
                    if dx == 0.0 && dy == 0.0 {
                        // joint tie: counts in both tx and ty
                        tx += 1.0;
                        ty += 1.0;
                    } else if dx == 0.0 {
                        tx += 1.0;
                    } else if dy == 0.0 {
                        ty += 1.0;
                    } else if dx * dy > 0.0 {
                        conc += 1.0;
                    } else {
                        disc += 1.0;
                    }
                }
            }
            let n0 = n as f64 * (n as f64 - 1.0) / 2.0;
            (conc - disc) / ((n0 - tx) * (n0 - ty)).sqrt()
        }
        // Deterministic pseudo-random data with ties.
        let mut state = 0xdeadbeefu64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            ((state >> 32) % 10) as f64
        };
        let x: Vec<f64> = (0..200).map(|_| next()).collect();
        let y: Vec<f64> = (0..200).map(|_| next()).collect();
        let fast = kendall_tau_b(&x, &y);
        let slow = naive_tau_b(&x, &y);
        assert!((fast - slow).abs() < 1e-9, "fast {fast}, slow {slow}");
    }

    #[test]
    fn inversion_count_sorts() {
        let mut v = vec![3.0, 1.0, 2.0];
        let mut buf = vec![0.0; 3];
        let inv = count_inversions(&mut v, &mut buf);
        assert_eq!(inv, 2);
        assert_eq!(v, vec![1.0, 2.0, 3.0]);
    }
}
