//! Normalized discounted cumulative gain.

use scholar_rank::scores::top_k;

/// NDCG@k of `predicted` against graded non-negative relevance `truth`.
///
/// `DCG@k = Σ_{i<k} rel(item at predicted rank i) / log2(i + 2)`, divided
/// by the ideal DCG@k. Returns `NaN` when the ideal DCG is zero (no
/// relevant item exists).
pub fn ndcg_at_k(truth: &[f64], predicted: &[f64], k: usize) -> f64 {
    assert_eq!(truth.len(), predicted.len(), "length mismatch");
    debug_assert!(truth.iter().all(|&r| r >= 0.0), "relevance must be non-negative");
    let k = k.min(truth.len());
    if k == 0 {
        return f64::NAN;
    }
    let discount = |i: usize| 1.0 / ((i + 2) as f64).log2();
    let dcg: f64 = top_k(predicted, k)
        .into_iter()
        .enumerate()
        .map(|(i, item)| truth[item] * discount(i))
        .sum();
    let ideal: f64 =
        top_k(truth, k).into_iter().enumerate().map(|(i, item)| truth[item] * discount(i)).sum();
    if ideal <= 0.0 {
        f64::NAN
    } else {
        dcg / ideal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_scores_one() {
        let truth = [3.0, 2.0, 1.0, 0.0];
        assert!((ndcg_at_k(&truth, &truth, 4) - 1.0).abs() < 1e-12);
        assert!((ndcg_at_k(&truth, &truth, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_ranking_scores_low() {
        let truth = [3.0, 0.0, 0.0, 0.0];
        let pred = [0.0, 1.0, 2.0, 3.0]; // relevant item ranked last
        let ndcg = ndcg_at_k(&truth, &pred, 4);
        // DCG = 3/log2(5), ideal = 3/log2(2) = 3.
        let expected = (3.0 / 5.0f64.log2()) / 3.0;
        assert!((ndcg - expected).abs() < 1e-12);
    }

    #[test]
    fn relevant_item_outside_k_scores_zero() {
        let truth = [1.0, 0.0, 0.0];
        let pred = [0.0, 2.0, 1.0];
        assert_eq!(ndcg_at_k(&truth, &pred, 2), 0.0);
    }

    #[test]
    fn no_relevance_is_nan() {
        assert!(ndcg_at_k(&[0.0, 0.0], &[1.0, 2.0], 2).is_nan());
        assert!(ndcg_at_k(&[], &[], 5).is_nan());
    }

    #[test]
    fn k_larger_than_n_clamps() {
        let truth = [1.0, 2.0];
        assert!((ndcg_at_k(&truth, &truth, 100) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn graded_relevance_matters() {
        // Swapping a high-grade and low-grade item hurts more than swapping
        // two low-grade items.
        let truth = [10.0, 1.0, 0.9, 0.0];
        let swap_high = [1.0, 10.0, 0.9, 0.0]; // swaps ranks of items 0,1
        let swap_low = [10.0, 0.9, 1.0, 0.0]; // swaps ranks of items 1,2
        let a = ndcg_at_k(&truth, &swap_high, 4);
        let b = ndcg_at_k(&truth, &swap_low, 4);
        assert!(a < b);
    }
}
