//! Ranking-quality metrics.

pub mod correlation;
pub mod ndcg;
pub mod pairwise;
pub mod rbo;
pub mod topk;

pub use correlation::{kendall_tau_b, pearson, spearman};
pub use ndcg::ndcg_at_k;
pub use pairwise::{pairwise_accuracy, pairwise_accuracy_auto, pairwise_accuracy_sampled};
pub use rbo::rbo;
pub use topk::{jaccard_at_k, mrr, precision_at_k, recall_at_k};
