//! Set-based top-k metrics: precision@k, recall@k, MRR, Jaccard@k.

use scholar_rank::scores::top_k;
use std::collections::HashSet;

/// Precision@k: fraction of the predicted top-k that is in the relevant
/// set. `NaN` when `k == 0` or there are no items.
pub fn precision_at_k(relevant: &HashSet<usize>, predicted: &[f64], k: usize) -> f64 {
    let k = k.min(predicted.len());
    if k == 0 {
        return f64::NAN;
    }
    let hits = top_k(predicted, k).into_iter().filter(|i| relevant.contains(i)).count();
    hits as f64 / k as f64
}

/// Recall@k: fraction of the relevant set found in the predicted top-k.
/// `NaN` when the relevant set is empty.
pub fn recall_at_k(relevant: &HashSet<usize>, predicted: &[f64], k: usize) -> f64 {
    if relevant.is_empty() {
        return f64::NAN;
    }
    let k = k.min(predicted.len());
    let hits = top_k(predicted, k).into_iter().filter(|i| relevant.contains(i)).count();
    hits as f64 / relevant.len() as f64
}

/// Mean reciprocal rank of the relevant items: mean over the relevant set
/// of `1 / rank(item)` under the prediction. This grades *every* relevant
/// item's position, not only the first hit, which suits award-list ground
/// truth where all awardees matter. `NaN` when the relevant set is empty.
pub fn mrr(relevant: &HashSet<usize>, predicted: &[f64]) -> f64 {
    if relevant.is_empty() {
        return f64::NAN;
    }
    let order = top_k(predicted, predicted.len());
    let mut total = 0.0;
    let mut found = 0usize;
    for (rank0, item) in order.into_iter().enumerate() {
        if relevant.contains(&item) {
            total += 1.0 / (rank0 + 1) as f64;
            found += 1;
        }
    }
    debug_assert_eq!(found, relevant.len(), "relevant ids must index predicted");
    total / relevant.len() as f64
}

/// Jaccard similarity between the top-k sets of two rankings — the
/// rank-stability measure used by the robustness experiment (R-Table 4
/// companion). `NaN` when `k == 0` or either ranking is empty.
pub fn jaccard_at_k(a: &[f64], b: &[f64], k: usize) -> f64 {
    if k == 0 || a.is_empty() || b.is_empty() {
        return f64::NAN;
    }
    let sa: HashSet<usize> = top_k(a, k).into_iter().collect();
    let sb: HashSet<usize> = top_k(b, k).into_iter().collect();
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(ids: &[usize]) -> HashSet<usize> {
        ids.iter().copied().collect()
    }

    #[test]
    fn precision_basics() {
        let relevant = rel(&[0, 1]);
        let pred = [0.9, 0.1, 0.5, 0.3]; // top-2 = {0, 2}
        assert_eq!(precision_at_k(&relevant, &pred, 2), 0.5);
        assert_eq!(precision_at_k(&relevant, &pred, 4), 0.5);
        assert!(precision_at_k(&relevant, &pred, 0).is_nan());
    }

    #[test]
    fn recall_basics() {
        let relevant = rel(&[0, 1]);
        let pred = [0.9, 0.1, 0.5, 0.3];
        assert_eq!(recall_at_k(&relevant, &pred, 2), 0.5);
        assert_eq!(recall_at_k(&relevant, &pred, 4), 1.0);
        assert!(recall_at_k(&rel(&[]), &pred, 2).is_nan());
    }

    #[test]
    fn mrr_grades_all_relevant_items() {
        let pred = [0.9, 0.8, 0.7, 0.6];
        // Relevant at ranks 1 and 3: MRR = (1/1 + 1/3)/2 = 2/3.
        let m = mrr(&rel(&[0, 2]), &pred);
        assert!((m - 2.0 / 3.0).abs() < 1e-12);
        // All relevant at the top: MRR is maximal for that set size.
        let m_top = mrr(&rel(&[0, 1]), &pred);
        assert!((m_top - 0.75).abs() < 1e-12);
        assert!(m_top > m);
        assert!(mrr(&rel(&[]), &pred).is_nan());
    }

    #[test]
    fn jaccard_cases() {
        let a = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(jaccard_at_k(&a, &a, 2), 1.0);
        let b = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(jaccard_at_k(&a, &b, 2), 0.0);
        // top-3: {0,1,2} vs {3,2,1} -> intersection 2, union 4.
        assert_eq!(jaccard_at_k(&a, &b, 3), 0.5);
        assert!(jaccard_at_k(&a, &b, 0).is_nan());
        assert!(jaccard_at_k(&[], &[], 3).is_nan());
    }
}
