//! The experiment harness: run rankers, score them, produce table rows.

use crate::groundtruth::GroundTruth;
use crate::metrics;
use scholar_corpus::Corpus;
use scholar_rank::{RankContext, Ranker, SolveTelemetry};
use std::collections::HashSet;
use std::time::Instant;

/// One evaluated `(ranker, ground truth)` cell — a row of an R-Table.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Ranker display name.
    pub method: String,
    /// Pairwise accuracy against the graded truth (0.5 = chance).
    pub pairwise_accuracy: f64,
    /// Spearman ρ against the graded truth.
    pub spearman: f64,
    /// Kendall τ-b against the graded truth.
    pub kendall: f64,
    /// NDCG@50 against the graded truth.
    pub ndcg_at_50: f64,
    /// Wall-clock seconds spent producing the ranking.
    pub seconds: f64,
    /// Solver telemetry of the ranking (iterations, convergence, build vs.
    /// solve wall time, memo hits). Default (zeroed) when the row was
    /// scored from a bare score vector.
    pub telemetry: SolveTelemetry,
}

/// Score one ranking against a graded ground truth.
pub fn evaluate_ranking(
    truth: &GroundTruth,
    scores: &[f64],
    method: &str,
    seconds: f64,
) -> EvalRow {
    assert_eq!(truth.values.len(), scores.len(), "truth/scores length mismatch");
    EvalRow {
        method: method.to_owned(),
        pairwise_accuracy: metrics::pairwise_accuracy_auto(&truth.values, scores, 0xfeed),
        spearman: metrics::spearman(&truth.values, scores),
        kendall: metrics::kendall_tau_b(&truth.values, scores),
        ndcg_at_50: metrics::ndcg_at_k(&truth.values, scores, 50),
        seconds,
        telemetry: SolveTelemetry::default(),
    }
}

/// A batch experiment: a corpus, a graded ground truth over its articles,
/// and a set of rankers to compare.
pub struct Experiment<'a> {
    /// The (snapshot) corpus every ranker sees.
    pub corpus: &'a Corpus,
    /// The ground truth to score against.
    pub truth: &'a GroundTruth,
}

impl<'a> Experiment<'a> {
    /// Run every ranker and produce one row each, in input order. All
    /// rankers share one [`RankContext`], so the citation graph and its
    /// derived operators are built exactly once for the whole suite.
    pub fn run(&self, rankers: &[Box<dyn Ranker>]) -> Vec<EvalRow> {
        self.run_inner(rankers, None)
    }

    /// Like [`Experiment::run`] but restricted to a subset of articles
    /// (e.g. only recent ones for the cold-start figure): metrics are
    /// computed on the gathered sub-vectors.
    pub fn run_on_subset(&self, rankers: &[Box<dyn Ranker>], keep: &[usize]) -> Vec<EvalRow> {
        self.run_inner(rankers, Some(keep))
    }

    /// Shared body of [`Experiment::run`] and [`Experiment::run_on_subset`]:
    /// one prepared context, full rankings, optional gather to a subset.
    fn run_inner(&self, rankers: &[Box<dyn Ranker>], keep: Option<&[usize]>) -> Vec<EvalRow> {
        let ctx = RankContext::new(self.corpus);
        let sub_truth = keep.map(|keep| GroundTruth {
            values: keep.iter().map(|&i| self.truth.values[i]).collect(),
            description: format!("{} (subset of {})", self.truth.description, keep.len()),
        });
        let truth = sub_truth.as_ref().unwrap_or(self.truth);
        rankers
            .iter()
            .map(|r| {
                let start = Instant::now();
                let out = r.solve_ctx(&ctx);
                let seconds = start.elapsed().as_secs_f64();
                let scores = match keep {
                    None => out.scores,
                    Some(keep) => keep.iter().map(|&i| out.scores[i]).collect(),
                };
                let mut row = evaluate_ranking(truth, &scores, &r.name(), seconds);
                row.telemetry = out.telemetry;
                row
            })
            .collect()
    }
}

/// Award-list evaluation: precision@k, NDCG-style MRR, and recall@k of an
/// award set under each ranker (R-Table 3 rows).
#[derive(Debug, Clone)]
pub struct AwardRow {
    /// Ranker display name.
    pub method: String,
    /// Precision@k.
    pub precision_at_k: f64,
    /// Recall@k.
    pub recall_at_k: f64,
    /// Mean reciprocal rank of award articles.
    pub mrr: f64,
}

/// Evaluate rankers against an award set.
pub fn run_award_experiment(
    corpus: &Corpus,
    awards: &HashSet<usize>,
    rankers: &[Box<dyn Ranker>],
    k: usize,
) -> Vec<AwardRow> {
    let ctx = RankContext::new(corpus);
    rankers
        .iter()
        .map(|r| {
            let scores = r.rank_ctx(&ctx);
            AwardRow {
                method: r.name(),
                precision_at_k: metrics::precision_at_k(awards, &scores, k),
                recall_at_k: metrics::recall_at_k(awards, &scores, k),
                mrr: metrics::mrr(awards, &scores),
            }
        })
        .collect()
}

/// One method's aggregate over a temporal cross-validation: the same
/// evaluation repeated at several cutoff years, reported as mean ± std.
#[derive(Debug, Clone)]
pub struct CvRow {
    /// Ranker display name.
    pub method: String,
    /// Mean pairwise accuracy across cutoffs.
    pub mean_pairwise: f64,
    /// Population standard deviation of pairwise accuracy.
    pub std_pairwise: f64,
    /// Mean Spearman ρ across cutoffs.
    pub mean_spearman: f64,
    /// Population standard deviation of Spearman ρ.
    pub std_spearman: f64,
    /// Number of cutoffs evaluated.
    pub folds: usize,
}

fn mean_std(values: &[f64]) -> (f64, f64) {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = finite.len() as f64;
    let mean = finite.iter().sum::<f64>() / n;
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Temporal cross-validation: evaluate every ranker at several timeline
/// cutoffs (fractions of the year span) against the future-citation
/// ground truth, and aggregate per method. A single 80% split (R-Table 2)
/// can flatter a method that happens to fit that era; the spread across
/// cutoffs is the robustness check.
pub fn run_temporal_cv(
    corpus: &scholar_corpus::Corpus,
    rankers: &[Box<dyn Ranker>],
    cutoff_fracs: &[f64],
    window_years: i32,
) -> Vec<CvRow> {
    assert!(!cutoff_fracs.is_empty(), "need at least one cutoff");
    let (first, last) = corpus.year_range().expect("non-empty corpus");
    let mut pairwise: Vec<Vec<f64>> = vec![Vec::new(); rankers.len()];
    let mut spearman: Vec<Vec<f64>> = vec![Vec::new(); rankers.len()];
    for &frac in cutoff_fracs {
        assert!((0.0..=1.0).contains(&frac), "cutoff fraction must be in [0, 1]");
        let cutoff = first + ((last - first) as f64 * frac).round() as i32;
        let snap = scholar_corpus::snapshot_until(corpus, cutoff);
        if snap.corpus.num_articles() < 10 {
            continue;
        }
        let truth = crate::groundtruth::future_citations(corpus, &snap, window_years);
        let ctx = RankContext::new(&snap.corpus);
        for (ri, ranker) in rankers.iter().enumerate() {
            let scores = ranker.rank_ctx(&ctx);
            pairwise[ri].push(metrics::pairwise_accuracy_auto(&truth.values, &scores, 0xcb));
            spearman[ri].push(metrics::spearman(&truth.values, &scores));
        }
    }
    rankers
        .iter()
        .enumerate()
        .map(|(ri, ranker)| {
            let (mp, sp) = mean_std(&pairwise[ri]);
            let (ms, ss) = mean_std(&spearman[ri]);
            CvRow {
                method: ranker.name(),
                mean_pairwise: mp,
                std_pairwise: sp,
                mean_spearman: ms,
                std_spearman: ss,
                folds: pairwise[ri].len(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::groundtruth::{future_citations, planted_merit};
    use scholar_corpus::generator::Preset;
    use scholar_corpus::snapshot_until;
    use scholar_rank::{CitationCount, PageRank};

    #[test]
    fn run_produces_one_row_per_ranker() {
        let c = Preset::Tiny.generate(3);
        let truth = planted_merit(&c).unwrap();
        let exp = Experiment { corpus: &c, truth: &truth };
        let rankers: Vec<Box<dyn Ranker>> =
            vec![Box::new(CitationCount), Box::new(PageRank::default())];
        let rows = exp.run(&rankers);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].method, "CitCount");
        for row in &rows {
            assert!(row.pairwise_accuracy > 0.4, "{}: {}", row.method, row.pairwise_accuracy);
            assert!(row.seconds >= 0.0);
            assert!(row.kendall.abs() <= 1.0);
        }
    }

    #[test]
    fn future_citation_truth_favors_real_signal() {
        // Sanity: citation count at the snapshot should beat random at
        // predicting future citations on the generated corpus.
        let c = Preset::Tiny.generate(1);
        let cutoff = {
            let (lo, hi) = c.year_range().unwrap();
            lo + ((hi - lo) as f64 * 0.8) as i32
        };
        let snap = snapshot_until(&c, cutoff);
        let truth = future_citations(&c, &snap, 5);
        let exp = Experiment { corpus: &snap.corpus, truth: &truth };
        let rankers: Vec<Box<dyn Ranker>> = vec![Box::new(CitationCount)];
        let rows = exp.run(&rankers);
        assert!(
            rows[0].pairwise_accuracy > 0.6,
            "citation count should predict future citations: {}",
            rows[0].pairwise_accuracy
        );
    }

    #[test]
    fn subset_evaluation_restricts() {
        let c = Preset::Tiny.generate(3);
        let truth = planted_merit(&c).unwrap();
        let exp = Experiment { corpus: &c, truth: &truth };
        let rankers: Vec<Box<dyn Ranker>> = vec![Box::new(CitationCount)];
        let keep: Vec<usize> = (0..c.num_articles()).step_by(3).collect();
        let rows = exp.run_on_subset(&rankers, &keep);
        assert_eq!(rows.len(), 1);
        assert!(rows[0].pairwise_accuracy.is_finite());
    }

    #[test]
    fn temporal_cv_aggregates_sanely() {
        let c = Preset::Tiny.generate(2);
        let rankers: Vec<Box<dyn Ranker>> =
            vec![Box::new(CitationCount), Box::new(PageRank::default())];
        let rows = run_temporal_cv(&c, &rankers, &[0.6, 0.7, 0.8], 5);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.folds, 3);
            assert!(row.mean_pairwise > 0.5, "{}: {}", row.method, row.mean_pairwise);
            assert!(row.std_pairwise >= 0.0 && row.std_pairwise < 0.2);
            assert!(row.mean_spearman.is_finite());
        }
    }

    #[test]
    fn mean_std_helper() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-12);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (m2, _) = mean_std(&[f64::NAN, 4.0]);
        assert_eq!(m2, 4.0);
        let (m3, s3) = mean_std(&[]);
        assert!(m3.is_nan() && s3.is_nan());
    }

    #[test]
    fn award_experiment_rows() {
        let c = Preset::Tiny.generate(4);
        let awards = crate::groundtruth::award_set(&c, 5, 0.05);
        let rankers: Vec<Box<dyn Ranker>> =
            vec![Box::new(CitationCount), Box::new(PageRank::default())];
        let rows = run_award_experiment(&c, &awards, &rankers, 20);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.precision_at_k));
            assert!((0.0..=1.0).contains(&row.recall_at_k));
            assert!(row.mrr > 0.0);
        }
    }
}
