#![warn(missing_docs)]

//! # sjson — minimal JSON for the scholar stack
//!
//! A small, dependency-free JSON layer: a recursive-descent parser with
//! line/column error reporting, a compact writer, and a pretty writer.
//! It covers exactly what the workspace needs — corpus JSONL records,
//! partial configuration files, and machine-readable CLI/bench output —
//! with a tree-model [`Value`] and ergonomic accessors.
//!
//! Object key order is preserved (insertion order), which keeps emitted
//! JSON stable and diffs readable.

use std::fmt;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`, like JavaScript).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an `i64`, if it is integral and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.is_finite() => {
                if *n >= i64::MIN as f64 && *n <= i64::MAX as f64 {
                    Some(*n as i64)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The number as a `u64`, if it is integral and non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self.as_i64() {
            Some(n) if n >= 0 => Some(n as u64),
            _ => None,
        }
    }

    /// The number as a `usize`, if it is integral and non-negative.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|n| n as usize)
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// `true` if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Build a number from a `u64` only if it survives the `f64` storage
    /// representation exactly; `None` when the value would be rounded
    /// (any integer above 2^53 that is not itself representable). This is
    /// the checked alternative to the lossy `From<u64>` conversion for
    /// callers emitting identifiers or counters that must round-trip.
    pub fn from_u64_exact(n: u64) -> Option<Value> {
        let f = n as f64;
        // Guard the cast-back against saturation: u64::MAX rounds up to
        // 2^64 as f64, and `2^64 as u64` saturates back to u64::MAX,
        // which would fake an exact round-trip.
        (f < u64::MAX as f64 && f as u64 == n).then_some(Value::Number(f))
    }

    /// Serialize compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        write_compact(self, &mut out);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}
impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<i32> for Value {
    fn from(n: i32) -> Self {
        Value::Number(n as f64)
    }
}
impl From<u64> for Value {
    /// Lossy above 2^53: like JavaScript, numbers are stored as `f64`,
    /// so integers beyond `2^53` round to the nearest representable
    /// double (e.g. `2^53 + 1` becomes `2^53`). Use
    /// [`Value::from_u64_exact`] when silent rounding is unacceptable.
    fn from(n: u64) -> Self {
        Value::Number(n as f64)
    }
}
impl From<usize> for Value {
    /// Lossy above 2^53, like `From<u64>` — see [`Value::from_u64_exact`].
    fn from(n: usize) -> Self {
        Value::Number(n as f64)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}
impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Self {
        Value::Array(items)
    }
}

/// Convenience builder for objects with preserved key order.
#[derive(Debug, Default, Clone)]
pub struct ObjectBuilder {
    pairs: Vec<(String, Value)>,
}

impl ObjectBuilder {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a key/value pair.
    pub fn field(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.pairs.push((key.to_string(), value.into()));
        self
    }

    /// Finish into a [`Value::Object`].
    pub fn build(self) -> Value {
        Value::Object(self.pairs)
    }
}

/// A parse error with 1-based position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// 1-based line of the offending byte.
    pub line: usize,
    /// 1-based column of the offending byte.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at line {} column {}", self.message, self.line, self.column)
    }
}

impl std::error::Error for Error {}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0, depth: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos < p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        let (mut line, mut column) = (1, 1);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error { line, column, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("maximum nesting depth exceeded"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected '{word}')")))
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require \uXXXX low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(cp)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unpaired low surrogate"));
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("control character in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8 by
                    // construction since it came from &str).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (digit required after '.')"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("invalid number (digit required in exponent)"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| self.err("number out of range"))
    }
}

/// Escape and quote `s` as a JSON string into `out`.
pub fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's `null` convention.
        out.push_str("null");
    } else if n == 0.0 && n.is_sign_negative() {
        // The integer fast path below would cast -0.0 to 0 and drop the
        // sign bit; emit it explicitly so -0.0 round-trips.
        out.push_str("-0.0");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        // Rust's shortest-roundtrip Display keeps full precision.
        out.push_str(&format!("{n}"));
    }
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_in);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(val, indent + 1, out);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Number(42.0));
        assert_eq!(parse("-3.5e2").unwrap(), Value::Number(-350.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::String("hi".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2, {"b": null}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn preserves_key_order() {
        let v = parse(r#"{"z": 1, "a": 2, "m": 3}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let original = "line1\nline2\ttab \"quote\" back\\slash \u{0001} ünïcode 🎓";
        let mut enc = String::new();
        write_escaped(original, &mut enc);
        let back = parse(&enc).unwrap();
        assert_eq!(back.as_str(), Some(original));
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é""#).unwrap().as_str(), Some("é"));
        assert_eq!(parse(r#""🎓""#).unwrap().as_str(), Some("🎓"));
        assert!(parse(r#""\ud83c""#).is_err());
        assert!(parse(r#""\udf93""#).is_err());
    }

    #[test]
    fn error_reports_line_and_column() {
        let err = parse("{\"a\": 1,\n\"b\": }").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_trailing_garbage_and_malformed_input() {
        assert!(parse("{} extra").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("01").is_err());
        assert!(parse("1.").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(1000) + &"]".repeat(1000);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn numbers_roundtrip_precisely() {
        for &x in &[0.1, 1.0 / 3.0, 1e-300, 123_456_789.123_456_79, -0.0, 1e15 + 1.0] {
            let s = Value::Number(x).to_string_compact();
            let back = parse(&s).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{x} serialized as {s}");
        }
    }

    #[test]
    fn integers_serialize_without_fraction() {
        assert_eq!(Value::Number(42.0).to_string_compact(), "42");
        assert_eq!(Value::Number(-7.0).to_string_compact(), "-7");
        assert_eq!(Value::from(3usize).to_string_compact(), "3");
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let s = Value::Number(-0.0).to_string_compact();
        assert_eq!(s, "-0.0");
        let back = parse(&s).unwrap().as_f64().unwrap();
        assert_eq!(back, 0.0);
        assert!(back.is_sign_negative(), "-0.0 must round-trip with its sign bit");
        // And plain zero stays unsigned.
        assert_eq!(Value::Number(0.0).to_string_compact(), "0");
    }

    #[test]
    fn u64_exactness_boundary_at_2_53() {
        let exact = 1u64 << 53; // 9007199254740992: representable
        let inexact = exact + 1; // 9007199254740993: rounds to 2^53
        let below = exact - 1; // largest integer where all are exact

        for n in [below, exact] {
            let v = Value::from_u64_exact(n).expect("representable");
            let s = v.to_string_compact();
            assert_eq!(parse(&s).unwrap().as_u64(), Some(n), "{n} via {s}");
        }
        assert_eq!(Value::from_u64_exact(inexact), None);
        assert_eq!(Value::from_u64_exact(u64::MAX), None);

        // The blanket From<u64> is documented lossy: 2^53 + 1 rounds.
        let lossy = Value::from(inexact);
        assert_eq!(lossy.as_u64(), Some(exact), "From<u64> rounds to nearest double");
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_roundtrip() {
        // U+1F393 (🎓) spelled as the surrogate pair 🎓.
        let v = parse("\"\\ud83c\\udf93 graduation\"").unwrap();
        assert_eq!(v.as_str(), Some("\u{1F393} graduation"));
        // The writer emits raw UTF-8, which must parse back identically.
        let re = parse(&v.to_string_compact()).unwrap();
        assert_eq!(re, v);
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Value::Number(f64::NAN).to_string_compact(), "null");
        assert_eq!(Value::Number(f64::INFINITY).to_string_compact(), "null");
    }

    #[test]
    fn compact_roundtrip() {
        let src = r#"{"id":"a1","year":1995,"refs":["a0"],"merit":0.25,"ok":true}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string_compact(), src);
    }

    #[test]
    fn pretty_output_is_parseable_and_indented() {
        let v = parse(r#"{"a": [1, 2], "b": {"c": true}}"#).unwrap();
        let pretty = v.to_string_pretty();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn object_builder_builds_in_order() {
        let v = ObjectBuilder::new()
            .field("rank", 1usize)
            .field("id", "a0")
            .field("score", 0.5)
            .build();
        assert_eq!(v.to_string_compact(), r#"{"rank":1,"id":"a0","score":0.5}"#);
    }

    #[test]
    fn integer_accessors() {
        let v = parse(r#"{"n": 7, "f": 7.5, "neg": -2}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("n").unwrap().as_usize(), Some(7));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("neg").unwrap().as_i64(), Some(-2));
        assert_eq!(v.get("neg").unwrap().as_u64(), None);
    }
}
