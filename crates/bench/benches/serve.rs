//! Serving-layer benchmark: HTTP throughput and client-observed latency
//! against a live `scholar-serve` instance, then the hot-swap guarantee
//! under load — while the reindexer publishes new generations, every
//! request must succeed and the published index must stay bit-identical
//! to a fresh build from the same `(corpus, scores)`.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench serve
//! ```
//!
//! Besides the human-readable report, writes `BENCH_serve.json` at the
//! repository root so the numbers are machine-checkable.

use scholar::corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar::serve::{serve, Metrics, Reindexer, ScoreIndex, ServeConfig, TopQuery};
use scholar::{Preset, QRankConfig};
use scholar_bench::{smoke_mode, SEED};
use scholar_loadgen::{LoadConfig, StatusRanges};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking request; returns (status, latency). Panics on transport
/// errors — a dropped response is exactly what this bench must rule out.
fn request(addr: SocketAddr, target: &str) -> (u16, Duration) {
    let t0 = Instant::now();
    let mut s = TcpStream::connect(addr).expect("connect");
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: bench\r\n\r\n").as_bytes())
        .expect("write request");
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let took = t0.elapsed();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("torn response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
    sjson::parse(body).unwrap_or_else(|e| panic!("torn JSON body {body:?}: {e:?}"));
    (status, took)
}

fn batch(i: usize) -> Vec<Article> {
    vec![Article {
        id: ArticleId(0),
        title: format!("bench-batch-{i}"),
        year: 2012,
        venue: VenueId(0),
        authors: vec![AuthorId(0)],
        references: vec![ArticleId(i as u32), ArticleId(2 * i as u32 + 1)],
        merit: None,
    }]
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) = if smoke { (Preset::Tiny, "tiny") } else { (Preset::AanLike, "aan_like") };
    let corpus = preset.generate(SEED);
    let n = corpus.num_articles();
    // Keep-alive clients sustain tens of thousands of requests per
    // second, so the full run sizes the request count for a measurement
    // window of a second or two rather than a fixed per-client count.
    let (requests_per_client, clients, swap_batches) =
        if smoke { (40, 2, 1) } else { (50_000, 2, 3) };

    println!(
        "serving {name} ({n} articles): {clients} clients x {requests_per_client} requests, \
         then {swap_batches} hot swaps under load\n"
    );

    let metrics = Arc::new(Metrics::new());
    let swap_metrics = Arc::clone(&metrics);
    let (shared, reindexer) =
        Reindexer::start(QRankConfig::default(), corpus, move |_| swap_metrics.record_swap());
    let config = ServeConfig { workers: 2, ..Default::default() };
    let server = serve(Arc::clone(&shared), Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();

    // --- Phase 1: steady-state throughput and latency. ------------------
    // Keep-alive clients through the seeded closed-loop harness: this is
    // the request mix the event-loop backend is built for (persistent
    // connections, pre-rendered fragments, response cache), and the
    // number BENCH_serve.json tracks across PRs.
    let targets: Vec<String> = vec![
        "/top?k=10".to_string(),
        "/top?k=25&year_min=2005".to_string(),
        "/article/17".to_string(),
        "/article/36".to_string(),
    ];
    let steady = scholar_loadgen::run(&LoadConfig {
        addr,
        connections: clients,
        requests: (clients * requests_per_client) as u64,
        seed: SEED,
        keep_alive: true,
        targets,
        accept: StatusRanges::ok_or_not_found(),
    })
    .expect("steady run");
    assert_eq!(steady.completed, (clients * requests_per_client) as u64);
    assert_eq!(steady.violations, 0, "bad statuses: {:?}", steady.violation_samples);
    assert_eq!(steady.transport_errors, 0, "torn responses in steady state");
    let total = steady.completed as usize;
    let throughput = steady.throughput_rps();
    let p50 = steady.hist.percentile(0.50);
    let p99 = steady.hist.percentile(0.99);
    println!(
        "steady state: {total} requests in {:.2}s = {throughput:.0} req/s",
        steady.elapsed.as_secs_f64()
    );
    println!("latency: p50 {p50}us, p99 {p99}us");

    // --- Phase 2: hot swaps under load. ---------------------------------
    let gen_before = shared.load().generation();
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer: Vec<_> = (0..clients)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                    let (status, _) = request(addr, "/top?k=10");
                    assert_eq!(status, 200, "request failed during swap");
                    served += 1;
                }
                served
            })
        })
        .collect();
    for b in 0..swap_batches {
        reindexer.submit(batch(b)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        while reindexer.batches_published() < (b + 1) as u64 {
            assert!(Instant::now() < deadline, "swap {b} never published");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let swap_requests: u64 = hammer.into_iter().map(|h| h.join().expect("hammer panicked")).sum();
    let gen_after = shared.load().generation();
    assert_eq!(gen_after, gen_before + swap_batches as u64, "every swap must publish");
    assert!(swap_requests > 0, "no requests landed during the swap phase");

    // Drift: the index the swaps published must answer exactly like a
    // fresh build over the same corpus + scores — all ranks, all ties.
    let published = shared.load();
    let fresh = ScoreIndex::build(
        Arc::new(published.corpus().as_ref().clone()),
        published.scores().to_vec(),
    );
    let q = TopQuery { k: published.num_articles(), ..Default::default() };
    let drift = published.top(&q).iter().zip(&fresh.top(&q)).filter(|(a, b)| a != b).count();
    assert_eq!(drift, 0, "published index drifted from fresh build in {drift} positions");
    println!("hot swap: {swap_requests} requests over {swap_batches} swaps, 0 failures, drift 0");

    drop(server);
    reindexer.shutdown();

    if smoke {
        println!("\n(smoke mode: skipped BENCH_serve.json)");
        return;
    }

    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", n)
        .field("clients", clients)
        .field("requests", total)
        .field("throughput_req_per_sec", throughput)
        .field("latency_p50_us", p50 as i64)
        .field("latency_p99_us", p99 as i64)
        .field("swap_batches", swap_batches)
        .field("swap_requests", swap_requests as i64)
        .field("swap_failures", 0)
        .field("swap_drift_positions", 0)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
