//! Criterion scalability benchmarks (R-Fig 4 companion): ranking cost as
//! the corpus grows, and thread scaling of the article walk.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scholar::corpus::CorpusGenerator;
use scholar::rank::{PageRankConfig, TwprConfig};
use scholar::{GeneratorConfig, PageRank, Preset, Ranker, TimeWeightedPageRank};
use scholar_bench::SEED;

fn corpus_with_rate(rate: f64) -> scholar::Corpus {
    let cfg = GeneratorConfig {
        initial_articles_per_year: rate,
        ..Preset::DblpLike.config(SEED)
    };
    CorpusGenerator::new(cfg).generate()
}

fn bench_size_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank_vs_corpus_size");
    group.sample_size(10);
    for &rate in &[25.0, 50.0, 100.0] {
        let corpus = corpus_with_rate(rate);
        let edges = corpus.num_citations();
        group.throughput(Throughput::Elements(edges as u64));
        group.bench_with_input(BenchmarkId::from_parameter(edges), &corpus, |b, corpus| {
            b.iter(|| PageRank::default().rank(corpus))
        });
    }
    group.finish();
}

fn bench_thread_scaling(c: &mut Criterion) {
    let corpus = corpus_with_rate(100.0);
    let mut group = c.benchmark_group("twpr_thread_scaling");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        let ranker = TimeWeightedPageRank::new(TwprConfig {
            pagerank: PageRankConfig { threads, ..Default::default() },
            ..Default::default()
        });
        group.bench_with_input(BenchmarkId::new("threads", threads), &ranker, |b, r| {
            b.iter(|| r.rank(&corpus))
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_size_scaling, bench_thread_scaling
);
criterion_main!(benches);
