//! Scalability benchmarks (R-Fig 4 companion): ranking cost as the
//! corpus grows, and thread scaling of the article walk.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench scale
//! ```

use scholar::corpus::CorpusGenerator;
use scholar::rank::{PageRankConfig, TwprConfig};
use scholar::{GeneratorConfig, PageRank, Preset, Ranker, TimeWeightedPageRank};
use scholar_bench::{smoke_mode, time_secs, SEED};

fn corpus_with_rate(rate: f64) -> scholar::Corpus {
    let cfg = GeneratorConfig { initial_articles_per_year: rate, ..Preset::DblpLike.config(SEED) };
    CorpusGenerator::new(cfg).generate()
}

fn main() {
    let smoke = smoke_mode();
    let rates: &[f64] = if smoke { &[5.0] } else { &[25.0, 50.0, 100.0] };
    let iters = if smoke { 1 } else { 3 };
    println!("pagerank_vs_corpus_size:");
    for &rate in rates {
        let corpus = corpus_with_rate(rate);
        let edges = corpus.num_citations();
        let secs = time_secs(iters, || PageRank::default().rank(&corpus));
        println!(
            "  {:>9} edges {:>9.4} s ({:.1} Medges/s)",
            edges,
            secs,
            edges as f64 / secs / 1e6
        );
    }

    println!("\ntwpr_thread_scaling:");
    let corpus = corpus_with_rate(if smoke { 5.0 } else { 100.0 });
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    for &threads in thread_counts {
        let ranker = TimeWeightedPageRank::new(TwprConfig {
            pagerank: PageRankConfig { threads, ..Default::default() },
            ..Default::default()
        });
        let secs = time_secs(iters, || ranker.rank(&corpus));
        println!("  {threads} threads {secs:>9.4} s");
    }
}
