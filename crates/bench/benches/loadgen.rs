//! Load-generator benchmark: drive a live `scholar-serve` instance with
//! the seeded closed-loop `scholar-loadgen` harness — steady state
//! first, then with the reindexer publishing generations *during* the
//! run, so the artifact records latency under swap churn, not just at
//! rest.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench loadgen
//! ```
//!
//! Writes `BENCH_loadgen.json` at the repository root (skipped in smoke
//! mode).

use scholar::corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar::serve::{serve, Metrics, Reindexer, ServeConfig};
use scholar::{Preset, QRankConfig};
use scholar_bench::{smoke_mode, SEED};
use scholar_loadgen::{run, LoadConfig, Report, StatusRanges};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn print_report(label: &str, r: &Report) {
    println!(
        "{label}: {} requests in {:.2}s = {:.0} req/s ({} connects)",
        r.completed,
        r.elapsed.as_secs_f64(),
        r.throughput_rps(),
        r.connects
    );
    println!(
        "  latency: p50 {}us p90 {}us p99 {}us p999 {}us max {}us",
        r.hist.percentile(0.50),
        r.hist.percentile(0.90),
        r.hist.percentile(0.99),
        r.hist.percentile(0.999),
        r.hist.max()
    );
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) = if smoke { (Preset::Tiny, "tiny") } else { (Preset::AanLike, "aan_like") };
    let corpus = preset.generate(SEED);
    let n = corpus.num_articles();
    let (steady_requests, churn_requests, connections, swap_batches) =
        if smoke { (400u64, 400u64, 2, 1) } else { (100_000u64, 50_000u64, 4, 4) };

    println!(
        "loadgen vs {name} ({n} articles): {connections} connections, \
         {steady_requests} steady + {churn_requests} under churn\n"
    );

    let metrics = Arc::new(Metrics::new());
    let (shared, reindexer) = Reindexer::start(QRankConfig::default(), corpus, |_| {});
    let config = ServeConfig { workers: 2, ..Default::default() };
    let server = serve(Arc::clone(&shared), Arc::clone(&metrics), &config).expect("bind");
    let addr = server.addr();

    let base = LoadConfig {
        addr,
        connections,
        seed: SEED,
        keep_alive: true,
        targets: vec![
            "/top?k=10".to_string(),
            "/top?k=25&year_min=2005".to_string(),
            "/top?k=3".to_string(),
            "/health".to_string(),
        ],
        accept: StatusRanges::ok(),
        ..Default::default()
    };

    // --- Phase 1: steady state. -----------------------------------------
    let steady =
        run(&LoadConfig { requests: steady_requests, ..base.clone() }).expect("steady run");
    assert_eq!(steady.completed, steady_requests, "requests went missing");
    assert_eq!(steady.violations, 0, "bad statuses: {:?}", steady.violation_samples);
    assert_eq!(steady.transport_errors, 0, "torn responses in steady state");
    print_report("steady state", &steady);

    // --- Phase 2: the same load while generations swap under it. --------
    // Republishing a generation means re-ranking the whole corpus, so a
    // single fixed-size load round can drain before `swap_batches` swaps
    // land. Repeat the round (fresh seed each time, reports merged) until
    // the swap target is met — every round runs with the reindexer
    // publishing under it, which is the property the artifact records.
    let gen_before = shared.generation();
    let mut published = 0u64;
    let mut churn: Option<Report> = None;
    let mut round = 0u64;
    while churn.is_none() || shared.generation() - gen_before < swap_batches {
        round += 1;
        assert!(round <= 64, "swap churn never reached {swap_batches} swaps");
        let churn_config =
            LoadConfig { requests: churn_requests, seed: SEED ^ round, ..base.clone() };
        let load = std::thread::spawn(move || run(&churn_config).expect("churn run"));
        while !load.is_finished() {
            reindexer
                .submit(vec![Article {
                    id: ArticleId(0),
                    title: format!("churn-{published}"),
                    year: 2012,
                    venue: VenueId(0),
                    authors: vec![AuthorId(0)],
                    references: vec![ArticleId(published as u32 % 7)],
                    merit: None,
                }])
                .unwrap();
            published += 1;
            let deadline = Instant::now() + Duration::from_secs(60);
            while reindexer.batches_published() < published && !load.is_finished() {
                assert!(Instant::now() < deadline, "publish {published} never landed");
                std::thread::sleep(Duration::from_millis(1));
            }
            // Keep swapping for the whole round — churn, not a warm-up —
            // but give the serving path the bulk of the core in between.
            std::thread::sleep(Duration::from_millis(5));
        }
        let r = load.join().expect("churn thread panicked");
        assert_eq!(r.completed, churn_requests);
        assert_eq!(r.violations, 0, "bad statuses under churn: {:?}", r.violation_samples);
        assert_eq!(r.transport_errors, 0, "torn responses under churn");
        match &mut churn {
            Some(merged) => merged.merge(&r),
            None => churn = Some(r),
        }
    }
    let churn = churn.expect("at least one churn round ran");
    let swaps = shared.generation() - gen_before;
    assert!(swaps >= swap_batches, "churn phase only saw {swaps} swaps");
    print_report("under swap churn", &churn);
    println!("  generations published during run: {swaps} (over {round} load rounds)");

    drop(server);
    reindexer.shutdown();

    if smoke {
        println!("\n(smoke mode: skipped BENCH_loadgen.json)");
        return;
    }

    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", n)
        .field("connections", connections)
        .field("steady", steady.to_json())
        .field("churn", churn.to_json())
        .field("churn_swaps", swaps as i64)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_loadgen.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
