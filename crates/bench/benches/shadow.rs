//! Shadow-evaluation benchmark: what does "prove before you promote"
//! cost the live path?
//!
//! Three phases against the same ranked corpus, same seeded workload:
//!
//! 1. **baseline** — plain serving, no recorder, no shadow.
//! 2. **recording** — an RLOGv1 [`Recorder`] sampling every request.
//!    The p99 must stay within 5% of baseline (plus a microsecond-scale
//!    quantization floor): recording is one atomic on the off-stride
//!    path and one `try_lock` push on-stride, and this assertion is the
//!    proof it stays that cheap.
//! 3. **shadow** — recording *and* an equivalent candidate staged in
//!    the shadow slot, so every stored request is also answered by the
//!    candidate. The artifact records the mirror latency distribution
//!    and the drift statistics the promotion gate reads.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench shadow
//! ```
//!
//! Writes `BENCH_shadow.json` at the repository root (skipped in smoke
//! mode).

use scholar::core::incremental::IncrementalRanker;
use scholar::serve::{serve, Metrics, Recorder, ScoreIndex, ServeConfig, SharedIndex};
use scholar::serve::{ShadowReport, ShadowThresholds};
use scholar::{Preset, QRankConfig};
use scholar_bench::{smoke_mode, SEED};
use scholar_loadgen::{run, LoadConfig, Report, StatusRanges};
use std::sync::Arc;

fn print_report(label: &str, r: &Report) {
    println!(
        "{label}: {} requests in {:.2}s = {:.0} req/s, p50 {}us p99 {}us",
        r.completed,
        r.elapsed.as_secs_f64(),
        r.throughput_rps(),
        r.hist.percentile(0.50),
        r.hist.percentile(0.99),
    );
}

struct Phase {
    report: Report,
    shadow: Option<ShadowReport>,
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) = if smoke { (Preset::Tiny, "tiny") } else { (Preset::AanLike, "aan_like") };
    let corpus = Arc::new(preset.generate(SEED));
    let n = corpus.num_articles();
    let (requests, connections) = if smoke { (400u64, 2usize) } else { (50_000u64, 4) };

    println!("shadow overhead vs {name} ({n} articles): {connections} connections, {requests} requests/phase\n");

    let scores = IncrementalRanker::new(QRankConfig::default(), corpus.as_ref().clone())
        .result()
        .article_scores
        .clone();

    let workload = |addr| LoadConfig {
        addr,
        connections,
        requests,
        seed: SEED,
        keep_alive: true,
        targets: vec![
            "/top?k=10".to_string(),
            "/top?k=25&year_min=2005".to_string(),
            "/top?k=3".to_string(),
            "/health".to_string(),
        ],
        accept: StatusRanges::ok(),
    };

    // One phase: serve the index, drive the workload, tear down.
    let phase = |label: &str, recorder: Option<Arc<Recorder>>, stage_shadow: bool| -> Phase {
        let shared =
            Arc::new(SharedIndex::new(ScoreIndex::build(Arc::clone(&corpus), scores.clone())));
        if stage_shadow {
            // An equivalent candidate (the realistic promote case) that
            // never reaches its evidence bar during the run, so every
            // request keeps mirroring and the report covers the whole
            // phase.
            shared.stage_shadow(
                ScoreIndex::build(Arc::clone(&corpus), scores.clone()),
                ShadowThresholds { min_mirrored: u64::MAX, ..Default::default() },
            );
        }
        let config = ServeConfig { workers: 2, recorder, ..Default::default() };
        let mut server =
            serve(Arc::clone(&shared), Arc::new(Metrics::new()), &config).expect("bind");
        let report = run(&workload(server.addr())).expect("load run");
        assert_eq!(report.completed, requests, "{label}: requests went missing");
        assert_eq!(report.violations, 0, "{label}: bad statuses");
        assert_eq!(report.transport_errors, 0, "{label}: torn responses");
        let shadow = shared.shadow_report();
        server.shutdown();
        print_report(label, &report);
        Phase { report, shadow }
    };

    // The recorder's file is only written on flush, which the bench
    // never calls — the ring cost is what is being measured.
    let rlog = std::env::temp_dir().join("BENCH_shadow.rlog");
    let baseline = phase("baseline ", None, false);
    let recording = phase("recording", Some(Arc::new(Recorder::new(&rlog, 1, 1 << 16))), false);
    let shadowed = phase("shadowed ", Some(Arc::new(Recorder::new(&rlog, 1, 1 << 16))), true);

    let base_p99 = baseline.report.hist.percentile(0.99);
    let rec_p99 = recording.report.hist.percentile(0.99);
    let overhead = rec_p99 as f64 / base_p99.max(1) as f64;
    println!("\nrecording p99 overhead: {overhead:.3}x ({base_p99}us -> {rec_p99}us)");

    let report = shadowed.shadow.expect("shadow phase staged a candidate");
    println!(
        "mirror latency: p50 {}us p99 {}us over {} mirrored \
         (overlap {:.4}, tau {:.4}, l1 {:.3e}, {} status mismatches)",
        report.mirror_p50_us,
        report.mirror_p99_us,
        report.mirrored,
        report.topk_overlap(),
        report.kendall_tau(),
        report.score_l1_mean(),
        report.status_mismatches,
    );
    assert!(report.mirrored > 0, "shadow phase never mirrored a request");
    assert_eq!(report.status_mismatches, 0, "equivalent candidate answered differently");

    if smoke {
        println!("\n(smoke mode: skipped BENCH_shadow.json and the overhead gate)");
        return;
    }

    // The recording gate: sampling every request must cost the p99 less
    // than 5%. The +10us floor absorbs microsecond quantization — at a
    // double-digit-microsecond p99, 5% is below timer resolution, and
    // the floor keeps the gate meaningful instead of coin-flippy.
    assert!(
        rec_p99 as f64 <= base_p99 as f64 * 1.05 + 10.0,
        "recording overhead out of budget: baseline p99 {base_p99}us, recording p99 {rec_p99}us"
    );

    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", n)
        .field("connections", connections)
        .field("requests", requests)
        .field("baseline", baseline.report.to_json())
        .field("recording", recording.report.to_json())
        .field("record_p99_overhead", overhead)
        .field("shadowed", shadowed.report.to_json())
        .field("mirror_p50_us", report.mirror_p50_us as i64)
        .field("mirror_p99_us", report.mirror_p99_us as i64)
        .field("mirrored", report.mirrored as i64)
        .field("topk_overlap", report.topk_overlap())
        .field("kendall_tau", report.kendall_tau())
        .field("score_l1_mean", report.score_l1_mean())
        .field("status_mismatches", report.status_mismatches as i64)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shadow.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
