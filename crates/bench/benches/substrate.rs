//! Micro-benchmarks of the graph substrate: CSR construction, the SpMV
//! random-walk step (sequential vs parallel), and the O(n log n)
//! Kendall τ used throughout the evaluation.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench substrate
//! ```

use scholar::graph::stochastic::{normalize_l1, PowerIterationOpts};
use scholar::graph::{GraphBuilder, JumpVector, NodeId, RowStochastic};
use scholar_bench::{smoke_mode, time_secs};

/// Deterministic pseudo-random edge list (splitmix-style).
fn random_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32, f64)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..m).map(|_| (next() % n, next() % n, 1.0 + (next() % 8) as f64)).collect()
}

fn bench_build(smoke: bool) {
    println!("csr_build:");
    let sizes: &[(u32, usize)] =
        if smoke { &[(2_000, 12_000)] } else { &[(10_000, 60_000), (50_000, 400_000)] };
    for &(n, m) in sizes {
        let edges = random_edges(n, m, 7);
        let secs = time_secs(if smoke { 2 } else { 5 }, || {
            let mut builder = GraphBuilder::new(n).with_edge_capacity(edges.len());
            for &(s, d, w) in &edges {
                builder.add_edge(NodeId(s), NodeId(d), w);
            }
            builder.build()
        });
        println!("  {m:>7} edges {secs:>9.4} s ({:.1} Medges/s)", m as f64 / secs / 1e6);
    }
}

fn bench_spmv(smoke: bool) {
    let n: u32 = if smoke { 10_000 } else { 100_000 };
    let m: usize = if smoke { 80_000 } else { 800_000 };
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, m, 11));
    let op = RowStochastic::new(&g);
    let mut x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    normalize_l1(&mut x);
    let mut y = vec![0.0; n as usize];

    println!("\nwalk_step_{}k_edges:", m / 1000);
    let thread_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    for &threads in thread_counts {
        let secs = time_secs(if smoke { 5 } else { 20 }, || {
            op.apply_parallel(&x, &mut y, 0.85, &JumpVector::Uniform, threads)
        });
        println!("  {threads} threads {secs:>9.5} s ({:.1} Medges/s)", m as f64 / secs / 1e6);
    }
}

fn bench_power_iteration(smoke: bool) {
    let n: u32 = if smoke { 5_000 } else { 50_000 };
    let m = if smoke { 30_000 } else { 300_000 };
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, m, 13));
    let op = RowStochastic::new(&g);
    let secs = time_secs(if smoke { 1 } else { 3 }, || {
        op.stationary(&PowerIterationOpts { tol: 1e-8, ..Default::default() })
    });
    println!("\npower_iteration_to_1e-8_{}k_edges: {secs:.4} s", m / 1000);
}

fn bench_kendall(smoke: bool) {
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 32) % 1000) as f64
    };
    let n = if smoke { 10_000 } else { 100_000 };
    let x: Vec<f64> = (0..n).map(|_| next()).collect();
    let y: Vec<f64> = (0..n).map(|_| next()).collect();
    let secs =
        time_secs(if smoke { 2 } else { 5 }, || scholar::eval::metrics::kendall_tau_b(&x, &y));
    println!("\nkendall_tau_{}k: {secs:.4} s", n / 1000);
}

fn main() {
    let smoke = smoke_mode();
    bench_build(smoke);
    bench_spmv(smoke);
    bench_power_iteration(smoke);
    bench_kendall(smoke);
}
