//! Micro-benchmarks of the graph substrate: CSR construction, the SpMV
//! random-walk step (sequential vs parallel), and the O(n log n)
//! Kendall τ used throughout the evaluation.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench substrate
//! ```

use scholar::graph::stochastic::{normalize_l1, PowerIterationOpts};
use scholar::graph::{GraphBuilder, JumpVector, NodeId, RowStochastic};
use scholar_bench::time_secs;

/// Deterministic pseudo-random edge list (splitmix-style).
fn random_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32, f64)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..m).map(|_| (next() % n, next() % n, 1.0 + (next() % 8) as f64)).collect()
}

fn bench_build() {
    println!("csr_build:");
    for &(n, m) in &[(10_000u32, 60_000usize), (50_000, 400_000)] {
        let edges = random_edges(n, m, 7);
        let secs = time_secs(5, || {
            let mut builder = GraphBuilder::new(n).with_edge_capacity(edges.len());
            for &(s, d, w) in &edges {
                builder.add_edge(NodeId(s), NodeId(d), w);
            }
            builder.build()
        });
        println!("  {m:>7} edges {secs:>9.4} s ({:.1} Medges/s)", m as f64 / secs / 1e6);
    }
}

fn bench_spmv() {
    let n = 100_000u32;
    let m = 800_000usize;
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, m, 11));
    let op = RowStochastic::new(&g);
    let mut x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    normalize_l1(&mut x);
    let mut y = vec![0.0; n as usize];

    println!("\nwalk_step_800k_edges:");
    for &threads in &[1usize, 2, 4, 8] {
        let secs =
            time_secs(20, || op.apply_parallel(&x, &mut y, 0.85, &JumpVector::Uniform, threads));
        println!("  {threads} threads {secs:>9.5} s ({:.1} Medges/s)", m as f64 / secs / 1e6);
    }
}

fn bench_power_iteration() {
    let n = 50_000u32;
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, 300_000, 13));
    let op = RowStochastic::new(&g);
    let secs =
        time_secs(3, || op.stationary(&PowerIterationOpts { tol: 1e-8, ..Default::default() }));
    println!("\npower_iteration_to_1e-8_300k_edges: {secs:.4} s");
}

fn bench_kendall() {
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 32) % 1000) as f64
    };
    let x: Vec<f64> = (0..100_000).map(|_| next()).collect();
    let y: Vec<f64> = (0..100_000).map(|_| next()).collect();
    let secs = time_secs(5, || scholar::eval::metrics::kendall_tau_b(&x, &y));
    println!("\nkendall_tau_100k: {secs:.4} s");
}

fn main() {
    bench_build();
    bench_spmv();
    bench_power_iteration();
    bench_kendall();
}
