//! Criterion micro-benchmarks of the graph substrate: CSR construction,
//! the SpMV random-walk step (sequential vs parallel), and the O(n log n)
//! Kendall τ used throughout the evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scholar::graph::stochastic::{normalize_l1, PowerIterationOpts};
use scholar::graph::{GraphBuilder, JumpVector, NodeId, RowStochastic};

/// Deterministic pseudo-random edge list (splitmix-style).
fn random_edges(n: u32, m: usize, seed: u64) -> Vec<(u32, u32, f64)> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    (0..m).map(|_| (next() % n, next() % n, 1.0 + (next() % 8) as f64)).collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("csr_build");
    for &(n, m) in &[(10_000u32, 60_000usize), (50_000, 400_000)] {
        let edges = random_edges(n, m, 7);
        group.throughput(Throughput::Elements(m as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &edges, |b, edges| {
            b.iter(|| {
                let mut builder = GraphBuilder::new(n).with_edge_capacity(edges.len());
                for &(s, d, w) in edges {
                    builder.add_edge(NodeId(s), NodeId(d), w);
                }
                builder.build()
            })
        });
    }
    group.finish();
}

fn bench_spmv(c: &mut Criterion) {
    let n = 100_000u32;
    let m = 800_000usize;
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, m, 11));
    let op = RowStochastic::new(&g);
    let mut x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
    normalize_l1(&mut x);
    let mut y = vec![0.0; n as usize];

    let mut group = c.benchmark_group("walk_step_800k_edges");
    group.throughput(Throughput::Elements(m as u64));
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| op.apply_parallel(&x, &mut y, 0.85, &JumpVector::Uniform, t))
        });
    }
    group.finish();
}

fn bench_power_iteration(c: &mut Criterion) {
    let n = 50_000u32;
    let g = GraphBuilder::from_weighted_edges(n, &random_edges(n, 300_000, 13));
    let op = RowStochastic::new(&g);
    c.bench_function("power_iteration_to_1e-8_300k_edges", |b| {
        b.iter(|| {
            op.stationary(&PowerIterationOpts { tol: 1e-8, ..Default::default() })
        })
    });
}

fn bench_kendall(c: &mut Criterion) {
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        ((state >> 32) % 1000) as f64
    };
    let x: Vec<f64> = (0..100_000).map(|_| next()).collect();
    let y: Vec<f64> = (0..100_000).map(|_| next()).collect();
    c.bench_function("kendall_tau_100k", |b| {
        b.iter(|| scholar::eval::metrics::kendall_tau_b(&x, &y))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_build, bench_spmv, bench_power_iteration, bench_kendall
);
criterion_main!(benches);
