//! Out-of-core MAG-scale benchmark: stream-generate a 10M-article
//! colstore, build the partitioned decayed-citation shard file, and rank
//! through the mmap backend — proving the whole pipeline fits a fixed
//! RSS budget that the equivalent in-RAM corpus could never meet.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench outofcore            # full 10M run
//! cargo bench -p scholar-bench --bench outofcore -- --smoke # ~100k, CI
//! ```
//!
//! The full run asserts `peak RSS < RSS_BUDGET` in-process (VmHWM from
//! `/proc/self/status`) and writes `BENCH_outofcore.json` at the repo
//! root. Smoke mode shrinks the corpus to ~100k articles, additionally
//! cross-checks the mmap scores against the materialized in-RAM path,
//! and skips the artifact.

use scholar::corpus::colstore::ColStore;
use scholar::corpus::generator::generate_mag_scale;
use scholar::rank::RankContext;
use scholar::{Ranker, TimeWeightedPageRank};
use scholar_bench::{smoke_mode, SEED};
use std::time::Instant;

/// Peak-RSS ceiling for the full 10M-article run, asserted in-process.
/// The budget covers two iterate vectors (160 MB), the recency jump and
/// year columns, one resident shard of the mmap CSR, and the transient
/// per-shard build state — while the dense in-RAM pipeline (corpus
/// structs + a 2×-materialized 80M-edge operator) needs several times
/// this.
const RSS_BUDGET_BYTES: u64 = 2 * 1024 * 1024 * 1024;

const FULL_ARTICLES: usize = 10_000_000;
const SMOKE_ARTICLES: usize = 100_000;

/// Peak resident set size of this process in bytes (`VmHWM`), the
/// high-water mark the kernel tracked since process start.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let line = status.lines().find(|l| l.starts_with("VmHWM:")).expect("VmHWM line");
    let kb: u64 =
        line.split_whitespace().nth(1).and_then(|v| v.parse().ok()).expect("VmHWM value in kB");
    kb * 1024
}

fn main() {
    let smoke = smoke_mode();
    let articles = if smoke { SMOKE_ARTICLES } else { FULL_ARTICLES };
    let dir = std::env::temp_dir().join(format!("scholar-outofcore-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let started = Instant::now();
    let stats = generate_mag_scale(&dir, articles, SEED).expect("stream generation");
    let gen_secs = started.elapsed().as_secs_f64();
    println!(
        "generated {} articles, {} citations in {gen_secs:.2} s ({:.2} Marticles/s)",
        stats.articles,
        stats.citations,
        stats.articles as f64 / gen_secs / 1e6
    );

    let store = ColStore::open(&dir).expect("open colstore");
    let ctx = RankContext::from_colstore(&store);
    let ranker = TimeWeightedPageRank::default();

    // First decayed_plan call streams the partitioned CSR shard file to
    // disk; the solve below reuses it from the context cache.
    let built = Instant::now();
    let _ = ctx.decayed_plan(ranker.config.rho);
    let csr_build_secs = built.elapsed().as_secs_f64();
    println!(
        "built partitioned CSR in {csr_build_secs:.2} s ({:.2} Medges/s)",
        stats.citations as f64 / csr_build_secs / 1e6
    );

    let solved = Instant::now();
    let out = ranker.solve_ctx(&ctx);
    let solve_secs = solved.elapsed().as_secs_f64();
    assert!(out.telemetry.converged, "mmap TWPR solve must converge");
    println!(
        "solved TWPR over mmap shards in {solve_secs:.2} s ({} iterations, {:.2} Medge-gathers/s)",
        out.telemetry.iterations,
        stats.citations as f64 * out.telemetry.iterations as f64 / solve_secs / 1e6
    );

    let peak = peak_rss_bytes();
    println!(
        "peak RSS {:.0} MiB (budget {:.0} MiB)",
        peak as f64 / (1024.0 * 1024.0),
        RSS_BUDGET_BYTES as f64 / (1024.0 * 1024.0)
    );

    if smoke {
        // Cheap enough to materialize: the mmap path must match the
        // in-RAM path bit-for-bit before the numbers mean anything.
        let corpus = store.materialize().expect("materialize smoke corpus");
        let ram = ranker.solve_ctx(&RankContext::new(&corpus));
        assert_eq!(
            ram.telemetry.iterations, out.telemetry.iterations,
            "backends took different iteration counts"
        );
        let drift: f64 = ram.scores.iter().zip(&out.scores).map(|(a, b)| (a - b).abs()).sum();
        assert!(drift <= 1e-12, "mmap scores drifted {drift:.3e} from in-RAM");
        println!("smoke equivalence: drift {drift:.2e} over {} articles", corpus.num_articles());
        std::fs::remove_dir_all(&dir).ok();
        println!("\n(smoke mode: skipped BENCH_outofcore.json and the RSS assertion)");
        return;
    }

    assert!(
        peak < RSS_BUDGET_BYTES,
        "peak RSS {peak} exceeds the out-of-core budget {RSS_BUDGET_BYTES}"
    );

    let json = sjson::ObjectBuilder::new()
        .field("corpus", "mag-scale")
        .field("seed", SEED)
        .field("articles", stats.articles)
        .field("citations", stats.citations)
        .field("gen_secs", gen_secs)
        .field("csr_build_secs", csr_build_secs)
        .field("solve_secs", solve_secs)
        .field("iterations", out.telemetry.iterations)
        .field("peak_rss_bytes", peak)
        .field("rss_budget_bytes", RSS_BUDGET_BYTES)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_outofcore.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    std::fs::remove_dir_all(&dir).ok();
    println!("\nwrote {path}");
}
