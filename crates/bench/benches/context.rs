//! Shared-[`RankContext`] economics: the full baseline-suite ranking
//! sweep of an evaluation session (every ranker, once per ground-truth
//! experiment) with one prepared context versus the per-ranker rebuild
//! idiom, plus the drift and build-count guarantees that make the fast
//! path safe. Metric scoring is identical work in both paths and is
//! excluded from the timed region.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench context
//! ```
//!
//! Besides the human-readable report, writes `BENCH_context.json` at the
//! repository root so the numbers are machine-checkable.

use scholar::graph::stochastic::l1_distance;
use scholar::rank::RankContext;
use scholar::{Corpus, Preset};
use scholar_bench::{smoke_mode, time_secs, SEED};

/// Full-suite ranking passes per session: a typical evaluation scores
/// every baseline against three ground truths (future citations, awards,
/// expert pairs), and the rebuild idiom re-ranks for each.
const PASSES: usize = 3;

/// One evaluation session against a prepared context: building the
/// context is part of the session, every ranker solves through it, and
/// repeat passes hit the solve memo.
fn session_shared(corpus: &Corpus) -> Vec<Vec<f64>> {
    let ctx = RankContext::new(corpus);
    let mut rankings = Vec::new();
    for _ in 0..PASSES {
        for ranker in scholar::evaluation_rankers() {
            rankings.push(ranker.rank_ctx(&ctx));
        }
    }
    rankings
}

/// The same session in the pre-context idiom: each ranker re-derives its
/// graphs and re-solves from scratch on every pass.
fn session_rebuild(corpus: &Corpus) -> Vec<Vec<f64>> {
    let mut rankings = Vec::new();
    for _ in 0..PASSES {
        for ranker in scholar::evaluation_rankers() {
            rankings.push(ranker.rank(corpus));
        }
    }
    rankings
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) = if smoke { (Preset::Tiny, "tiny") } else { (Preset::AanLike, "aan_like") };
    let corpus = preset.generate(SEED);
    let suite = scholar::evaluation_rankers();
    println!(
        "baseline-suite session on {name} ({} articles, {} citations, {} rankers x {PASSES} passes)\n",
        corpus.num_articles(),
        corpus.num_citations(),
        suite.len()
    );

    // --- Correctness first: the fast path must be the same computation. --
    let shared_rankings = session_shared(&corpus);
    let rebuilt_rankings = session_rebuild(&corpus);
    let mut max_l1: f64 = 0.0;
    for (i, (a, b)) in shared_rankings.iter().zip(&rebuilt_rankings).enumerate() {
        let drift = l1_distance(a, b);
        let who = suite[i % suite.len()].name();
        assert!(drift <= 1e-12, "{who}: shared-context scores drifted ({drift:.3e})");
        max_l1 = max_l1.max(drift);
    }

    // One session against a fresh corpus (fresh build counter): the whole
    // suite must derive the citation CSR exactly once.
    let counted = corpus.clone();
    session_shared(&counted);
    let builds = counted.citation_graph_builds();
    assert_eq!(builds, 1, "shared-context session built the citation graph {builds} times");

    // --- The race. ------------------------------------------------------
    let iters = if smoke { 1 } else { 3 };
    let shared_secs = time_secs(iters, || session_shared(&corpus));
    let rebuild_secs = time_secs(iters, || session_rebuild(&corpus));
    let speedup = rebuild_secs / shared_secs;
    println!("shared context (1 build, memoized solves): {shared_secs:>8.4} s");
    println!("rebuild per ranker per pass:               {rebuild_secs:>8.4} s");
    println!("speedup:                                   {speedup:>8.2}x");
    println!("max L1 drift shared vs rebuild:            {max_l1:>8.2e}");
    println!("citation graph builds per shared session:  {builds:>8}");
    if smoke {
        println!("\n(smoke mode: skipped BENCH_context.json and the speedup floor)");
        return;
    }
    assert!(speedup >= 2.0, "shared-context session must be >= 2x faster, got {speedup:.2}x");

    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", corpus.num_articles())
        .field("citations", corpus.num_citations())
        .field("rankers", suite.len())
        .field("passes", PASSES)
        .field("shared_context_secs", shared_secs)
        .field("rebuild_secs", rebuild_secs)
        .field("speedup", speedup)
        .field("max_l1_drift", max_l1)
        .field("citation_graph_builds_shared", builds)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_context.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
