//! Wall-clock benchmarks of every ranker on the AAN-like corpus — the
//! per-method cost column behind R-Table 2's timing numbers.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench rankers
//! ```

use scholar::Preset;
use scholar_bench::{smoke_mode, time_secs, SEED};

fn main() {
    let smoke = smoke_mode();
    let (preset, name, iters) =
        if smoke { (Preset::Tiny, "tiny", 1) } else { (Preset::AanLike, "aan_like", 3) };
    let corpus = preset.generate(SEED);
    println!(
        "rankers_{name} ({} articles, {} citations):",
        corpus.num_articles(),
        corpus.num_citations()
    );
    for ranker in scholar::evaluation_rankers() {
        let secs = time_secs(iters, || ranker.rank(&corpus));
        println!("  {:<16} {:>9.4} s", ranker.name(), secs);
    }

    println!("\ncorpus_generation:");
    println!("  {:<16} {:>9.4} s", "tiny", time_secs(5, || Preset::Tiny.generate(SEED)));
    if !smoke {
        println!("  {:<16} {:>9.4} s", "aan_like", time_secs(3, || Preset::AanLike.generate(SEED)));
    }

    let cfg = scholar::QRankConfig::default();
    println!(
        "\nhetnet_build_{name}: {:.4} s",
        time_secs(iters, || scholar::core::HetNet::build(&corpus, &cfg))
    );
}
