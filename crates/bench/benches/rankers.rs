//! Criterion benchmarks of every ranker on the AAN-like corpus — the
//! per-method cost column behind R-Table 2's timing numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use scholar::Preset;
use scholar_bench::SEED;

fn bench_rankers(c: &mut Criterion) {
    let corpus = Preset::AanLike.generate(SEED);
    let mut group = c.benchmark_group("rankers_aan_like");
    group.sample_size(10);
    for ranker in scholar::evaluation_rankers() {
        group.bench_function(ranker.name(), |b| b.iter(|| ranker.rank(&corpus)));
    }
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_generation");
    group.sample_size(10);
    group.bench_function("tiny", |b| b.iter(|| Preset::Tiny.generate(SEED)));
    group.bench_function("aan_like", |b| b.iter(|| Preset::AanLike.generate(SEED)));
    group.finish();
}

fn bench_hetnet_build(c: &mut Criterion) {
    let corpus = Preset::AanLike.generate(SEED);
    let cfg = scholar::QRankConfig::default();
    c.bench_function("hetnet_build_aan_like", |b| {
        b.iter(|| scholar::core::HetNet::build(&corpus, &cfg))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_rankers, bench_corpus_generation, bench_hetnet_build
);
criterion_main!(benches);
