//! Build-once / solve-many economics of the prepared [`QRankEngine`]:
//! how much of a QRank run is the structural build, how cheap a re-solve
//! against a cached plan is, and how much a shared-engine ablation sweep
//! saves over rebuilding per variant.
//!
//! ```sh
//! cargo bench -p scholar-bench --bench engine
//! ```
//!
//! Besides the human-readable report, writes `BENCH_engine.json` at the
//! repository root so the numbers are machine-checkable.

use scholar::core::SolveScratch;
use scholar::graph::stochastic::l1_distance;
use scholar::{Ablation, MixParams, Preset, QRank, QRankConfig, QRankEngine};
use scholar_bench::{smoke_mode, SEED};
use std::hint::black_box;
use std::time::Instant;

fn secs_of<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let v = f();
    (v, t0.elapsed().as_secs_f64())
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) = if smoke { (Preset::Tiny, "tiny") } else { (Preset::AanLike, "aan_like") };
    let corpus = preset.generate(SEED);
    let cfg = QRankConfig::default();
    println!(
        "engine economics on {name} ({} articles, {} citations)\n",
        corpus.num_articles(),
        corpus.num_citations()
    );

    // --- Build vs solve cost. -------------------------------------------
    let (engine, build_secs) = secs_of(|| QRankEngine::build(&corpus, &cfg));
    // The first solve pays the (cached-thereafter) inner citation walk.
    let (first, first_solve_secs) = secs_of(|| engine.solve(&MixParams::from_config(&cfg)));
    // Steady-state re-solves: reused scratch, varied mixture parameters —
    // the tuning-loop workload the engine exists for.
    let mixes: Vec<MixParams> = [
        (0.85, 0.10, 0.05),
        (0.80, 0.15, 0.05),
        (0.80, 0.10, 0.10),
        (0.70, 0.20, 0.10),
        (0.90, 0.05, 0.05),
        (0.75, 0.15, 0.10),
        (0.85, 0.05, 0.10),
        (0.95, 0.03, 0.02),
        (0.60, 0.20, 0.20),
        (0.70, 0.15, 0.15),
    ]
    .iter()
    .map(|&(lp, lv, lu)| MixParams::from_config(&cfg.clone().with_lambdas(lp, lv, lu)))
    .collect();
    let mut scratch = SolveScratch::new();
    let (_, resolve_total) = secs_of(|| {
        for mix in &mixes {
            black_box(engine.solve_with(mix, None, &mut scratch));
        }
    });
    let resolve_secs = resolve_total / mixes.len() as f64;
    println!("build (graphs + operators + structural walks): {build_secs:>8.4} s");
    println!("first solve (pays the cached inner walk):      {first_solve_secs:>8.4} s");
    println!("steady-state re-solve (mean of {}):            {resolve_secs:>8.4} s", mixes.len());
    println!(
        "build / re-solve ratio:                        {:>8.1}x\n",
        build_secs / resolve_secs
    );

    // --- Ablation sweep: shared engines vs rebuild per variant. ---------
    // Mean of 3 timed runs after a warmup each (time_secs), so allocator
    // and cache effects don't favour whichever path runs second.
    let iters = if smoke { 1 } else { 3 };
    let swept = Ablation::sweep(&cfg, &corpus);
    let shared_secs = scholar_bench::time_secs(iters, || Ablation::sweep(&cfg, &corpus));
    let fresh: Vec<_> = Ablation::all()
        .into_iter()
        .map(|ab| (ab, QRank::new(ab.apply(&cfg)).run(&corpus)))
        .collect();
    let rebuild_secs = scholar_bench::time_secs(iters, || {
        Ablation::all()
            .into_iter()
            .map(|ab| (ab, QRank::new(ab.apply(&cfg)).run(&corpus)))
            .collect::<Vec<_>>()
    });
    // Sanity: the fast path must be the same computation.
    let mut max_l1: f64 = 0.0;
    for ((ab, a), (_, b)) in swept.iter().zip(&fresh) {
        let l1 = l1_distance(&a.article_scores, &b.article_scores);
        assert!(l1 <= 1e-12, "{ab:?}: shared-engine sweep drifted from fresh runs ({l1:.3e})");
        max_l1 = max_l1.max(l1);
    }
    let speedup = rebuild_secs / shared_secs;
    println!("ablation sweep, {} variants:", swept.len());
    println!("  shared engines (2 builds):  {shared_secs:>8.4} s");
    println!("  rebuild per variant:        {rebuild_secs:>8.4} s");
    println!("  speedup:                    {speedup:>8.2}x  (max L1 drift {max_l1:.2e})");

    if smoke {
        println!("\n(smoke mode: skipped BENCH_engine.json)");
        return;
    }
    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", corpus.num_articles())
        .field("citations", corpus.num_citations())
        .field("build_secs", build_secs)
        .field("first_solve_secs", first_solve_secs)
        .field("resolve_secs_mean", resolve_secs)
        .field("resolve_samples", mixes.len())
        .field("outer_iterations_first_solve", first.outer.iterations)
        .field("ablation_variants", swept.len())
        .field("ablation_shared_engine_secs", shared_secs)
        .field("ablation_rebuild_per_variant_secs", rebuild_secs)
        .field("ablation_speedup", speedup)
        .field("max_l1_shared_vs_fresh", max_l1)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
