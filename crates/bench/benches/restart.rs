//! Restart economics: what a crash-safe start costs versus the cold
//! rebuild it replaces (DESIGN.md §2.11).
//!
//! ```sh
//! cargo bench -p scholar-bench --bench restart            # full, writes artifact
//! cargo bench -p scholar-bench --bench restart -- --smoke # tiny corpus, CI
//! ```
//!
//! Measures both server boot paths on one corpus. The cold path is what
//! `scholar serve corpus.jsonl` pays with no state dir: parse the corpus
//! from JSONL, then rank it from scratch. The warm path is what
//! `--state` replaces it with: mmap + checksum-verify the snapshot and
//! resume the ranker with no solve. Journal append / replay-decode
//! throughput is measured alongside. The full run asserts the restore is
//! ≥ 50× faster than the cold boot and writes `BENCH_restart.json` at
//! the repo root.

use scholar::core::IncrementalRanker;
use scholar::corpus::loader::{jsonl, LoadOptions};
use scholar::corpus::model::{Article, ArticleId, AuthorId, VenueId};
use scholar::serve::{load_snapshot, write_snapshot, Wal};
use scholar::{Preset, QRankConfig};
use scholar_bench::{smoke_mode, SEED};
use std::time::Instant;

/// The restore must beat the rebuild by at least this factor — the whole
/// point of shipping a snapshot format instead of re-ranking on boot.
const MIN_RESTORE_SPEEDUP: f64 = 50.0;

const WAL_BATCHES: usize = 64;
const BATCH_ARTICLES: usize = 8;

fn journal_batch(tag: usize) -> Vec<Article> {
    (0..BATCH_ARTICLES)
        .map(|j| Article {
            id: ArticleId(0),
            title: format!("restart-bench-{tag}-{j}"),
            year: 2015,
            venue: VenueId(0),
            authors: vec![AuthorId(0)],
            references: vec![ArticleId((tag * BATCH_ARTICLES + j) as u32)],
            merit: None,
        })
        .collect()
}

fn main() {
    let smoke = smoke_mode();
    let (preset, name) =
        if smoke { (Preset::Tiny, "tiny") } else { (Preset::DblpLike, "dblp_like") };
    let corpus = preset.generate(SEED);
    let n = corpus.num_articles();
    println!("corpus: {name} ({n} articles, {} citations)", corpus.num_citations());

    let dir = std::env::temp_dir().join(format!("scholar-restart-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("bench dir");
    let corpus_path = dir.join("corpus.jsonl");
    jsonl::write_jsonl_file(&corpus, &corpus_path).expect("write corpus");
    drop(corpus);

    // The cold path: exactly what `scholar serve corpus.jsonl` does with
    // no state dir — parse the corpus, then rank it from scratch.
    let started = Instant::now();
    let corpus = jsonl::read_jsonl_file(&corpus_path, &LoadOptions::default()).expect("load");
    let cold_load_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let ranker = IncrementalRanker::new(QRankConfig::default(), corpus);
    let cold_rank_secs = started.elapsed().as_secs_f64();
    let cold_boot_secs = cold_load_secs + cold_rank_secs;
    println!("cold boot:        {cold_boot_secs:>9.4} s ({cold_load_secs:.4} s parse + {cold_rank_secs:.4} s rank)");

    // The once-per-publish cost: snapshot write (tmp + fsync + rename).
    let started = Instant::now();
    let generation = write_snapshot(&dir, ranker.corpus(), ranker.result(), 0).expect("snapshot");
    let snapshot_write_secs = started.elapsed().as_secs_f64();
    let snapshot_bytes = std::fs::metadata(dir.join("snapshot.snap")).expect("stat").len();
    println!(
        "snapshot write:   {snapshot_write_secs:>9.4} s ({:.1} MiB, generation {generation:016x})",
        snapshot_bytes as f64 / (1024.0 * 1024.0)
    );

    // The warm path: mmap + checksum-verify + rebuild the ranker state.
    let started = Instant::now();
    let restored = load_snapshot(&dir).expect("restore");
    let ranker2 =
        IncrementalRanker::restore(QRankConfig::default(), restored.corpus, restored.result);
    let restore_secs = started.elapsed().as_secs_f64();
    let restore_speedup = cold_boot_secs / restore_secs;
    println!("mmap restore:     {restore_secs:>9.4} s ({restore_speedup:.0}× the cold boot)");
    assert_eq!(restored.generation, generation, "restore returned a different generation");
    assert_eq!(ranker2.corpus().num_articles(), n, "restore dropped articles");

    // Journal economics: durably acknowledge WAL_BATCHES batches, then
    // decode them back the way a restart would.
    let mut wal = Wal::create(&dir, 0).expect("wal create");
    let started = Instant::now();
    for i in 0..WAL_BATCHES {
        wal.append(&journal_batch(i)).expect("append");
    }
    let wal_append_secs = started.elapsed().as_secs_f64();
    let started = Instant::now();
    let replayed = scholar::serve::wal::replay(&dir, 0).expect("replay");
    let wal_replay_secs = started.elapsed().as_secs_f64();
    assert_eq!(replayed.records.len(), WAL_BATCHES, "replay lost a journaled batch");
    println!(
        "journal:          {:>9.0} appends/s (fsync each), {:.0} batches/s replay decode",
        WAL_BATCHES as f64 / wal_append_secs,
        WAL_BATCHES as f64 / wal_replay_secs
    );

    std::fs::remove_dir_all(&dir).ok();

    if smoke {
        println!("\n(smoke mode: skipped BENCH_restart.json and the speedup assertion)");
        return;
    }

    assert!(
        restore_speedup >= MIN_RESTORE_SPEEDUP,
        "restore is only {restore_speedup:.1}× the cold boot (need ≥ {MIN_RESTORE_SPEEDUP}×)"
    );

    let json = sjson::ObjectBuilder::new()
        .field("corpus", name)
        .field("seed", SEED)
        .field("articles", n)
        .field("cold_load_secs", cold_load_secs)
        .field("cold_rank_secs", cold_rank_secs)
        .field("cold_boot_secs", cold_boot_secs)
        .field("snapshot_write_secs", snapshot_write_secs)
        .field("snapshot_bytes", snapshot_bytes)
        .field("restore_secs", restore_secs)
        .field("restore_speedup", restore_speedup)
        .field("min_restore_speedup", MIN_RESTORE_SPEEDUP)
        .field("wal_batches", WAL_BATCHES)
        .field("wal_appends_per_sec", WAL_BATCHES as f64 / wal_append_secs)
        .field("wal_replay_batches_per_sec", WAL_BATCHES as f64 / wal_replay_secs)
        .build();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_restart.json");
    std::fs::write(path, format!("{}\n", json.to_string_pretty()))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("\nwrote {path}");
}
