//! One function per R-Table / R-Figure (DESIGN.md §4).

use crate::{corpus, snapshot_at_frac, FUTURE_WINDOW_YEARS, SEED};
use scholar::corpus::stats::corpus_stats;
use scholar::eval::experiment::{run_award_experiment, Experiment};
use scholar::eval::groundtruth::{award_set, future_citations};
use scholar::eval::metrics::kendall_tau_b;
use scholar::eval::series::SeriesSet;
use scholar::eval::tables::{fmt_metric, fmt_seconds, Table};
use scholar::{
    Ablation, CitationCount, PageRank, Preset, QRank, QRankConfig, Ranker, TimeWeightedPageRank,
};
use std::time::Instant;

/// R-Table 1: dataset statistics per preset.
pub fn table1() -> Table {
    let mut t = Table::new(
        "R-Table 1: dataset statistics (synthetic substitutes, DESIGN.md §5)",
        &[
            "dataset",
            "articles",
            "citations",
            "authors",
            "venues",
            "years",
            "refs/art",
            "gini",
            "alpha",
        ],
    );
    for preset in Preset::evaluation_suite() {
        let c = corpus(preset);
        let s = corpus_stats(&c);
        t.row(vec![
            preset.name().to_string(),
            s.articles.to_string(),
            s.citations.to_string(),
            s.authors.to_string(),
            s.venues.to_string(),
            format!("{}-{}", s.first_year, s.last_year),
            format!("{:.1}", s.mean_references),
            format!("{:.3}", s.citation_gini),
            s.citation_alpha.map_or("n/a".into(), |a| format!("{a:.2}")),
        ]);
    }
    t
}

/// R-Table 2: ranking quality vs future-citation ground truth, one block
/// per dataset preset.
pub fn table2() -> Vec<Table> {
    Preset::evaluation_suite()
        .iter()
        .map(|&preset| {
            let c = corpus(preset);
            let snap = snapshot_at_frac(&c, 0.8);
            let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
            let exp = Experiment { corpus: &snap.corpus, truth: &truth };
            let rows = exp.run(&scholar::evaluation_rankers());
            let mut t = Table::new(
                &format!(
                    "R-Table 2 [{}]: future-citation prediction ({} articles at cutoff {}, {})",
                    preset.name(),
                    snap.corpus.num_articles(),
                    snap.cutoff,
                    truth.description
                ),
                &["method", "pairwise", "spearman", "kendall", "ndcg@50", "time"],
            );
            for r in rows {
                t.row(vec![
                    r.method,
                    fmt_metric(r.pairwise_accuracy),
                    fmt_metric(r.spearman),
                    fmt_metric(r.kendall),
                    fmt_metric(r.ndcg_at_50),
                    fmt_seconds(r.seconds),
                ]);
            }
            t
        })
        .collect()
}

/// R-Table 3: award-article retrieval (planted-merit awards).
pub fn table3() -> Table {
    let c = corpus(Preset::AanLike);
    let awards = award_set(&c, 5, 0.02);
    let k = awards.len().max(10);
    let rows = run_award_experiment(&c, &awards, &scholar::evaluation_rankers(), k);
    let mut t = Table::new(
        &format!(
            "R-Table 3 [AAN-like]: award-article retrieval ({} awards, k = {k})",
            awards.len()
        ),
        &["method", "P@k", "R@k", "MRR"],
    );
    for r in rows {
        t.row(vec![
            r.method,
            fmt_metric(r.precision_at_k),
            fmt_metric(r.recall_at_k),
            fmt_metric(r.mrr),
        ]);
    }
    t
}

fn robustness_rankers() -> Vec<Box<dyn Ranker>> {
    vec![
        Box::new(CitationCount),
        Box::new(PageRank::default()),
        Box::new(TimeWeightedPageRank::default()),
        Box::new(QRank::default()),
    ]
}

/// R-Table 4: robustness over time — Kendall τ between the ranking
/// computed at a cutoff and the final ranking, over the articles visible
/// at the cutoff.
pub fn table4() -> Table {
    let c = corpus(Preset::AanLike);
    let fracs = [0.6, 0.7, 0.8, 0.9];
    let rankers = robustness_rankers();
    let final_scores: Vec<Vec<f64>> = rankers.iter().map(|r| r.rank(&c)).collect();
    let mut t = Table::new(
        "R-Table 4 [AAN-like]: rank stability — Kendall tau(ranking at cutoff, final ranking)",
        &["method", "60%", "70%", "80%", "90%"],
    );
    let mut rows: Vec<Vec<String>> = rankers.iter().map(|r| vec![r.name()]).collect();
    for &frac in &fracs {
        let snap = snapshot_at_frac(&c, frac);
        for (ri, ranker) in rankers.iter().enumerate() {
            let snap_scores = ranker.rank(&snap.corpus);
            // Gather the final scores of the same (visible) articles.
            let final_sub: Vec<f64> = (0..snap.corpus.num_articles())
                .map(|i| {
                    let full = snap.full_of[i];
                    final_scores[ri][full.index()]
                })
                .collect();
            let tau = kendall_tau_b(&snap_scores, &final_sub);
            rows[ri].push(fmt_metric(tau));
        }
    }
    for row in rows {
        t.row(row);
    }
    t
}

/// R-Table 5: component ablation on future-citation accuracy. The seven
/// variants run through [`Ablation::sweep`], which shares prepared
/// engines between structurally identical variants (two builds total).
pub fn table5() -> Table {
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let base = QRankConfig::default();
    let mut t = Table::new(
        "R-Table 5 [AAN-like]: ablation of QRank components (pairwise accuracy)",
        &["variant", "pairwise", "spearman"],
    );
    for (ab, res) in Ablation::sweep(&base, &snap.corpus) {
        let scores = &res.article_scores;
        t.row(vec![
            ab.name().to_string(),
            fmt_metric(scholar::eval::metrics::pairwise_accuracy_auto(
                &truth.values,
                scores,
                0xfeed,
            )),
            fmt_metric(scholar::eval::metrics::spearman(&truth.values, scores)),
        ]);
    }
    t
}

/// Pairwise accuracy of one config against the standard AAN-like split.
fn accuracy_of(cfg: &QRankConfig, snap_corpus: &scholar::Corpus, truth: &[f64]) -> f64 {
    let scores = QRank::new(cfg.clone()).rank(snap_corpus);
    scholar::eval::metrics::pairwise_accuracy_auto(truth, &scores, 0xfeed)
}

/// R-Fig 1: sensitivity to the edge-decay rate ρ.
pub fn fig1() -> SeriesSet {
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let rhos = [0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.6];
    let mut acc = Vec::new();
    for &rho in &rhos {
        acc.push(accuracy_of(&QRankConfig::default().with_rho(rho), &snap.corpus, &truth.values));
    }
    let mut fig = SeriesSet::new(
        "R-Fig 1 [AAN-like]: pairwise accuracy vs edge-decay rho",
        "rho",
        rhos.to_vec(),
    );
    fig.add("QRank", acc);
    fig
}

/// R-Fig 2: sensitivity over the (λ_P, λ_V, λ_U) simplex (step 0.2).
/// Rendered as one series per λ_V with λ_P on the x-axis. All grid points
/// share one structural configuration, so one prepared engine answers the
/// entire simplex.
pub fn fig2() -> SeriesSet {
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let steps = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let engine = scholar::QRankEngine::build(&snap.corpus, &QRankConfig::default());
    let mut scratch = scholar::core::SolveScratch::new();
    let mut fig = SeriesSet::new(
        "R-Fig 2 [AAN-like]: pairwise accuracy over the lambda simplex (lambda_U = 1 - P - V)",
        "lambda_P",
        steps.to_vec(),
    );
    for &lv in &steps {
        let mut series = Vec::new();
        for &lp in &steps {
            let lu = 1.0 - lp - lv;
            if lu < -1e-9 {
                series.push(f64::NAN);
            } else {
                let cfg = QRankConfig::default().with_lambdas(lp, lv, lu.max(0.0));
                let res =
                    engine.solve_with(&scholar::MixParams::from_config(&cfg), None, &mut scratch);
                series.push(scholar::eval::metrics::pairwise_accuracy_auto(
                    &truth.values,
                    &res.article_scores,
                    0xfeed,
                ));
            }
        }
        fig.add(&format!("lambda_V={lv:.1}"), series);
    }
    fig
}

/// R-Fig 3: convergence — L1 residual per iteration for PageRank, TWPR
/// (inner walk), and QRank's outer reinforcement loop.
pub fn fig3() -> SeriesSet {
    let c = corpus(Preset::AanLike);
    let max_pts = 30usize;
    let pad = |mut v: Vec<f64>| -> Vec<f64> {
        v.truncate(max_pts);
        while v.len() < max_pts {
            v.push(f64::NAN);
        }
        v
    };
    let (_, pr_diag) = PageRank::default().rank_with_diagnostics(&c);
    let (_, twpr_diag) = TimeWeightedPageRank::default().rank_with_diagnostics(&c);
    let qr = QRank::default().run(&c);
    let mut fig = SeriesSet::new(
        "R-Fig 3 [AAN-like]: L1 residual by iteration",
        "iteration",
        (1..=max_pts).map(|i| i as f64).collect(),
    );
    fig.add("PageRank", pad(pr_diag.residuals));
    fig.add("TWPR", pad(twpr_diag.residuals));
    fig.add("QRank outer", pad(qr.outer.residuals));
    fig
}

/// R-Fig 4a: wall-time vs corpus size (citation-edge count) for PageRank
/// and QRank. R-Fig 4b: wall-time vs thread count for the article walk on
/// the MAG-like corpus.
pub fn fig4() -> (SeriesSet, SeriesSet) {
    // --- 4a: size scaling. ---
    let rates = [40.0, 80.0, 160.0, 300.0];
    let mut edges_axis = Vec::new();
    let mut pr_times = Vec::new();
    let mut qr_times = Vec::new();
    for &rate in &rates {
        let cfg = scholar::GeneratorConfig {
            initial_articles_per_year: rate,
            ..Preset::MagLike.config(SEED)
        };
        let c = scholar::corpus::CorpusGenerator::new(cfg).generate();
        edges_axis.push(c.num_citations() as f64);
        let t0 = Instant::now();
        let _ = PageRank::default().rank(&c);
        pr_times.push(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        let _ = QRank::default().rank(&c);
        qr_times.push(t1.elapsed().as_secs_f64());
    }
    let mut fig_a = SeriesSet::new(
        "R-Fig 4a [MAG-like family]: wall seconds vs citation count",
        "citations",
        edges_axis,
    );
    fig_a.add("PageRank", pr_times);
    fig_a.add("QRank", qr_times);

    // --- 4b: thread scaling of the walk kernel itself (graph build and
    // operator setup excluded — those are one-time costs). ---
    let c = corpus(Preset::MagLike);
    let g = c.citation_graph();
    let op = sgraph::RowStochastic::new(&g);
    let n = g.len();
    let mut x = vec![1.0; n];
    sgraph::stochastic::normalize_l1(&mut x);
    let mut y = vec![0.0; n];
    let steps = 50;
    let threads = [1usize, 2, 4, 8];
    let mut times = Vec::new();
    for &th in &threads {
        let t0 = Instant::now();
        for _ in 0..steps {
            op.apply_parallel(&x, &mut y, 0.85, &sgraph::JumpVector::Uniform, th);
            std::mem::swap(&mut x, &mut y);
        }
        times.push(t0.elapsed().as_secs_f64());
    }
    let mut fig_b = SeriesSet::new(
        &format!(
            "R-Fig 4b [MAG-like]: {steps} walk steps ({} edges), wall seconds vs threads",
            g.num_edges()
        ),
        "threads",
        threads.iter().map(|&t| t as f64).collect(),
    );
    fig_b.add("walk kernel", times);
    (fig_a, fig_b)
}

/// R-Fig 5: cold start — pairwise accuracy restricted to articles at most
/// `k` years old at the cutoff, per method.
pub fn fig5() -> SeriesSet {
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let ages: Vec<i32> = (1..=8).collect();
    let rankers: Vec<Box<dyn Ranker>> = scholar::evaluation_rankers();
    // Pre-rank once per method; slice per age bucket.
    let all_scores: Vec<Vec<f64>> = rankers.iter().map(|r| r.rank(&snap.corpus)).collect();
    let mut fig = SeriesSet::new(
        "R-Fig 5 [AAN-like]: pairwise accuracy on articles <= k years old at cutoff",
        "max age (years)",
        ages.iter().map(|&a| a as f64).collect(),
    );
    for (ri, ranker) in rankers.iter().enumerate() {
        let mut series = Vec::new();
        for &age in &ages {
            let keep: Vec<usize> = snap
                .corpus
                .articles()
                .iter()
                .filter(|a| snap.cutoff - a.year < age)
                .map(|a| a.id.index())
                .collect();
            let sub_truth: Vec<f64> = keep.iter().map(|&i| truth.values[i]).collect();
            let sub_scores: Vec<f64> = keep.iter().map(|&i| all_scores[ri][i]).collect();
            series.push(scholar::eval::metrics::pairwise_accuracy_auto(
                &sub_truth,
                &sub_scores,
                0xfeed,
            ));
        }
        fig.add(&ranker.name(), series);
    }
    fig
}

/// R-Fig 7: robustness to citation sparsity — Kendall τ between each
/// method's ranking on a subsampled corpus and its ranking on the full
/// corpus, as the kept fraction of citations varies.
pub fn fig7() -> SeriesSet {
    let c = corpus(Preset::AanLike);
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    let rankers = robustness_rankers();
    let full_scores: Vec<Vec<f64>> = rankers.iter().map(|r| r.rank(&c)).collect();
    let mut fig = SeriesSet::new(
        "R-Fig 7 [AAN-like]: rank stability under citation subsampling (tau vs full ranking)",
        "kept fraction",
        fractions.to_vec(),
    );
    for (ri, ranker) in rankers.iter().enumerate() {
        let mut series = Vec::new();
        for &f in &fractions {
            let sparse = scholar::corpus::perturb::sample_citations(&c, f, SEED);
            let scores = ranker.rank(&sparse);
            series.push(kendall_tau_b(&scores, &full_scores[ri]));
        }
        fig.add(&ranker.name(), series);
    }
    fig
}

/// R-Fig 8: incremental updates — inner-walk iterations needed per yearly
/// corpus growth step, cold start vs warm start from the previous year's
/// scores.
pub fn fig8() -> SeriesSet {
    use scholar::corpus::snapshot_until;
    let c = corpus(Preset::AanLike);
    let (_, last) = c.year_range().unwrap();
    let years: Vec<i32> = ((last - 6)..=last).collect();
    let config = scholar::QRankConfig::default();

    let mut cold_iters = Vec::new();
    let mut warm_iters = Vec::new();
    let mut prev: Option<(scholar::corpus::Snapshot, Vec<f64>)> = None;
    for &y in &years {
        let snap = snapshot_until(&c, y);
        let cold = QRank::new(config.clone()).run(&snap.corpus);
        cold_iters.push(cold.twpr_diagnostics.iterations as f64);
        match &prev {
            None => warm_iters.push(f64::NAN),
            Some((prev_snap, prev_scores)) => {
                // Map last year's scores into this year's id space.
                let mut warm = vec![0.0; snap.corpus.num_articles()];
                for (i, &score) in prev_scores.iter().enumerate() {
                    let full_id = prev_snap.full_of[i];
                    if let Some(id) = snap.to_snapshot(full_id) {
                        warm[id.index()] = score;
                    }
                }
                let warm_run = QRank::new(config.clone()).run_warm(&snap.corpus, Some(warm));
                warm_iters.push(warm_run.twpr_diagnostics.iterations as f64);
            }
        }
        prev = Some((snap, cold.article_scores));
    }
    let mut fig = SeriesSet::new(
        "R-Fig 8 [AAN-like]: inner-walk iterations per yearly update, cold vs warm start",
        "snapshot year",
        years.iter().map(|&y| y as f64).collect(),
    );
    fig.add("cold start", cold_iters);
    fig.add("warm start", warm_iters);
    fig
}

/// R-Table 6: extended baselines (bibliometric normalizations and the
/// Monte-Carlo PageRank approximation) on the standard AAN-like split.
pub fn table6() -> Table {
    use scholar::rank::{
        AgeNormalizedCitations, FusedRanker, FusionRule, MonteCarloPageRank, RecentCitations,
        RescaledRanker,
    };
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let exp = Experiment { corpus: &snap.corpus, truth: &truth };
    let rankers: Vec<Box<dyn Ranker>> = vec![
        Box::new(CitationCount),
        Box::new(AgeNormalizedCitations::default()),
        Box::new(RecentCitations::default()),
        Box::new(MonteCarloPageRank::default()),
        Box::new(PageRank::default()),
        Box::new(RescaledRanker::new(Box::new(PageRank::default()), 3)),
        Box::new(TimeWeightedPageRank::default()),
        Box::new(QRank::default()),
        Box::new(FusedRanker::new(
            vec![Box::new(QRank::default()), Box::new(RecentCitations::default())],
            FusionRule::default(),
        )),
    ];
    let rows = exp.run(&rankers);
    let mut t = Table::new(
        "R-Table 6 [AAN-like]: extended baselines, future-citation prediction",
        &["method", "pairwise", "spearman", "kendall", "ndcg@50", "time"],
    );
    for r in rows {
        t.row(vec![
            r.method,
            fmt_metric(r.pairwise_accuracy),
            fmt_metric(r.spearman),
            fmt_metric(r.kendall),
            fmt_metric(r.ndcg_at_50),
            fmt_seconds(r.seconds),
        ]);
    }
    t
}

/// R-Table 2b: paired-bootstrap significance of each method's Spearman
/// advantage over PageRank on the AAN-like future-citation split.
pub fn significance() -> Table {
    use scholar::eval::significance::{paired_bootstrap, BootstrapMetric};
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);
    let baseline = PageRank::default().rank(&snap.corpus);
    let mut t = Table::new(
        "R-Table 2b [AAN-like]: paired bootstrap (Spearman delta vs PageRank, 1000 replicates)",
        &["method", "delta", "95% CI low", "95% CI high", "p", "significant"],
    );
    for ranker in scholar::evaluation_rankers() {
        if ranker.name() == "PageRank" {
            continue;
        }
        let scores = ranker.rank(&snap.corpus);
        let res = paired_bootstrap(
            &truth.values,
            &scores,
            &baseline,
            BootstrapMetric::Spearman,
            1000,
            0xb007,
        );
        t.row(vec![
            ranker.name(),
            format!("{:+.4}", res.observed_delta),
            format!("{:+.4}", res.ci_low),
            format!("{:+.4}", res.ci_high),
            format!("{:.3}", res.p_value),
            if res.significant() { "yes".into() } else { "no".into() },
        ]);
    }
    t
}

/// R-Fig 9: solver comparison — L1 residual per iteration/sweep for power
/// iteration vs Gauss–Seidel on the AAN-like citation graph.
pub fn fig9() -> SeriesSet {
    use sgraph::solver::{gauss_seidel, GaussSeidelOpts};
    use sgraph::stochastic::PowerIterationOpts;
    let c = corpus(Preset::AanLike);
    let g = c.citation_graph();
    let power = sgraph::RowStochastic::new(&g)
        .stationary(&PowerIterationOpts { tol: 1e-12, ..Default::default() });
    let gs = gauss_seidel(&g, &GaussSeidelOpts { tol: 1e-12, ..Default::default() });
    let max_pts = 40usize.min(power.residuals.len().max(gs.residuals.len()));
    let pad = |mut v: Vec<f64>| -> Vec<f64> {
        v.truncate(max_pts);
        while v.len() < max_pts {
            v.push(f64::NAN);
        }
        v
    };
    let mut fig = SeriesSet::new(
        "R-Fig 9 [AAN-like]: solver comparison, L1 residual per iteration (d = 0.85)",
        "iteration",
        (1..=max_pts).map(|i| i as f64).collect(),
    );
    fig.add("power iteration", pad(power.residuals));
    fig.add("Gauss-Seidel", pad(gs.residuals));
    fig
}

/// R-Table 8: temporal cross-validation — the R-Table 2 evaluation
/// repeated at five cutoffs (60%–90% of the timeline), mean ± std per
/// method. Guards against a single lucky split.
pub fn table8() -> Table {
    let c = corpus(Preset::AanLike);
    let rows = scholar::eval::run_temporal_cv(
        &c,
        &scholar::evaluation_rankers(),
        &[0.6, 0.675, 0.75, 0.825, 0.9],
        FUTURE_WINDOW_YEARS,
    );
    let mut t = Table::new(
        "R-Table 8 [AAN-like]: temporal cross-validation over 5 cutoffs (mean ± std)",
        &["method", "pairwise", "spearman", "folds"],
    );
    for r in rows {
        t.row(vec![
            r.method,
            format!("{:.4} ± {:.4}", r.mean_pairwise, r.std_pairwise),
            format!("{:.4} ± {:.4}", r.mean_spearman, r.std_spearman),
            r.folds.to_string(),
        ]);
    }
    t
}

/// R-Table 7: score-distribution concentration per method (AAN-like).
pub fn table7() -> Table {
    let c = corpus(Preset::AanLike);
    let mut t = Table::new(
        "R-Table 7 [AAN-like]: score concentration per method",
        &["method", "gini", "top1% mass", "top10% mass", "max/mean", "dead tail"],
    );
    for ranker in scholar::evaluation_rankers() {
        let scores = ranker.rank(&c);
        let Some(s) = scholar::eval::score_stats::score_stats(&scores) else {
            continue;
        };
        t.row(vec![
            ranker.name(),
            format!("{:.3}", s.gini),
            format!("{:.3}", s.top1pct_mass),
            format!("{:.3}", s.top10pct_mass),
            format!("{:.0}", s.max_over_mean),
            format!("{:.3}", s.dead_tail_fraction),
        ]);
    }
    t
}

/// R-Fig 6: sensitivity to damping d and jump recency τ.
pub fn fig6() -> (SeriesSet, SeriesSet) {
    let c = corpus(Preset::AanLike);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);

    let dampings = [0.5, 0.65, 0.8, 0.85, 0.9, 0.95];
    let mut d_acc = Vec::new();
    for &d in &dampings {
        d_acc.push(accuracy_of(
            &QRankConfig::default().with_damping(d),
            &snap.corpus,
            &truth.values,
        ));
    }
    let mut fig_d = SeriesSet::new(
        "R-Fig 6a [AAN-like]: pairwise accuracy vs damping",
        "damping",
        dampings.to_vec(),
    );
    fig_d.add("QRank", d_acc);

    let taus = [0.0, 0.025, 0.05, 0.1, 0.2, 0.4];
    let mut t_acc = Vec::new();
    for &tau in &taus {
        t_acc.push(accuracy_of(&QRankConfig::default().with_tau(tau), &snap.corpus, &truth.values));
    }
    let mut fig_t = SeriesSet::new(
        "R-Fig 6b [AAN-like]: pairwise accuracy vs jump recency tau",
        "tau",
        taus.to_vec(),
    );
    fig_t.add("QRank", t_acc);
    (fig_d, fig_t)
}
