//! `repro` — regenerate every R-Table and R-Figure of the reconstructed
//! evaluation (DESIGN.md §4).
//!
//! ```sh
//! cargo run --release -p scholar-bench --bin repro -- all
//! cargo run --release -p scholar-bench --bin repro -- table2 fig5
//! ```
//!
//! Output goes to stdout and, per artifact, to `results/<id>.txt` (and
//! `.csv` for figures).

use scholar_bench::experiments;
use std::fs;
use std::path::PathBuf;

fn results_dir() -> PathBuf {
    let dir = PathBuf::from("results");
    fs::create_dir_all(&dir).expect("cannot create results/");
    dir
}

fn save(id: &str, text: &str) {
    let path = results_dir().join(format!("{id}.txt"));
    fs::write(&path, text).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

fn save_csv(id: &str, csv: &str) {
    let path = results_dir().join(format!("{id}.csv"));
    fs::write(&path, csv).unwrap_or_else(|e| panic!("cannot write {path:?}: {e}"));
}

fn run_one(id: &str) {
    let t0 = std::time::Instant::now();
    match id {
        "table1" => {
            let t = experiments::table1();
            println!("{t}");
            save(id, &t.render());
        }
        "table2" => {
            let mut all = String::new();
            for t in experiments::table2() {
                println!("{t}");
                all.push_str(&t.render());
                all.push('\n');
            }
            save(id, &all);
        }
        "table3" => {
            let t = experiments::table3();
            println!("{t}");
            save(id, &t.render());
        }
        "table4" => {
            let t = experiments::table4();
            println!("{t}");
            save(id, &t.render());
        }
        "table5" => {
            let t = experiments::table5();
            println!("{t}");
            save(id, &t.render());
        }
        "fig1" => {
            let f = experiments::fig1();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig2" => {
            let f = experiments::fig2();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig3" => {
            let f = experiments::fig3();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig4" => {
            let (a, b) = experiments::fig4();
            println!("{a}\n{b}");
            save(id, &format!("{}\n{}", a.render(), b.render()));
            save_csv("fig4a", &a.to_csv());
            save_csv("fig4b", &b.to_csv());
        }
        "fig5" => {
            let f = experiments::fig5();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig6" => {
            let (a, b) = experiments::fig6();
            println!("{a}\n{b}");
            save(id, &format!("{}\n{}", a.render(), b.render()));
            save_csv("fig6a", &a.to_csv());
            save_csv("fig6b", &b.to_csv());
        }
        "fig7" => {
            let f = experiments::fig7();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig8" => {
            let f = experiments::fig8();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "fig9" => {
            let f = experiments::fig9();
            println!("{f}");
            save(id, &f.render());
            save_csv(id, &f.to_csv());
        }
        "table6" => {
            let t = experiments::table6();
            println!("{t}");
            save(id, &t.render());
        }
        "table7" => {
            let t = experiments::table7();
            println!("{t}");
            save(id, &t.render());
        }
        "sig" => {
            let t = experiments::significance();
            println!("{t}");
            save(id, &t.render());
        }
        "table8" => {
            let t = experiments::table8();
            println!("{t}");
            save(id, &t.render());
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("known: {}", ALL.join(" "));
            std::process::exit(2);
        }
    }
    eprintln!("[{id} done in {:.1}s]\n", t0.elapsed().as_secs_f64());
}

const ALL: &[&str] = &[
    "table1", "table2", "sig", "table3", "table4", "table5", "table6", "table7", "table8", "fig1",
    "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <experiment>... | all");
        eprintln!("experiments: {}", ALL.join(" "));
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        ALL.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in ids {
        run_one(id);
    }
}
