//! `tune` — side-by-side view of overall vs cold-start accuracy for a
//! grid of QRank configurations on the AAN-like validation split. This is
//! the tool the shipped defaults were chosen with (see EXPERIMENTS.md
//! "default selection").
//!
//! Every grid point differs only in mixture parameters (λs, σ), so the
//! whole sweep shares one prepared [`QRankEngine`]: the graphs, operators
//! and walks are built once and each configuration costs only the cheap
//! outer fixpoint.
//!
//! ```sh
//! cargo run --release -p scholar-bench --bin tune
//! ```

use scholar::core::SolveScratch;
use scholar::eval::groundtruth::future_citations;
use scholar::eval::metrics::pairwise_accuracy_auto;
use scholar::eval::tables::{fmt_metric, Table};
use scholar::{MixParams, Preset, QRankConfig, QRankEngine};
use scholar_bench::{snapshot_at_frac, FUTURE_WINDOW_YEARS, SEED};

fn main() {
    let c = Preset::AanLike.generate(SEED);
    let snap = snapshot_at_frac(&c, 0.8);
    let truth = future_citations(&c, &snap, FUTURE_WINDOW_YEARS);

    let young: Vec<usize> = snap
        .corpus
        .articles()
        .iter()
        .filter(|a| snap.cutoff - a.year < 2)
        .map(|a| a.id.index())
        .collect();
    let slice = |scores: &[f64], keep: &[usize]| -> f64 {
        let t: Vec<f64> = keep.iter().map(|&i| truth.values[i]).collect();
        let p: Vec<f64> = keep.iter().map(|&i| scores[i]).collect();
        pairwise_accuracy_auto(&t, &p, 0xfeed)
    };

    let mut table = Table::new(
        "QRank configuration sweep: overall vs cold-start (age < 2y) pairwise accuracy",
        &["config", "overall", "cold-start"],
    );

    // One engine serves the whole grid: λ/σ are mixture-only parameters.
    let engine = QRankEngine::build(&snap.corpus, &QRankConfig::default());
    let mut scratch = SolveScratch::new();

    // Reference: pure TWPR — exactly the engine's cached inner walk.
    let (twpr, _) = engine.twpr();
    table.row(vec![
        "TWPR (reference)".into(),
        fmt_metric(pairwise_accuracy_auto(&truth.values, twpr, 0xfeed)),
        fmt_metric(slice(twpr, &young)),
    ]);

    for (lp, lv, lu) in [
        (0.95, 0.03, 0.02),
        (0.9, 0.1, 0.0),
        (0.85, 0.15, 0.0),
        (0.8, 0.2, 0.0),
        (0.9, 0.05, 0.05),
        (0.85, 0.10, 0.05),
        (0.8, 0.1, 0.1),
        (0.7, 0.15, 0.15),
        (0.6, 0.2, 0.2),
    ] {
        for sigma in [0.0, 3.0] {
            let cfg = QRankConfig::default().with_lambdas(lp, lv, lu).with_maturity(sigma);
            let result = engine.solve_with(&MixParams::from_config(&cfg), None, &mut scratch);
            table.row(vec![
                format!("λ=({lp:.2},{lv:.2},{lu:.2}) σ={sigma:.0}"),
                fmt_metric(pairwise_accuracy_auto(&truth.values, &result.article_scores, 0xfeed)),
                fmt_metric(slice(&result.article_scores, &young)),
            ]);
        }
    }
    println!("{table}");
}
