#![warn(missing_docs)]

//! Shared experiment machinery for the `repro` binary and the wall-clock
//! benches. Every R-Table / R-Figure of DESIGN.md §4 has one function
//! here that produces its rendered form; `repro` dispatches on the
//! command line and writes results under `results/`.

pub mod experiments;

use scholar::corpus::Snapshot;
use scholar::{Corpus, Preset};

/// Fixed seed used by every experiment so EXPERIMENTS.md numbers are
/// exactly reproducible.
pub const SEED: u64 = 20180416; // ICDE 2018 main-conference date

/// Generate the corpus for a preset with the experiment seed.
pub fn corpus(preset: Preset) -> Corpus {
    preset.generate(SEED)
}

/// Snapshot a corpus at a fraction of its year span (0.8 = last 20% of
/// the timeline held out).
pub fn snapshot_at_frac(corpus: &Corpus, frac: f64) -> Snapshot {
    assert!((0.0..=1.0).contains(&frac), "fraction must be in [0, 1]");
    let (first, last) = corpus.year_range().expect("non-empty corpus");
    let cutoff = first + ((last - first) as f64 * frac).round() as i32;
    scholar::corpus::snapshot_until(corpus, cutoff)
}

/// The held-out future window (years) used by the future-citation ground
/// truth throughout the evaluation.
pub const FUTURE_WINDOW_YEARS: i32 = 5;

/// True when the bench binary was invoked with `--smoke` (reachable as
/// `cargo bench -p scholar-bench --bench <name> -- --smoke`): bench mains
/// shrink their corpora and iteration counts so every target finishes in
/// seconds, and skip writing `BENCH_*.json` so smoke numbers never
/// clobber real ones. Used by the CI smoke job.
pub fn smoke_mode() -> bool {
    std::env::args().any(|a| a == "--smoke")
}

/// Mean wall-clock seconds per call of `f` over `iters` timed runs,
/// after one untimed warmup run. The dependency-free replacement for the
/// Criterion harness in the `benches/` targets.
pub fn time_secs<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    assert!(iters > 0, "need at least one timed iteration");
    std::hint::black_box(f());
    let t0 = std::time::Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_fraction_math() {
        let c = corpus(Preset::Tiny);
        let snap = snapshot_at_frac(&c, 0.8);
        let (first, last) = c.year_range().unwrap();
        assert!(snap.cutoff > first && snap.cutoff < last);
        assert!(snap.corpus.num_articles() < c.num_articles());
        let all = snapshot_at_frac(&c, 1.0);
        assert_eq!(all.corpus.num_articles(), c.num_articles());
    }
}
