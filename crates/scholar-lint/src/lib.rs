#![warn(missing_docs)]
#![forbid(unsafe_code)]

//! # scholar-lint — workspace invariant checker
//!
//! The reproduction's load-bearing properties — bit-identical ranks at
//! any thread count, a serve path that answers `4xx`/`5xx` instead of
//! panicking, a failpoint catalogue that matches reality — are exactly
//! the invariants `clippy` cannot see, because they are *this
//! workspace's* contracts, not the language's. This crate is a
//! dependency-free static-analysis pass that encodes them as nine
//! machine-checked rules over a hand-rolled, literal-aware Rust lexer —
//! five token-level, and four interprocedural rules over a
//! name-resolved workspace call graph ([`items`] + [`callgraph`]):
//!
//! | rule | invariant |
//! |---|---|
//! | `DETERMINISM` | no `HashMap`/`HashSet`/`RandomState`/`SystemTime`/`Instant::now` in the score-producing crates (`sgraph`, `scholar-rank`, `core`) — `srand` is the only sanctioned randomness |
//! | `HOTPATH-PANIC` | no `unwrap`/`expect`/`panic!`-family/slice-index in `scholar-serve` production code — errors must flow to the 4xx/5xx counters |
//! | `FAILPOINT-SYNC` | `failpoint!` sites in code ≡ `scholar_testkit::fp::SITES` ≡ the DESIGN.md §2.7 table, bijectively |
//! | `SAFETY-COMMENT` | every `unsafe` is preceded (or trailed on its line) by a `// SAFETY:` comment |
//! | `BENCH-SCHEMA` | every `BENCH_*.json` writer emits the shared key set, so the perf trajectory stays diffable |
//! | `LOCK-ORDER` | the workspace's Mutex/RwLock acquisition digraph, propagated through the call graph, stays acyclic — no potential deadlocks |
//! | `ATOMIC-ORDERING` | every `Ordering::Relaxed` in the serve/score-publishing crates carries a reasoned `// ORDERING:` comment, and publish/consume pairs on one atomic field use Release/Acquire-compatible orderings |
//! | `DURABILITY-PROTOCOL` | rename-into-published-path reaches fsync of file (before) and directory (after), transitively; WAL append fsyncs before the send |
//! | `BLOCKING-IN-EVENT-LOOP` | no fsync / blocking lock / unbounded read / filesystem call reachable from the epoll `drive` loop |
//!
//! Exceptions are spelled in-source — `// lint: allow(RULE-ID) reason`
//! — and are themselves policed: a missing reason is `ALLOW-SYNTAX`, an
//! allow that suppresses nothing is `ALLOW-UNUSED`. See [`source`] for
//! the exact syntax.
//!
//! Run it three ways: `cargo run -p scholar-lint -- check` (CI's lint
//! step), the workspace test in `tests/workspace_clean.rs` (fails the
//! default test suite on any undocumented diagnostic), or
//! [`check_workspace`] from code.

pub mod callgraph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use source::AllowScope;
use std::fmt;
use std::io;
use std::path::Path;
use workspace::Workspace;

/// The rule identifiers an allowlist entry may name.
pub const RULES: [&str; 9] = [
    "DETERMINISM",
    "HOTPATH-PANIC",
    "FAILPOINT-SYNC",
    "SAFETY-COMMENT",
    "BENCH-SCHEMA",
    "LOCK-ORDER",
    "ATOMIC-ORDERING",
    "DURABILITY-PROTOCOL",
    "BLOCKING-IN-EVENT-LOOP",
];

/// One finding, rendered as `file:line:col [RULE-ID] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule identifier (one of [`RULES`], `ALLOW-SYNTAX`, or
    /// `ALLOW-UNUSED`).
    pub rule: String,
    /// Human-readable explanation, including how to fix or allowlist.
    pub message: String,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(path: &str, line: u32, col: u32, rule: &str, message: impl Into<String>) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            col,
            rule: rule.to_string(),
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{} [{}] {}", self.path, self.line, self.col, self.rule, self.message)
    }
}

/// Run every rule over the workspace at `root` and return the surviving
/// diagnostics: rule findings not covered by an allowlist entry, plus
/// allowlist hygiene findings (`ALLOW-SYNTAX`, `ALLOW-UNUSED`). Sorted
/// by path, line, column, rule.
pub fn check_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let ws = Workspace::load(root)?;
    let mut raw = Vec::new();
    rules::run_all(&ws, &mut raw);
    let mut out = apply_allows(&ws, raw);
    for f in &ws.files {
        out.extend(f.allow_issues.iter().cloned());
    }
    out.sort_by(|a, b| (&a.path, a.line, a.col, &a.rule).cmp(&(&b.path, b.line, b.col, &b.rule)));
    Ok(out)
}

/// Drop diagnostics covered by allowlist entries; report entries that
/// covered nothing.
fn apply_allows(ws: &Workspace, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut used = vec![Vec::new(); ws.files.len()];
    for (fi, f) in ws.files.iter().enumerate() {
        used[fi] = vec![false; f.allows.len()];
    }
    let mut kept = Vec::new();
    'diags: for d in raw {
        if let Some(fi) = ws.files.iter().position(|f| f.rel_path == d.path) {
            for (ai, a) in ws.files[fi].allows.iter().enumerate() {
                let covers = a.rule == d.rule
                    && match a.scope {
                        AllowScope::File => true,
                        AllowScope::Line(l) => l == d.line,
                    };
                if covers {
                    used[fi][ai] = true;
                    continue 'diags;
                }
            }
        }
        kept.push(d);
    }
    for (fi, f) in ws.files.iter().enumerate() {
        for (ai, a) in f.allows.iter().enumerate() {
            if !used[fi][ai] {
                kept.push(Diagnostic::new(
                    &f.rel_path,
                    a.line,
                    a.col,
                    "ALLOW-UNUSED",
                    format!(
                        "allow({}) suppresses nothing — the violation it excused is gone; delete the allow",
                        a.rule
                    ),
                ));
            }
        }
    }
    kept
}
