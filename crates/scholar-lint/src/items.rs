//! A lightweight item parser over the lexer: extracts every production
//! `fn` with its body token range, so interprocedural rules can reason
//! about *functions* instead of raw token streams.
//!
//! This is deliberately not a Rust parser. It recognizes exactly the
//! shape the call-graph rules need — `fn name … { body }` — by scanning
//! for the `fn` keyword and brace-matching the body. Trait method
//! *declarations* (`fn f(…);`) have no body and are skipped. Function
//! pointer types (`fn(u32)`) have no name and are skipped. `#[cfg(test)]`
//! items are already masked by [`crate::source`], so test helpers never
//! become call-graph nodes.
//!
//! Bodies can nest (closures are transparent, nested `fn`s are their own
//! items); [`FnTable::innermost_at`] attributes a token to the innermost
//! function holding it, so a nested helper's tokens are never charged to
//! its parent.

use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;
use std::ops::Range;

/// One parsed function item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name (identifier after `fn`).
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// Crate directory name (e.g. `scholar-serve`), when under `crates/`.
    pub crate_name: Option<String>,
    /// Token range of the body, *excluding* the outer braces.
    pub body: Range<usize>,
    /// 1-based line of the name token (where diagnostics anchor).
    pub line: u32,
    /// 1-based column of the name token.
    pub col: u32,
}

/// Every function in the workspace, in file order.
#[derive(Debug)]
pub struct FnTable {
    /// The parsed items. Indices into this vec are the node ids the
    /// call graph uses.
    pub fns: Vec<FnItem>,
}

impl FnTable {
    /// Parse every file in the workspace.
    pub fn build(ws: &Workspace) -> FnTable {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            collect_fns(file, fi, &mut fns);
        }
        FnTable { fns }
    }

    /// The innermost function whose body contains token `tok` of file
    /// `file`, if any.
    pub fn innermost_at(&self, file: usize, tok: usize) -> Option<usize> {
        self.fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file == file && f.body.contains(&tok))
            .min_by_key(|(_, f)| f.body.end - f.body.start)
            .map(|(id, _)| id)
    }

    /// Ids of every function named `name` in crate `krate`.
    pub fn by_name_in_crate<'a>(
        &'a self,
        name: &'a str,
        krate: &'a str,
    ) -> impl Iterator<Item = usize> + 'a {
        self.fns
            .iter()
            .enumerate()
            .filter(move |(_, f)| f.name == name && f.crate_name.as_deref() == Some(krate))
            .map(|(id, _)| id)
    }
}

/// Scan one file for `fn` items (production code only).
fn collect_fns(file: &SourceFile, file_idx: usize, out: &mut Vec<FnItem>) {
    let toks = &file.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") || file.test_mask[i] {
            i += 1;
            continue;
        }
        // Name: the next non-comment token must be an identifier (a `(`
        // here means a function-pointer type, not an item).
        let Some(name_idx) = next_code(toks, i + 1) else { break };
        if toks[name_idx].kind != TokenKind::Ident {
            i = name_idx;
            continue;
        }
        // Body: first `{` at paren/bracket depth 0 after the signature.
        // A `;` first means a bodyless trait declaration.
        let mut j = name_idx + 1;
        let mut depth = 0i32;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == TokenKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => {
                        body_open = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(open) = body_open else {
            i = j + 1;
            continue;
        };
        let close = matching_brace(toks, open);
        out.push(FnItem {
            name: toks[name_idx].text.clone(),
            file: file_idx,
            crate_name: file.crate_name.clone(),
            body: open + 1..close,
            line: toks[name_idx].line,
            col: toks[name_idx].col,
        });
        // Continue *inside* the body so nested fns are found too.
        i = open + 1;
    }
}

/// Index of the `}` matching the `{` at `open` (or end of input).
pub fn matching_brace(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Next non-comment token index at or after `i`.
pub fn next_code(toks: &[Token], i: usize) -> Option<usize> {
    (i..toks.len()).find(|&j| !toks[j].is_comment())
}

/// Previous non-comment token index strictly before `i`.
pub fn prev_code(toks: &[Token], i: usize) -> Option<usize> {
    (0..i).rev().find(|&j| !toks[j].is_comment())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(src: &str) -> (Workspace, FnTable) {
        let file = SourceFile::parse("crates/app/src/lib.rs", src);
        let ws = Workspace { root: std::path::PathBuf::new(), files: vec![file], design: None };
        let table = FnTable::build(&ws);
        (ws, table)
    }

    #[test]
    fn finds_free_and_impl_fns() {
        let src = "fn top() { helper(); }\nstruct S;\nimpl S {\n  fn method(&self) -> u32 { 7 }\n}\nfn helper() {}";
        let (_, t) = table(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["top", "method", "helper"]);
    }

    #[test]
    fn skips_bodyless_decls_and_fn_pointer_types() {
        let src = "trait T { fn decl(&self); }\nfn takes(f: fn(u32) -> u32) { f(1); }";
        let (_, t) = table(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["takes"]);
    }

    #[test]
    fn nested_fn_is_its_own_item_and_innermost_wins() {
        let src = "fn outer() {\n  fn inner() { let x = 1; }\n  inner();\n}";
        let (ws, t) = table(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        let x_tok = ws.files[0].tokens.iter().position(|tk| tk.is_ident("x")).unwrap();
        let owner = t.innermost_at(0, x_tok).unwrap();
        assert_eq!(t.fns[owner].name, "inner");
        let call_tok = ws.files[0]
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, tk)| tk.is_ident("inner"))
            .map(|(i, _)| i)
            .next_back()
            .unwrap();
        assert_eq!(t.fns[t.innermost_at(0, call_tok).unwrap()].name, "outer");
    }

    #[test]
    fn cfg_test_fns_are_not_items() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn helper() {}\n}";
        let (_, t) = table(src);
        let names: Vec<&str> = t.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live"]);
    }

    #[test]
    fn where_clause_and_array_return_do_not_confuse_the_body_scan() {
        let src = "fn g<T>(x: T) -> [u8; 2] where T: Clone { [0, 1] }";
        let (ws, t) = table(src);
        assert_eq!(t.fns.len(), 1);
        let body = &t.fns[0].body;
        assert!(ws.files[0].tokens[body.clone()].iter().any(|tk| tk.is_punct("[")));
    }
}
