//! A name-resolved intra-workspace call graph over [`crate::items`].
//!
//! Resolution is deliberately conservative and purely lexical:
//!
//! - A call site is an identifier followed by `(` that is not a macro
//!   (`name!(…)`), not a definition (`fn name(`), and not a keyword.
//! - Direct calls (`helper()`) resolve same-file first, then
//!   same-crate, then workspace-wide; method calls (`x.helper()`)
//!   resolve same-file then same-crate **only** — a bare method name
//!   matching some other crate's function is almost always a std
//!   method (`Vec::extend`, `HashMap::clear`) colliding with a
//!   workspace name, and a wrong edge manufactures findings while a
//!   missing edge only weakens them. At every level the name must be
//!   **unique** or the call stays unresolved.
//! - A path call's qualifier is the router: leading `crate`/`self`/
//!   `super`/`Self` segments are stripped; a segment naming a
//!   workspace crate (`scholar_corpus::load_jsonl(…)`) restricts the
//!   search to that crate; otherwise the last segment must name a
//!   module file (or its directory, or a type whose lowercase matches
//!   one — `Wal::create` → `wal.rs`) in the *same* crate. Anything
//!   else (`thread::spawn`, `fs::rename`, `mem::take`) is external and
//!   never resolves.
//! - Direct calls to `let`-bound names (closures, function-pointer
//!   locals) are *shadowed*: they never resolve to a workspace fn.
//! - Atomic operations (`x.load(Ordering::Acquire)`,
//!   `x.fetch_add(1, RELAXED)`) look like method calls but target
//!   `std::sync::atomic`, not the workspace; any call with a memory-
//!   ordering argument (literal path or a resolved alias/const) is
//!   skipped. [`ordering_aliases`] resolves the alias form.

use crate::items::{next_code, prev_code, FnItem, FnTable};
use crate::lexer::{Token, TokenKind};
use crate::source::SourceFile;
use crate::workspace::Workspace;

/// The five memory-ordering names of `std::sync::atomic::Ordering`.
pub const ORDERING_NAMES: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Keywords that can precede a `(` without being a call.
const KEYWORDS: [&str; 12] =
    ["if", "while", "match", "for", "return", "loop", "fn", "as", "in", "move", "let", "else"];

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Call {
    /// Callee fn id (index into [`FnTable::fns`]).
    pub callee: usize,
    /// Token index of the call site in the caller's file.
    pub tok: usize,
    /// 1-based line of the call site.
    pub line: u32,
}

/// The workspace call graph: `calls[f]` are fn `f`'s resolved calls, in
/// source order.
#[derive(Debug)]
pub struct CallGraph {
    /// Per-fn outgoing edges.
    pub calls: Vec<Vec<Call>>,
}

impl CallGraph {
    /// Build the graph for every fn in `table`.
    pub fn build(ws: &Workspace, table: &FnTable) -> CallGraph {
        let mut calls = vec![Vec::new(); table.fns.len()];
        for (fi, file) in ws.files.iter().enumerate() {
            let aliases = ordering_aliases(file);
            let lets = let_bound_idents(file);
            for site in call_sites(file, &aliases) {
                let Some(caller) = table.innermost_at(fi, site.tok) else { continue };
                if site.kind == CallKind::Direct
                    && lets.iter().any(|&(ref n, at)| {
                        *n == site.name
                            && table.innermost_at(fi, at) == Some(caller)
                            && at < site.tok
                    })
                {
                    continue; // shadowed by a local binding
                }
                if let Some(callee) = resolve(ws, table, fi, file.crate_name.as_deref(), &site) {
                    calls[caller].push(Call {
                        callee,
                        tok: site.tok,
                        line: file.tokens[site.tok].line,
                    });
                }
            }
        }
        CallGraph { calls }
    }

    /// BFS from `roots`; returns, for each reachable fn, the `(parent,
    /// call)` that first reached it (roots map to `None`). Unreachable
    /// fns are absent.
    pub fn reach_parents(&self, roots: &[usize]) -> Vec<Option<Option<(usize, Call)>>> {
        let mut seen: Vec<Option<Option<(usize, Call)>>> = vec![None; self.calls.len()];
        let mut queue = std::collections::VecDeque::new();
        for &r in roots {
            if seen[r].is_none() {
                seen[r] = Some(None);
                queue.push_back(r);
            }
        }
        while let Some(f) = queue.pop_front() {
            for &c in &self.calls[f] {
                if seen[c.callee].is_none() {
                    seen[c.callee] = Some(Some((f, c)));
                    queue.push_back(c.callee);
                }
            }
        }
        seen
    }
}

/// How a call site names its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `helper()`.
    Direct,
    /// `x.helper()`.
    Method,
    /// `module::helper()`.
    Path,
}

/// One lexical call site, pre-resolution.
#[derive(Debug)]
pub struct CallSite {
    /// The called name (final path segment or method name).
    pub name: String,
    /// Token index of the name.
    pub tok: usize,
    /// Direct, method, or path call.
    pub kind: CallKind,
    /// For path calls: the qualifying segments, outermost first.
    pub qualifier: Vec<String>,
}

/// Every call site in a file's production code.
pub fn call_sites(file: &SourceFile, ordering_aliases: &[(String, &'static str)]) -> Vec<CallSite> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.test_mask[i] || KEYWORDS.contains(&t.text.as_str()) {
            continue;
        }
        let Some(open) = next_code(toks, i + 1) else { continue };
        if !toks[open].is_punct("(") {
            continue;
        }
        let prev = prev_code(toks, i);
        let prev_tok = prev.map(|p| &toks[p]);
        if prev_tok.is_some_and(|p| p.is_ident("fn") || p.is_punct("!") || p.is_punct("#")) {
            continue; // definition, macro body edge, or attribute
        }
        let kind = match prev_tok {
            Some(p) if p.is_punct(".") => CallKind::Method,
            Some(p) if p.is_punct("::") => CallKind::Path,
            _ => CallKind::Direct,
        };
        // Atomic ops pass a memory ordering; those calls target std.
        if has_ordering_arg(toks, open, ordering_aliases) {
            continue;
        }
        let qualifier = if kind == CallKind::Path {
            let mut segs = Vec::new();
            let mut j = prev; // at `::`
            while let Some(colon) = j {
                if !toks[colon].is_punct("::") {
                    break;
                }
                let Some(seg) = prev_code(toks, colon) else { break };
                if toks[seg].kind != TokenKind::Ident {
                    break; // e.g. `<T as Trait>::f` — give up on the qualifier
                }
                segs.push(toks[seg].text.clone());
                j = prev_code(toks, seg);
            }
            segs.reverse();
            segs
        } else {
            Vec::new()
        };
        out.push(CallSite { name: t.text.clone(), tok: i, kind, qualifier });
    }
    out
}

/// Does the paren group opening at `open` contain a memory-ordering
/// argument (an `Ordering::X` path or an alias bound to one)?
fn has_ordering_arg(toks: &[Token], open: usize, aliases: &[(String, &'static str)]) -> bool {
    let mut depth = 0i32;
    for t in &toks[open..] {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        if t.kind == TokenKind::Ident
            && (ORDERING_NAMES.contains(&t.text.as_str())
                || t.text == "Ordering"
                || aliases.iter().any(|(n, _)| *n == t.text))
        {
            return true;
        }
    }
    false
}

/// `let`-bound identifiers in production code, with the binding's token
/// index — used to keep local closures from resolving as workspace fns.
fn let_bound_idents(file: &SourceFile) -> Vec<(String, usize)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("let") || file.test_mask[i] {
            continue;
        }
        let Some(mut j) = next_code(toks, i + 1) else { continue };
        if toks[j].is_ident("mut") {
            let Some(k) = next_code(toks, j + 1) else { continue };
            j = k;
        }
        if toks[j].kind == TokenKind::Ident {
            out.push((toks[j].text.clone(), j));
        }
    }
    out
}

/// File-scope map of identifiers bound to a memory ordering, covering
/// both forms the workspace uses: `let rel = Ordering::Relaxed;` and
/// `const RELAXED: Ordering = Ordering::Relaxed;`.
pub fn ordering_aliases(file: &SourceFile) -> Vec<(String, &'static str)> {
    let toks = &file.tokens;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("let") || t.is_ident("const")) || file.test_mask[i] {
            continue;
        }
        let Some(name_at) = next_code(toks, i + 1) else { continue };
        if toks[name_at].kind != TokenKind::Ident || toks[name_at].text == "mut" {
            continue;
        }
        // Scan the initializer up to `;` for `Ordering :: <X>`.
        let mut saw_ordering_path = false;
        let mut value = None;
        let mut j = name_at + 1;
        while j < toks.len() && !toks[j].is_punct(";") {
            if toks[j].is_ident("Ordering")
                && next_code(toks, j + 1).is_some_and(|k| toks[k].is_punct("::"))
            {
                saw_ordering_path = true;
            }
            if saw_ordering_path
                && toks[j].kind == TokenKind::Ident
                && ORDERING_NAMES.contains(&toks[j].text.as_str())
            {
                value = ORDERING_NAMES.iter().find(|&&n| n == toks[j].text).copied();
            }
            j += 1;
        }
        if let Some(v) = value {
            out.push((toks[name_at].text.clone(), v));
        }
    }
    out
}

/// Resolve a call site to a fn id. See the module docs for the exact
/// search order per call kind; a unique match is required at the first
/// level that has any candidate.
fn resolve(
    ws: &Workspace,
    table: &FnTable,
    file_idx: usize,
    crate_of_file: Option<&str>,
    site: &CallSite,
) -> Option<usize> {
    if site.kind == CallKind::Path {
        let segs: Vec<&str> = site
            .qualifier
            .iter()
            .map(String::as_str)
            .skip_while(|s| matches!(*s, "crate" | "self" | "super" | "Self"))
            .collect();
        if !segs.is_empty() {
            // A segment naming a workspace crate restricts to it.
            for seg in &segs {
                let dashed = seg.replace('_', "-");
                let names_crate = |f: &FnItem| {
                    f.crate_name.as_deref() == Some(dashed.as_str())
                        || f.crate_name.as_deref() == Some(seg)
                };
                if table.fns.iter().any(&names_crate) {
                    let in_crate: Vec<usize> = table
                        .fns
                        .iter()
                        .enumerate()
                        .filter(|(_, f)| f.name == site.name && names_crate(f))
                        .map(|(id, _)| id)
                        .collect();
                    return unique(&in_crate);
                }
            }
            // Otherwise the last segment must name a module file in the
            // same crate (`wal::append`, `Wal::create`, `rules::run_all`
            // via the directory of `rules/mod.rs`). Anything else is an
            // external path (`thread::spawn`, `fs::rename`).
            let seg = segs[segs.len() - 1];
            let in_module: Vec<usize> = table
                .fns
                .iter()
                .enumerate()
                .filter(|(_, f)| {
                    f.name == site.name
                        && f.crate_name.as_deref() == crate_of_file
                        && file_matches_module(&ws.files[f.file].rel_path, seg)
                })
                .map(|(id, _)| id)
                .collect();
            return if in_module.is_empty() { None } else { unique(&in_module) };
        }
    }
    let same_file: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.file == file_idx && f.name == site.name)
        .map(|(id, _)| id)
        .collect();
    if !same_file.is_empty() {
        return unique(&same_file);
    }
    if let Some(krate) = crate_of_file {
        let same_crate: Vec<usize> = table.by_name_in_crate(&site.name, krate).collect();
        if !same_crate.is_empty() {
            return unique(&same_crate);
        }
    }
    if site.kind == CallKind::Method {
        // A method name with no same-crate match is a std method, not a
        // cross-crate call — never fall back to the whole workspace.
        return None;
    }
    let anywhere: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == site.name)
        .map(|(id, _)| id)
        .collect();
    unique(&anywhere)
}

/// Does the file at `rel_path` implement the module a path-call
/// qualifier segment names? Matches the file stem (`wal.rs` ← `wal` or
/// the type `Wal`, case-insensitively) or the parent directory of a
/// `mod.rs` (`rules/mod.rs` ← `rules`).
fn file_matches_module(rel_path: &str, seg: &str) -> bool {
    let file_name = rel_path.rsplit('/').next().unwrap_or(rel_path);
    let stem = file_name.strip_suffix(".rs").unwrap_or(file_name);
    if stem.eq_ignore_ascii_case(seg) {
        return true;
    }
    if stem == "mod" {
        let parent = rel_path.rsplit('/').nth(1).unwrap_or("");
        return parent.eq_ignore_ascii_case(seg);
    }
    false
}

fn unique(ids: &[usize]) -> Option<usize> {
    match ids {
        [one] => Some(*one),
        _ => None,
    }
}

/// The receiver identifier of a method call or lock acquisition at name
/// token `i`: the last field/variable identifier before the `.`,
/// skipping one `[…]` index group (`self.ring[k].lock()` → `ring`).
pub fn receiver_ident(toks: &[Token], i: usize) -> Option<String> {
    let dot = prev_code(toks, i)?;
    if !toks[dot].is_punct(".") {
        return None;
    }
    let mut r = prev_code(toks, dot)?;
    if toks[r].is_punct("]") {
        // Walk back over the index group to the `[`, then its base.
        let mut depth = 0usize;
        loop {
            if toks[r].is_punct("]") {
                depth += 1;
            } else if toks[r].is_punct("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            r = prev_code(toks, r)?;
        }
        r = prev_code(toks, r)?;
    }
    (toks[r].kind == TokenKind::Ident).then(|| toks[r].text.clone())
}

/// End of the statement containing token `i`: the index of the next `;`
/// at the same brace depth, or the end of the enclosing block.
pub fn statement_end(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                ";" if depth == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// End of the innermost block containing token `i`, scanning forward to
/// the `}` that closes it (or end of input).
pub fn block_end(toks: &[Token], i: usize) -> usize {
    let mut depth = 0i32;
    let mut j = i;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

/// Re-find the matching close paren for `open` (a `(` token).
pub fn matching_paren(toks: &[Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < toks.len() {
        if toks[j].kind == TokenKind::Punct {
            match toks[j].text.as_str() {
                "(" => depth += 1,
                ")" => {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::Workspace;
    use std::path::PathBuf;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
            design: None,
        }
    }

    fn graph(files: &[(&str, &str)]) -> (Workspace, FnTable, CallGraph) {
        let w = ws(files);
        let t = FnTable::build(&w);
        let g = CallGraph::build(&w, &t);
        (w, t, g)
    }

    fn edges(t: &FnTable, g: &CallGraph, caller: &str) -> Vec<String> {
        let id = t.fns.iter().position(|f| f.name == caller).unwrap();
        g.calls[id].iter().map(|c| t.fns[c.callee].name.clone()).collect()
    }

    #[test]
    fn direct_method_and_path_calls_resolve() {
        let (_, t, g) = graph(&[
            (
                "crates/app/src/lib.rs",
                "fn a() { b(); s.c(); wal::d(); Wal::e(); }\nfn b() {}\nfn c(&self) {}",
            ),
            ("crates/app/src/wal.rs", "pub fn d() {}\npub fn e() {}"),
        ]);
        assert_eq!(edges(&t, &g, "a"), ["b", "c", "d", "e"]);
    }

    #[test]
    fn external_paths_and_foreign_method_names_stay_unresolved() {
        let (_, t, g) = graph(&[
            (
                "crates/app/src/lib.rs",
                "fn a(buf: &mut Vec<u8>) { thread::spawn(w); fs::rename(p, q); buf.extend(x); }\nfn spawn() {}\nfn rename() {}",
            ),
            ("crates/other/src/lib.rs", "pub fn extend(&mut self) {}"),
        ]);
        assert!(
            edges(&t, &g, "a").is_empty(),
            "std paths and std method names must not resolve: {:?}",
            edges(&t, &g, "a")
        );
    }

    #[test]
    fn crate_prefixed_paths_and_mod_rs_directories_resolve() {
        let (_, t, g) = graph(&[
            (
                "crates/app/src/lib.rs",
                "fn a() { crate::helper(); rules::run_all(); }\nfn helper() {}",
            ),
            ("crates/app/src/rules/mod.rs", "pub fn run_all() {}"),
        ]);
        assert_eq!(edges(&t, &g, "a"), ["helper", "run_all"]);
    }

    #[test]
    fn let_bound_name_shadows_the_workspace_fn() {
        let (_, t, g) = graph(&[(
            "crates/app/src/lib.rs",
            "fn a() { let helper = || (); helper(); }\nfn helper() {}\nfn late() { helper(); }",
        )]);
        assert!(edges(&t, &g, "a").is_empty(), "closure call must not resolve");
        assert_eq!(edges(&t, &g, "late"), ["helper"]);
    }

    #[test]
    fn cross_crate_path_qualifier_restricts_resolution() {
        let (_, t, g) = graph(&[
            ("crates/scholar-corpus/src/lib.rs", "pub fn load_jsonl() {}"),
            (
                "crates/app/src/lib.rs",
                "fn a() { scholar_corpus::load_jsonl(); }\nfn load_jsonl() {}",
            ),
        ]);
        // The qualifier names the corpus crate, so the same-file decoy
        // must lose.
        let id = t.fns.iter().position(|f| f.name == "a").unwrap();
        let callee = g.calls[id][0].callee;
        assert_eq!(t.fns[callee].crate_name.as_deref(), Some("scholar-corpus"));
    }

    #[test]
    fn ambiguous_names_stay_unresolved() {
        let (_, t, g) = graph(&[
            ("crates/a/src/lib.rs", "pub fn dup() {}"),
            ("crates/b/src/lib.rs", "pub fn dup() {}"),
            ("crates/c/src/lib.rs", "fn caller() { dup(); }"),
        ]);
        assert!(edges(&t, &g, "caller").is_empty());
    }

    #[test]
    fn same_crate_beats_other_crates() {
        let (_, t, g) = graph(&[
            ("crates/a/src/one.rs", "pub fn helper() {}"),
            ("crates/a/src/two.rs", "pub fn caller() { helper(); }"),
            ("crates/b/src/lib.rs", "pub fn helper() {}"),
        ]);
        let id = t.fns.iter().position(|f| f.name == "caller").unwrap();
        let callee = g.calls[id][0].callee;
        assert_eq!(t.fns[callee].crate_name.as_deref(), Some("a"));
    }

    #[test]
    fn atomic_ops_with_ordering_args_are_not_edges() {
        let (_, t, g) = graph(&[(
            "crates/app/src/lib.rs",
            "const RELAXED: Ordering = Ordering::Relaxed;\n\
             fn load() {}\n\
             fn a(x: &AtomicU64) { x.load(Ordering::Acquire); x.fetch_add(1, RELAXED); }\n\
             fn b(s: &S) { s.load(); }",
        )]);
        assert!(edges(&t, &g, "a").is_empty(), "atomic ops must not resolve to fn load");
        assert_eq!(edges(&t, &g, "b"), ["load"], "zero-arg method call still resolves");
    }

    #[test]
    fn ordering_alias_map_reads_let_and_const_forms() {
        let f = SourceFile::parse(
            "crates/app/src/lib.rs",
            "const RELAXED: Ordering = Ordering::Relaxed;\nfn f() { let rel = std::sync::atomic::Ordering::SeqCst; }",
        );
        let m = ordering_aliases(&f);
        assert_eq!(m.len(), 2);
        assert!(m.contains(&("RELAXED".to_string(), "Relaxed")));
        assert!(m.contains(&("rel".to_string(), "SeqCst")));
    }

    #[test]
    fn receiver_walks_over_index_groups() {
        let f = SourceFile::parse(
            "crates/app/src/lib.rs",
            "fn f(&self) { self.mirror_latency[bucket].fetch_add(1, x); self.ring.lock(); }",
        );
        let fa = f.tokens.iter().position(|t| t.is_ident("fetch_add")).unwrap();
        assert_eq!(receiver_ident(&f.tokens, fa).as_deref(), Some("mirror_latency"));
        let lk = f.tokens.iter().position(|t| t.is_ident("lock")).unwrap();
        assert_eq!(receiver_ident(&f.tokens, lk).as_deref(), Some("ring"));
    }

    #[test]
    fn reachability_reports_a_parent_chain() {
        let (_, t, g) = graph(&[(
            "crates/app/src/lib.rs",
            "fn root() { mid(); }\nfn mid() { leaf(); }\nfn leaf() {}\nfn island() {}",
        )]);
        let root = t.fns.iter().position(|f| f.name == "root").unwrap();
        let leaf = t.fns.iter().position(|f| f.name == "leaf").unwrap();
        let island = t.fns.iter().position(|f| f.name == "island").unwrap();
        let seen = g.reach_parents(&[root]);
        assert!(seen[leaf].is_some());
        assert!(seen[island].is_none());
        let (parent, _) = seen[leaf].unwrap().unwrap();
        assert_eq!(t.fns[parent].name, "mid");
    }
}
