//! Workspace discovery: find the Rust sources the rules judge and the
//! non-Rust documents some rules cross-check (DESIGN.md).
//!
//! The scan is deliberately narrow: `crates/*/src/**/*.rs` (production
//! code) and `crates/*/benches/*.rs` (the BENCH-SCHEMA surface). It
//! does *not* descend into `crates/*/tests/`, `target/`, or `examples/`
//! — integration tests and examples are allowed to unwrap freely, and
//! fixture trees for this linter's own tests live under `tests/` so the
//! linter never lints its own bait.

use crate::source::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A loaded workspace: every file the rules look at.
#[derive(Debug)]
pub struct Workspace {
    /// Absolute root the relative paths hang off.
    pub root: PathBuf,
    /// Lexed `.rs` files under `crates/*/src` and `crates/*/benches`.
    pub files: Vec<SourceFile>,
    /// `DESIGN.md` at the root, as lines, when present.
    pub design: Option<Vec<String>>,
}

impl Workspace {
    /// Load every relevant file under `root`. Files are ordered by
    /// path, so diagnostics come out stable run-to-run.
    pub fn load(root: &Path) -> io::Result<Self> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        for krate in sorted_dirs(&crates_dir)? {
            for sub in ["src", "benches"] {
                let dir = krate.join(sub);
                if dir.is_dir() {
                    for path in rust_files(&dir)? {
                        let rel = rel_path(root, &path);
                        let text = fs::read_to_string(&path)?;
                        files.push(SourceFile::parse(&rel, &text));
                    }
                }
            }
        }
        let design_path = root.join("DESIGN.md");
        let design = match fs::read_to_string(&design_path) {
            Ok(text) => Some(text.lines().map(str::to_string).collect()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e),
        };
        Ok(Workspace { root: root.to_path_buf(), files, design })
    }

    /// The file at this workspace-relative path, if it was scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel)
    }
}

/// Immediate subdirectories of `dir`, sorted by name. An absent `dir`
/// yields an empty list (fixture trees may have no `crates/`).
fn sorted_dirs(dir: &Path) -> io::Result<Vec<PathBuf>> {
    if !dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut out: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted by path.
fn rust_files(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated regardless of platform.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}
