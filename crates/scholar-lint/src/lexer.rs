//! A small hand-rolled Rust lexer: enough token structure for lexical
//! lint rules, with exact line/column tracking.
//!
//! The point of lexing (instead of regexing) is that rules must *never*
//! fire on text inside string literals, char literals, or comments — a
//! doc example mentioning `unwrap()` is not a violation. The lexer
//! therefore understands every literal form that can hide such text:
//! `"…"` with escapes, raw strings `r#"…"#` at any hash depth, byte
//! strings, char literals (disambiguated from lifetimes), and nested
//! block comments. Comments are *kept* as tokens because two rules read
//! them: SAFETY-COMMENT looks for `// SAFETY:` and the allowlist lives
//! in `// lint: allow(…)` comments.
//!
//! Everything else is deliberately coarse: keywords are just idents,
//! and punctuation is single characters except `::`, which is fused so
//! path patterns like `Instant::now` are three adjacent tokens.

/// What a token is, at the granularity lint rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `HashMap`, `r#mod`).
    Ident,
    /// A lifetime such as `'a` (not a char literal).
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`.
    Str,
    /// A char or byte-char literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, any base, with suffix).
    Num,
    /// One punctuation character, except `::` which is one token.
    Punct,
    /// A `// …` comment (including `///` and `//!` doc comments).
    LineComment,
    /// A `/* … */` comment (nesting handled), including doc variants.
    BlockComment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification (see [`TokenKind`]).
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// Is this token a comment (line or block)?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Is this an identifier with exactly this text?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Is this a punctuation token with exactly this text?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Character cursor with line/column bookkeeping.
struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(text: &str) -> Self {
        Cursor { chars: text.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `text` into tokens. Never fails: unrecognized bytes become
/// single-character [`TokenKind::Punct`] tokens, and unterminated
/// literals or comments extend to end of input — a lexer for a linter
/// must degrade gracefully, not panic on the code it is judging.
pub fn lex(text: &str) -> Vec<Token> {
    let mut cur = Cursor::new(text);
    let mut out = Vec::new();
    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        let start = cur.pos;
        let kind = if c.is_whitespace() {
            cur.bump();
            continue;
        } else if c == '/' && cur.peek(1) == Some('/') {
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                cur.bump();
            }
            TokenKind::LineComment
        } else if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        cur.bump();
                        cur.bump();
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        cur.bump();
                        cur.bump();
                        depth -= 1;
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            TokenKind::BlockComment
        } else if starts_raw_string(&cur) {
            lex_raw_string(&mut cur);
            TokenKind::Str
        } else if c == '"' || (c == 'b' && cur.peek(1) == Some('"')) {
            if c == 'b' {
                cur.bump();
            }
            lex_quoted(&mut cur, '"');
            TokenKind::Str
        } else if c == 'b' && cur.peek(1) == Some('\'') {
            cur.bump();
            lex_quoted(&mut cur, '\'');
            TokenKind::Char
        } else if c == '\'' {
            lex_tick(&mut cur)
        } else if is_ident_start(c) {
            // Raw identifiers (`r#mod`) reach here only when not a raw
            // string (checked above).
            cur.bump();
            if c == 'r' && cur.peek(0) == Some('#') && cur.peek(1).is_some_and(is_ident_start) {
                cur.bump();
            }
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            TokenKind::Num
        } else if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            TokenKind::Punct
        } else {
            cur.bump();
            TokenKind::Punct
        };
        out.push(Token { kind, text: cur.chars[start..cur.pos].iter().collect(), line, col });
    }
    out
}

/// Does the cursor sit on `r"`, `r#…#"`, `br"`, or `br#…#"`?
fn starts_raw_string(cur: &Cursor) -> bool {
    let mut i = match cur.peek(0) {
        Some('r') => 1,
        Some('b') if cur.peek(1) == Some('r') => 2,
        _ => return false,
    };
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

/// Consume a raw string starting at the cursor (`r`/`br` prefix, hashes,
/// quote, body, closing quote + same number of hashes).
fn lex_raw_string(cur: &mut Cursor) {
    cur.bump(); // r (or b)
    if cur.peek(0) == Some('r') {
        cur.bump();
    }
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        cur.bump();
        hashes += 1;
    }
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        if c == '"' && (0..hashes).all(|k| cur.peek(k) == Some('#')) {
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// Consume a `"…"` or `'…'` literal with `\`-escapes; the cursor sits on
/// the opening quote.
fn lex_quoted(cur: &mut Cursor, quote: char) {
    cur.bump();
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump();
        } else if c == quote {
            return;
        }
    }
}

/// Disambiguate what follows a bare `'`: a char literal or a lifetime.
fn lex_tick(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the tick
    match cur.peek(0) {
        // `'\n'` and friends: escaped char literal.
        Some('\\') => {
            lex_tick_tail(cur);
            TokenKind::Char
        }
        // `'a…`: consume the ident run; a closing tick makes it a char
        // literal (`'a'`), anything else a lifetime (`'a>`, `'static`).
        Some(c) if is_ident_start(c) => {
            while cur.peek(0).is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek(0) == Some('\'') {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        // `'('`, `' '`, digits: one char then the closing tick.
        Some(_) => {
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        None => TokenKind::Lifetime,
    }
}

/// After the backslash of an escaped char literal: consume through the
/// closing tick (handles `'\u{1F600}'`).
fn lex_tick_tail(cur: &mut Cursor) {
    cur.bump(); // backslash
    while let Some(c) = cur.bump() {
        if c == '\'' {
            return;
        }
    }
}

/// Consume a numeric literal: `10`, `0xff_u32`, `1.5e-3`, `1.0f64`.
/// `0..n` lexes as `0`, `..`, `n` (the dot is only part of the number
/// when a digit follows it).
fn lex_number(cur: &mut Cursor) {
    let mut prev = '0';
    while let Some(c) = cur.peek(0) {
        let take = is_ident_continue(c)
            || (c == '.' && cur.peek(1).is_some_and(|d| d.is_ascii_digit()))
            || ((c == '+' || c == '-') && (prev == 'e' || prev == 'E'));
        if !take {
            break;
        }
        prev = c;
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_punct_and_paths() {
        let t = kinds("a.unwrap(); X::Y");
        assert_eq!(
            t,
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Punct, ".".into()),
                (TokenKind::Ident, "unwrap".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
                (TokenKind::Ident, "X".into()),
                (TokenKind::Punct, "::".into()),
                (TokenKind::Ident, "Y".into()),
            ]
        );
    }

    #[test]
    fn strings_hide_their_contents() {
        let t = kinds(r#"let s = "unwrap() /* not a comment */";"#);
        assert!(t.iter().any(|(k, s)| *k == TokenKind::Str && s.contains("unwrap")));
        assert!(!t.iter().any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
        // Escaped quote does not end the string early.
        let t = kinds(r#""a\"b" x"#);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn raw_strings_at_depth() {
        let t = kinds(r###"r#"contains "quotes" and unwrap()"# tail"###);
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1], (TokenKind::Ident, "tail".into()));
        let t = kinds("br\"bytes\" y");
        assert_eq!(t[0].0, TokenKind::Str);
        assert_eq!(t[1], (TokenKind::Ident, "y".into()));
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let t = kinds("r#match x");
        assert_eq!(t[0], (TokenKind::Ident, "r#match".into()));
        assert_eq!(t[1], (TokenKind::Ident, "x".into()));
    }

    #[test]
    fn char_vs_lifetime() {
        let t = kinds("'a' 'x 'static '\\n' '}' b'z'");
        assert_eq!(
            t.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![
                TokenKind::Char,
                TokenKind::Lifetime,
                TokenKind::Lifetime,
                TokenKind::Char,
                TokenKind::Char,
                TokenKind::Char,
            ]
        );
    }

    #[test]
    fn comments_are_tokens_and_nest() {
        let t = kinds("x // SAFETY: fine\ny /* a /* nested */ still */ z");
        assert_eq!(t[1].0, TokenKind::LineComment);
        assert!(t[1].1.contains("SAFETY"));
        assert_eq!(t[3].0, TokenKind::BlockComment);
        assert!(t[3].1.contains("still"));
        assert_eq!(t[4], (TokenKind::Ident, "z".into()));
    }

    #[test]
    fn numbers_and_ranges() {
        let t = kinds("0..n 1.5e-3 0xff_u32");
        assert_eq!(t[0], (TokenKind::Num, "0".into()));
        assert_eq!(t[1], (TokenKind::Punct, ".".into()));
        assert_eq!(t[2], (TokenKind::Punct, ".".into()));
        assert_eq!(t[3], (TokenKind::Ident, "n".into()));
        assert_eq!(t[4], (TokenKind::Num, "1.5e-3".into()));
        assert_eq!(t[5], (TokenKind::Num, "0xff_u32".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let t = lex("ab\n  cd");
        assert_eq!((t[0].line, t[0].col), (1, 1));
        assert_eq!((t[1].line, t[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"never closed", "/* never closed", "r#\"raw", "'", "b'"] {
            let _ = lex(src);
        }
    }
}
