//! One lexed source file plus the two per-file analyses every rule
//! shares: which tokens live inside `#[cfg(test)]` items (rules only
//! judge production code) and the in-source allowlist entries.
//!
//! ## Allowlist syntax
//!
//! A diagnostic is suppressed by a comment of the form
//!
//! ```text
//! // lint: allow(RULE-ID) written reason for the exception
//! ```
//!
//! placed either at the end of the offending line or on its own line
//! directly above it (stacking is fine — each own-line allow applies to
//! the next line that holds code). `allow-file(RULE-ID) reason` at any
//! position exempts the whole file from one rule. The reason is
//! mandatory: an allow without one is itself reported (`ALLOW-SYNTAX`),
//! and an allow that suppresses nothing is reported too
//! (`ALLOW-UNUSED`), so the allowlist can only ever shrink to match
//! reality.

use crate::lexer::{lex, Token, TokenKind};
use crate::{Diagnostic, RULES};

/// What an allowlist entry applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// One source line (the one the comment trails or precedes).
    Line(u32),
    /// The whole file.
    File,
}

/// One parsed `// lint: allow(…)` entry.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule this entry suppresses.
    pub rule: String,
    /// The written justification (non-empty by construction).
    pub reason: String,
    /// Line of the comment itself (where `ALLOW-UNUSED` is reported).
    pub line: u32,
    /// Column of the comment.
    pub col: u32,
    /// What the entry covers.
    pub scope: AllowScope,
}

/// A lexed file with its test-code mask and allowlist.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// The crate directory name under `crates/` (e.g. `sgraph`), if any.
    pub crate_name: Option<String>,
    /// All tokens, comments included.
    pub tokens: Vec<Token>,
    /// `test_mask[i]` is true when token `i` is inside a `#[cfg(test)]`
    /// item — rules skip those tokens.
    pub test_mask: Vec<bool>,
    /// Parsed allowlist entries.
    pub allows: Vec<Allow>,
    /// Malformed allow comments, reported as `ALLOW-SYNTAX`.
    pub allow_issues: Vec<Diagnostic>,
}

impl SourceFile {
    /// Lex `text` and run the shared per-file analyses.
    pub fn parse(rel_path: &str, text: &str) -> Self {
        let tokens = lex(text);
        let test_mask = cfg_test_mask(&tokens);
        let crate_name = rel_path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .map(str::to_string);
        let mut file = SourceFile {
            rel_path: rel_path.to_string(),
            crate_name,
            tokens,
            test_mask,
            allows: Vec::new(),
            allow_issues: Vec::new(),
        };
        file.collect_allows();
        file
    }

    /// Non-test, non-comment tokens with their indices — the stream most
    /// rules walk.
    pub fn code_tokens(&self) -> impl Iterator<Item = (usize, &Token)> {
        self.tokens.iter().enumerate().filter(|(i, t)| !self.test_mask[*i] && !t.is_comment())
    }

    /// Previous non-comment token before index `i`, if any.
    pub fn prev_code_token(&self, i: usize) -> Option<&Token> {
        self.tokens[..i].iter().rev().find(|t| !t.is_comment())
    }

    fn collect_allows(&mut self) {
        for (i, tok) in self.tokens.iter().enumerate() {
            if !tok.is_comment() {
                continue;
            }
            // The marker must open the comment (after its `//`-style
            // sigils): a doc comment *describing* the syntax — "use
            // `// lint: allow(…)`" — is prose, not an allowlist entry.
            let content = tok.text.trim_start_matches(['/', '!', '*']).trim_start();
            let Some(body) = content.strip_prefix("lint:") else { continue };
            let body = body.trim();
            match parse_allow_body(body) {
                Ok((rule, file_wide, reason)) => {
                    if !RULES.contains(&rule) {
                        self.allow_issues.push(Diagnostic::new(
                            &self.rel_path,
                            tok.line,
                            tok.col,
                            "ALLOW-SYNTAX",
                            format!(
                                "allow names unknown rule {rule:?} (known: {})",
                                RULES.join(", ")
                            ),
                        ));
                        continue;
                    }
                    if reason.is_empty() {
                        self.allow_issues.push(Diagnostic::new(
                            &self.rel_path,
                            tok.line,
                            tok.col,
                            "ALLOW-SYNTAX",
                            format!("allow({rule}) has no reason — every exception must say why"),
                        ));
                        continue;
                    }
                    let scope = if file_wide {
                        AllowScope::File
                    } else {
                        AllowScope::Line(self.allow_target_line(i, tok))
                    };
                    self.allows.push(Allow {
                        rule: rule.to_string(),
                        reason: reason.to_string(),
                        line: tok.line,
                        col: tok.col,
                        scope,
                    });
                }
                Err(why) => {
                    self.allow_issues.push(Diagnostic::new(
                        &self.rel_path,
                        tok.line,
                        tok.col,
                        "ALLOW-SYNTAX",
                        why,
                    ));
                }
            }
        }
    }

    /// Which line a non-file allow comment at token `i` covers: its own
    /// line when code precedes it there (trailing form), otherwise the
    /// line of the next code token (own-line form).
    fn allow_target_line(&self, i: usize, tok: &Token) -> u32 {
        let trailing = self.tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| !t.is_comment());
        if trailing {
            return tok.line;
        }
        self.tokens[i + 1..].iter().find(|t| !t.is_comment()).map(|t| t.line).unwrap_or(tok.line)
    }
}

/// Parse the text after `lint:` into `(rule, file_wide, reason)`.
fn parse_allow_body(body: &str) -> Result<(&str, bool, &str), String> {
    let (file_wide, rest) = if let Some(r) = body.strip_prefix("allow-file") {
        (true, r)
    } else if let Some(r) = body.strip_prefix("allow") {
        (false, r)
    } else {
        return Err(format!(
            "malformed lint comment {body:?}: expected `allow(RULE-ID) reason` or `allow-file(RULE-ID) reason`"
        ));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return Err("malformed allow: missing `(RULE-ID)`".to_string());
    };
    let Some(close) = rest.find(')') else {
        return Err("malformed allow: unclosed `(RULE-ID)`".to_string());
    };
    let rule = rest[..close].trim();
    let reason = rest[close + 1..].trim();
    Ok((rule, file_wide, reason))
}

/// Mark every token inside a `#[cfg(test)]` item (attribute included).
fn cfg_test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        if let Some((attr_end, is_test)) = parse_attribute(tokens, i) {
            if is_test {
                let item_end = skip_item(tokens, attr_end);
                mask[i..item_end].iter_mut().for_each(|m| *m = true);
                i = item_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    mask
}

/// If token `i` starts an attribute (`#[…]` or `#![…]`), return the
/// index just past its `]` and whether it contains `cfg(… test …)`.
fn parse_attribute(tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if !tokens[i].is_punct("#") {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j).is_some_and(|t| t.is_punct("!")) {
        j += 1;
    }
    if !tokens.get(j).is_some_and(|t| t.is_punct("[")) {
        return None;
    }
    let mut depth = 0usize;
    let mut is_cfg = false;
    let mut has_test = false;
    while let Some(t) = tokens.get(j) {
        match t.text.as_str() {
            "[" if t.kind == TokenKind::Punct => depth += 1,
            "]" if t.kind == TokenKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return Some((j + 1, is_cfg && has_test));
                }
            }
            "cfg" if t.kind == TokenKind::Ident => is_cfg = true,
            "test" if t.kind == TokenKind::Ident => has_test = true,
            _ => {}
        }
        j += 1;
    }
    Some((tokens.len(), is_cfg && has_test))
}

/// Starting just past an attribute, return the index just past the item
/// it decorates: further attributes and comments are skipped, then the
/// item runs to its matching `}` (brace body) or `;` (whichever comes
/// first at depth zero).
fn skip_item(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes and interleaved comments.
    loop {
        while tokens.get(i).is_some_and(Token::is_comment) {
            i += 1;
        }
        match parse_attribute(tokens, i) {
            Some((end, _)) => i = end,
            None => break,
        }
    }
    let mut depth = 0usize;
    while let Some(t) = tokens.get(i) {
        if t.kind == TokenKind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i + 1;
                    }
                }
                ";" if depth == 0 => return i + 1,
                _ => {}
            }
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_mod_is_masked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        let unwraps: Vec<bool> = f
            .tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, vec![true]);
        // Code outside the mod is live.
        let after = f.tokens.iter().zip(&f.test_mask).find(|(t, _)| t.is_ident("after")).unwrap();
        assert!(!after.1);
    }

    #[test]
    fn cfg_test_fn_and_use_are_masked() {
        let src = "#[cfg(test)]\nuse foo::bar;\n#[cfg(all(test, feature = \"x\"))]\nfn helper() { a.unwrap() }\nfn live() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f
            .tokens
            .iter()
            .zip(&f.test_mask)
            .filter(|(t, _)| t.is_ident("unwrap") || t.is_ident("bar"))
            .all(|(_, m)| *m));
        let live = f.tokens.iter().zip(&f.test_mask).find(|(t, _)| t.is_ident("live")).unwrap();
        assert!(!live.1);
    }

    #[test]
    fn non_test_cfg_is_not_masked() {
        let src = "#[cfg(feature = \"failpoints\")]\nfn gated() { x.unwrap() }";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.test_mask.iter().all(|m| !m));
    }

    #[test]
    fn trailing_and_own_line_allows_target_the_right_line() {
        let src = "fn f() {\n  a.unwrap(); // lint: allow(HOTPATH-PANIC) trailing reason\n  // lint: allow(HOTPATH-PANIC) own-line reason\n  b.unwrap();\n}";
        let f = SourceFile::parse("crates/scholar-serve/src/x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert_eq!(f.allows[0].scope, AllowScope::Line(2));
        assert_eq!(f.allows[1].scope, AllowScope::Line(4));
        assert!(f.allow_issues.is_empty());
    }

    #[test]
    fn stacked_own_line_allows_all_reach_the_code_line() {
        let src =
            "// lint: allow(DETERMINISM) first\n// lint: allow(SAFETY-COMMENT) second\nlet x = 1;";
        let f = SourceFile::parse("crates/sgraph/src/x.rs", src);
        assert_eq!(f.allows.len(), 2);
        assert!(f.allows.iter().all(|a| a.scope == AllowScope::Line(3)));
    }

    #[test]
    fn missing_reason_and_unknown_rule_are_syntax_issues() {
        let src = "// lint: allow(HOTPATH-PANIC)\n// lint: allow(NO-SUCH-RULE) why\n// lint: alow(DETERMINISM) typo\nlet x = 1;";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert!(f.allows.is_empty());
        assert_eq!(f.allow_issues.len(), 3);
        assert!(f.allow_issues.iter().all(|d| d.rule == "ALLOW-SYNTAX"));
        assert!(f.allow_issues[0].message.contains("no reason"));
        assert!(f.allow_issues[1].message.contains("unknown rule"));
        assert!(f.allow_issues[2].message.contains("malformed"));
    }

    #[test]
    fn allow_file_scope_parses() {
        let src = "// lint: allow-file(HOTPATH-PANIC) whole file is audited\nfn f() {}";
        let f = SourceFile::parse("crates/x/src/lib.rs", src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].scope, AllowScope::File);
        assert_eq!(f.allows[0].reason, "whole file is audited");
    }
}
