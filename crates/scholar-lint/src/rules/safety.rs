//! **SAFETY-COMMENT** — every `unsafe` block, function, or impl must
//! say why it is sound, in a `// SAFETY:` comment the next reader (and
//! the Miri CI job's triager) can check the code against.
//!
//! Accepted placements: a comment in the contiguous comment run
//! directly above the `unsafe` token, or a trailing comment later on
//! the same line. The comment must contain the literal `SAFETY:`.

use crate::workspace::Workspace;
use crate::Diagnostic;

const RULE: &str = "SAFETY-COMMENT";

/// Flag `unsafe` tokens with no adjacent `SAFETY:` comment.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        for (i, tok) in file.tokens.iter().enumerate() {
            if file.test_mask[i] || !tok.is_ident("unsafe") {
                continue;
            }
            // Comment run immediately above (walking back over any
            // adjacent comments).
            let mut documented = file.tokens[..i]
                .iter()
                .rev()
                .take_while(|t| t.is_comment())
                .any(|t| t.text.contains("SAFETY:"));
            // Or a trailing comment on the same line.
            if !documented {
                documented = file.tokens[i + 1..]
                    .iter()
                    .take_while(|t| t.line == tok.line)
                    .any(|t| t.is_comment() && t.text.contains("SAFETY:"));
            }
            if !documented {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    RULE,
                    "unsafe without a `// SAFETY:` comment — state the invariant that makes \
                     this sound, directly above the unsafe (or trailing on its line)"
                        .to_string(),
                ));
            }
        }
    }
}
