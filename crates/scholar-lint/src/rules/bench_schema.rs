//! **BENCH-SCHEMA** — every `BENCH_*.json` writer must emit the shared
//! key set, so the checked-in perf artifacts stay diffable as one
//! trajectory across PRs.
//!
//! The bench targets each write their own artifact (`BENCH_engine.json`,
//! `BENCH_context.json`, `BENCH_serve.json`, …) with target-specific
//! measurements — that's fine. What must not drift is the shared spine:
//! which corpus, which seed, how many articles. A new bench that forgets
//! `seed` produces numbers nobody can reproduce; one that renames
//! `articles` to `n` breaks every cross-bench comparison script.
//!
//! The rule looks at each file under a `benches/` directory that
//! mentions a `BENCH_*.json` string literal and requires a
//! `.field("<key>", …)` call for every shared key.

use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Keys every `BENCH_*.json` artifact must carry.
pub const BENCH_SHARED_KEYS: [&str; 3] = ["corpus", "seed", "articles"];

const RULE: &str = "BENCH-SCHEMA";

/// Flag bench JSON writers missing shared keys.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !file.rel_path.contains("/benches/") {
            continue;
        }
        let code: Vec<&crate::lexer::Token> = file.code_tokens().map(|(_, t)| t).collect();
        // The first BENCH_*.json literal marks this file as a writer
        // and anchors the diagnostic.
        let Some(anchor) = code.iter().find(|t| {
            t.kind == TokenKind::Str && {
                let s = t.text.trim_matches('"');
                s.contains("BENCH_") && s.ends_with(".json")
            }
        }) else {
            continue;
        };
        let mut emitted: Vec<String> = Vec::new();
        for k in 0..code.len() {
            if code[k].is_ident("field")
                && code.get(k + 1).is_some_and(|t| t.is_punct("("))
                && code.get(k + 2).is_some_and(|t| t.kind == TokenKind::Str)
            {
                emitted.push(code[k + 2].text.trim_matches('"').to_string());
            }
        }
        let missing: Vec<&str> = BENCH_SHARED_KEYS
            .iter()
            .copied()
            .filter(|key| !emitted.iter().any(|e| e == key))
            .collect();
        if !missing.is_empty() {
            out.push(Diagnostic::new(
                &file.rel_path,
                anchor.line,
                anchor.col,
                RULE,
                format!(
                    "BENCH_*.json writer is missing shared key(s) {}: every bench artifact \
                     must emit {} so the perf trajectory stays diffable",
                    missing.join(", "),
                    BENCH_SHARED_KEYS.join("/"),
                ),
            ));
        }
    }
}
