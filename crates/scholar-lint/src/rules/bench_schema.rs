//! **BENCH-SCHEMA** — every `BENCH_*.json` writer must emit the shared
//! key set, so the checked-in perf artifacts stay diffable as one
//! trajectory across PRs.
//!
//! The bench targets each write their own artifact (`BENCH_engine.json`,
//! `BENCH_context.json`, `BENCH_serve.json`, …) with target-specific
//! measurements — that's fine. What must not drift is the shared spine:
//! which corpus, which seed, how many articles. A new bench that forgets
//! `seed` produces numbers nobody can reproduce; one that renames
//! `articles` to `n` breaks every cross-bench comparison script.
//!
//! The rule looks at each file under a `benches/` directory that
//! mentions a `BENCH_*.json` string literal and requires a
//! `.field("<key>", …)` call for every shared key. Artifacts listed in
//! [`BENCH_ARTIFACT_KEYS`] additionally carry artifact-specific keys:
//! a measurement the bench exists to gate on (e.g. the out-of-core
//! bench's peak-RSS-vs-budget pair) must never silently drop out of the
//! checked-in JSON.

use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Keys every `BENCH_*.json` artifact must carry.
pub const BENCH_SHARED_KEYS: [&str; 3] = ["corpus", "seed", "articles"];

/// Artifact-specific required keys, on top of [`BENCH_SHARED_KEYS`].
///
/// `BENCH_outofcore.json` is the proof that a MAG-scale build+rank fit a
/// fixed memory budget; an artifact without the measured peak and the
/// budget it was asserted against proves nothing. `BENCH_restart.json`
/// exists to gate the restore-vs-rebuild ratio — without both sides and
/// the ratio itself, the crash-safe restart claim is untracked.
/// `BENCH_shadow.json` gates the record/replay layer: the recording p99
/// overhead (asserted ≤5% of baseline) plus the mirror latency and
/// drift statistics the shadow-promotion gate reads.
pub const BENCH_ARTIFACT_KEYS: &[(&str, &[&str])] = &[
    ("BENCH_outofcore.json", &["peak_rss_bytes", "rss_budget_bytes"]),
    ("BENCH_restart.json", &["cold_rank_secs", "restore_secs", "restore_speedup"]),
    (
        "BENCH_shadow.json",
        &[
            "record_p99_overhead",
            "mirror_p50_us",
            "mirror_p99_us",
            "topk_overlap",
            "kendall_tau",
            "score_l1_mean",
            "status_mismatches",
        ],
    ),
];

const RULE: &str = "BENCH-SCHEMA";

/// Flag bench JSON writers missing shared keys.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        if !file.rel_path.contains("/benches/") {
            continue;
        }
        let code: Vec<&crate::lexer::Token> = file.code_tokens().map(|(_, t)| t).collect();
        // The first BENCH_*.json literal marks this file as a writer
        // and anchors the diagnostic.
        let Some(anchor) = code.iter().find(|t| {
            t.kind == TokenKind::Str && {
                let s = t.text.trim_matches('"');
                s.contains("BENCH_") && s.ends_with(".json")
            }
        }) else {
            continue;
        };
        let mut emitted: Vec<String> = Vec::new();
        for k in 0..code.len() {
            if code[k].is_ident("field")
                && code.get(k + 1).is_some_and(|t| t.is_punct("("))
                && code.get(k + 2).is_some_and(|t| t.kind == TokenKind::Str)
            {
                emitted.push(code[k + 2].text.trim_matches('"').to_string());
            }
        }
        let missing: Vec<&str> = BENCH_SHARED_KEYS
            .iter()
            .copied()
            .filter(|key| !emitted.iter().any(|e| e == key))
            .collect();
        if !missing.is_empty() {
            out.push(Diagnostic::new(
                &file.rel_path,
                anchor.line,
                anchor.col,
                RULE,
                format!(
                    "BENCH_*.json writer is missing shared key(s) {}: every bench artifact \
                     must emit {} so the perf trajectory stays diffable",
                    missing.join(", "),
                    BENCH_SHARED_KEYS.join("/"),
                ),
            ));
        }
        // Artifact-specific keys: match on the file name at the end of
        // the literal (writers build the path with concat!, so the
        // literal usually carries a leading directory prefix).
        let artifact = anchor.text.trim_matches('"').rsplit('/').next().unwrap_or("").to_string();
        if let Some((name, keys)) = BENCH_ARTIFACT_KEYS.iter().find(|(n, _)| *n == artifact) {
            let missing: Vec<&str> =
                keys.iter().copied().filter(|key| !emitted.iter().any(|e| e == key)).collect();
            if !missing.is_empty() {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    anchor.line,
                    anchor.col,
                    RULE,
                    format!(
                        "{name} writer is missing artifact key(s) {}: this artifact must \
                         record {} or the measurement it gates on is unverifiable",
                        missing.join(", "),
                        keys.join("/"),
                    ),
                ));
            }
        }
    }
}
