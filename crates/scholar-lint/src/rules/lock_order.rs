//! **LOCK-ORDER** — the workspace's lock digraph must stay acyclic.
//!
//! Every `Mutex`/`RwLock` acquisition (`.lock()`, `.read()`, `.write()`
//! with empty parens — the I/O traits' methods take buffers, so the
//! zero-arg form is the lock form) is extracted per function, with a
//! conservative hold span: a `let`-bound guard lives to the end of its
//! enclosing block; a temporary (the guard is consumed mid-chain, e.g.
//! `self.solves.lock().unwrap().len()`) lives to the end of its
//! statement — which for an `if let`/`match` scrutinee is the end of
//! the whole construct, exactly Rust's temporary-scope rule. A function
//! whose tail expression *returns* the guard (`shadow_read`-style
//! helpers) turns its callers' call sites into acquisition sites.
//!
//! An edge `A → B` means "while holding `A`, something blocked
//! acquiring `B`" — directly, or transitively through the call graph
//! (`try_lock`/`try_read`/`try_write` hold but never block, so they
//! produce spans, not edge targets). A cycle in that digraph is a
//! potential deadlock: two threads entering it from different locks can
//! each hold what the other waits for. Locks are identified as
//! `crate/receiver-field`; two same-named fields in one crate merge
//! into one node (a documented coarseness — rename the field or
//! allowlist).

use crate::callgraph::{block_end, matching_paren, receiver_ident, statement_end, CallGraph};
use crate::items::{next_code, prev_code, FnTable};
use crate::lexer::Token;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Diagnostic;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

const BLOCKING: [&str; 3] = ["lock", "read", "write"];
const NONBLOCKING: [&str; 3] = ["try_lock", "try_read", "try_write"];
/// Guard-preserving adapters: the chain still yields the guard after
/// these, so the binding they feed holds the lock.
const ADAPTERS: [&str; 3] = ["unwrap", "expect", "unwrap_or_else"];

/// One lock acquisition inside a function.
#[derive(Debug, Clone)]
struct Acq {
    /// `crate/receiver` lock identity.
    lock: String,
    /// Token index of the method-name token.
    tok: usize,
    /// Token index the hold span ends at (inclusive bound).
    span_end: usize,
    /// Whether acquiring blocks (false for `try_*`).
    blocking: bool,
    line: u32,
    col: u32,
}

/// Per-function lock facts.
#[derive(Debug, Default)]
struct FnLocks {
    acqs: Vec<Acq>,
    /// Lock returned as a guard from the tail expression, if any.
    returns_guard: Option<(String, bool)>,
}

/// Check the workspace lock digraph for cycles.
pub fn check(ws: &Workspace, table: &FnTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let mut per_fn: Vec<FnLocks> = Vec::with_capacity(table.fns.len());
    for id in 0..table.fns.len() {
        per_fn.push(fn_locks(ws, table, id));
    }
    // Calls to guard-returning fns act as acquisitions at the call site.
    let mut extra: Vec<(usize, Acq)> = Vec::new();
    for (caller, calls) in graph.calls.iter().enumerate() {
        for c in calls {
            if let Some((lock, blocking)) = per_fn[c.callee].returns_guard.clone() {
                let file = &ws.files[table.fns[caller].file];
                let tok = &file.tokens[c.tok];
                extra.push((
                    caller,
                    Acq {
                        lock,
                        tok: c.tok,
                        span_end: guard_span(file, c.tok, true),
                        blocking,
                        line: tok.line,
                        col: tok.col,
                    },
                ));
            }
        }
    }
    for (caller, acq) in extra {
        per_fn[caller].acqs.push(acq);
    }

    // Blocking lock-set of each fn, transitively (fixpoint).
    let mut sets: Vec<BTreeSet<String>> = per_fn
        .iter()
        .map(|fl| fl.acqs.iter().filter(|a| a.blocking).map(|a| a.lock.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for f in 0..graph.calls.len() {
            for ci in 0..graph.calls[f].len() {
                let callee = graph.calls[f][ci].callee;
                let add: Vec<String> =
                    sets[callee].iter().filter(|l| !sets[f].contains(*l)).cloned().collect();
                if !add.is_empty() {
                    sets[f].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edges with a witness site per (from, to); the lexicographically
    // smallest witness is kept so diagnostics are stable across runs.
    type Witness = (String, u32, u32, String);
    let mut edges: BTreeMap<(String, String), Witness> = BTreeMap::new();
    let mut add_edge = |from: &str, to: &str, w: Witness| {
        if from == to {
            return; // reentrant same-lock holds are out of scope here
        }
        let key = (from.to_string(), to.to_string());
        match edges.get(&key) {
            Some(old) if *old <= w => {}
            _ => {
                edges.insert(key, w);
            }
        }
    };
    for (f, fl) in per_fn.iter().enumerate() {
        let item = &table.fns[f];
        let file = &ws.files[item.file];
        for a in &fl.acqs {
            // Direct later blocking acquisitions inside the hold span.
            for b in &fl.acqs {
                if b.blocking && b.tok > a.tok && b.tok <= a.span_end {
                    add_edge(
                        &a.lock,
                        &b.lock,
                        (file.rel_path.clone(), b.line, b.col, item.name.clone()),
                    );
                }
            }
            // Calls inside the hold span pull in the callee's lock set.
            for c in &graph.calls[f] {
                if c.tok > a.tok && c.tok <= a.span_end {
                    let ctok = &file.tokens[c.tok];
                    for m in &sets[c.callee] {
                        add_edge(
                            &a.lock,
                            m,
                            (file.rel_path.clone(), ctok.line, ctok.col, item.name.clone()),
                        );
                    }
                }
            }
        }
    }

    report_cycles(&edges, out);
}

/// Extract acquisitions (and a tail-returned guard) from one fn body.
fn fn_locks(ws: &Workspace, table: &FnTable, id: usize) -> FnLocks {
    let item = &table.fns[id];
    let file = &ws.files[item.file];
    let toks = &file.tokens;
    let krate = item.crate_name.as_deref().unwrap_or("?");
    let mut fl = FnLocks::default();
    for i in item.body.clone() {
        let t = &toks[i];
        if t.is_comment() || file.test_mask[i] {
            continue;
        }
        let blocking = BLOCKING.contains(&t.text.as_str());
        let nonblocking = NONBLOCKING.contains(&t.text.as_str());
        if !(blocking || nonblocking) || table.innermost_at(item.file, i) != Some(id) {
            continue;
        }
        // Must be a zero-arg method call: `.name()`.
        let Some(open) = next_code(toks, i + 1) else { continue };
        if !toks[open].is_punct("(") {
            continue;
        }
        let Some(close) = next_code(toks, open + 1) else { continue };
        if !toks[close].is_punct(")") {
            continue; // has arguments: io::Read/Write, not a lock
        }
        let Some(prev) = prev_code(toks, i) else { continue };
        if !toks[prev].is_punct(".") {
            continue;
        }
        let Some(receiver) = receiver_ident(toks, i) else { continue };
        // Guard fate: skip adapter calls, then look at what follows.
        let mut end = close;
        while let Some(dot) = next_code(toks, end + 1) {
            if !toks[dot].is_punct(".") {
                break;
            }
            let Some(name) = next_code(toks, dot + 1) else { break };
            if !ADAPTERS.contains(&toks[name].text.as_str()) {
                break;
            }
            let Some(aopen) = next_code(toks, name + 1) else { break };
            if !toks[aopen].is_punct("(") {
                break;
            }
            end = matching_paren(toks, aopen);
        }
        let after = next_code(toks, end + 1);
        if after == Some(item.body.end) {
            // Tail expression of the fn: the guard is returned.
            fl.returns_guard = Some((format!("{krate}/{receiver}"), blocking));
        }
        let bound = after.is_some_and(|j| toks[j].is_punct(";"));
        fl.acqs.push(Acq {
            lock: format!("{krate}/{receiver}"),
            tok: i,
            span_end: guard_span(file, i, bound),
            blocking,
            line: t.line,
            col: t.col,
        });
    }
    fl
}

/// Hold-span end for an acquisition at token `i`. `bound` means the
/// guard survives its own expression (the chain ends at `;`); only a
/// `let`-bound guard gets the enclosing block, everything else ends
/// with its statement — which subsumes `if let`/`match` scrutinee
/// temporaries, since [`statement_end`] runs past balanced braces to
/// the construct's end.
fn guard_span(file: &SourceFile, i: usize, bound: bool) -> usize {
    let toks = &file.tokens;
    if bound && statement_start_kw(toks, i).as_deref() == Some("let") {
        return block_end(toks, i);
    }
    statement_end(toks, i)
}

/// The first token text of the statement containing token `i` (walking
/// back to the previous `;`, `{`, or `}`).
fn statement_start_kw(toks: &[Token], i: usize) -> Option<String> {
    let mut j = i;
    while let Some(p) = prev_code(toks, j) {
        let t = &toks[p];
        if t.is_punct(";") || t.is_punct("{") || t.is_punct("}") {
            let first = next_code(toks, p + 1)?;
            return Some(toks[first].text.clone());
        }
        j = p;
    }
    toks.first().map(|t| t.text.clone())
}

/// Find cycles in the lock digraph and report one diagnostic per cycle.
fn report_cycles(
    edges: &BTreeMap<(String, String), (String, u32, u32, String)>,
    out: &mut Vec<Diagnostic>,
) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
        adj.entry(to).or_default();
    }
    // For each node in sorted order, BFS for a shortest path back to
    // itself; the first node that closes a cycle reports it, and every
    // node on that cycle is marked done so one cycle = one finding.
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for start in nodes {
        if done.contains(start) {
            continue;
        }
        let Some(cycle) = shortest_cycle(&adj, start) else { continue };
        for n in &cycle {
            done.insert(n);
        }
        // Describe the cycle with each edge's witness site.
        let mut desc = Vec::new();
        for k in 0..cycle.len() {
            let from = cycle[k];
            let to = cycle[(k + 1) % cycle.len()];
            let (f, l, _c, in_fn) = &edges[&(from.to_string(), to.to_string())];
            desc.push(format!("{from} -> {to} at {f}:{l} (in `{in_fn}`)"));
        }
        let (file, line, col, _) = &edges[&(cycle[0].to_string(), cycle[1].to_string())];
        out.push(Diagnostic::new(
            file,
            *line,
            *col,
            "LOCK-ORDER",
            format!(
                "lock-order cycle: {} -> {}; {} — threads entering from different locks can \
                 deadlock; acquire in one global order (or allowlist with the reason the paths \
                 cannot run concurrently)",
                cycle.join(" -> "),
                cycle[0],
                desc.join(", "),
            ),
        ));
    }
}

/// Shortest cycle through `start`, as the node list (without repeating
/// `start` at the end). `None` if no path returns to `start`. Cycles
/// always have ≥ 2 nodes — self-edges are filtered at construction.
fn shortest_cycle<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    start: &'a str,
) -> Option<Vec<&'a str>> {
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut queue = VecDeque::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for &next in adj.get(n).into_iter().flatten() {
            if next == start {
                let mut path = vec![n];
                let mut cur = n;
                while cur != start {
                    cur = parent[cur];
                    path.push(cur);
                }
                path.reverse();
                return Some(path);
            }
            if !parent.contains_key(next) {
                parent.insert(next, n);
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
            design: None,
        };
        let table = FnTable::build(&ws);
        let graph = CallGraph::build(&ws, &table);
        let mut out = Vec::new();
        check(&ws, &table, &graph, &mut out);
        out
    }

    #[test]
    fn direct_cycle_in_one_crate_is_reported() {
        let src = "fn ab(&self) { let a = self.alpha.lock().unwrap(); self.beta.lock().unwrap().push(1); }\n\
                   fn ba(&self) { let b = self.beta.lock().unwrap(); self.alpha.lock().unwrap().push(1); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "one cycle, one finding: {d:?}");
        assert!(d[0].message.contains("app/alpha -> app/beta"), "{}", d[0].message);
    }

    #[test]
    fn transitive_cycle_through_a_callee_is_reported() {
        let src = "fn outer(&self) { let a = self.alpha.lock().unwrap(); self.helper(); }\n\
                   fn helper(&self) { self.beta.lock().unwrap().push(1); }\n\
                   fn other(&self) { let b = self.beta.lock().unwrap(); self.alpha.lock().unwrap().push(1); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "fn one(&self) { let a = self.alpha.lock().unwrap(); self.beta.lock().unwrap().push(1); }\n\
                   fn two(&self) { let a = self.alpha.lock().unwrap(); self.beta.lock().unwrap().push(2); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn temporary_guard_span_ends_at_its_statement() {
        // Each lock is released before the other is taken: no edges.
        let src = "fn ab(&self) { self.alpha.lock().unwrap().push(1); self.beta.lock().unwrap().push(1); }\n\
                   fn ba(&self) { self.beta.lock().unwrap().push(1); self.alpha.lock().unwrap().push(1); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert!(d.is_empty(), "statement-scoped temporaries must not overlap: {d:?}");
    }

    #[test]
    fn try_lock_never_becomes_an_edge_target() {
        let src = "fn ab(&self) { let a = self.alpha.lock().unwrap(); let b = self.beta.try_lock(); }\n\
                   fn ba(&self) { let b = self.beta.try_lock(); if b.is_ok() { self.alpha.lock().unwrap().push(1); } }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        // alpha -> beta would need beta *blocking*-acquired; try_lock is
        // not. And beta -> alpha alone is no cycle.
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn guard_returning_helper_charges_the_caller() {
        let src = "fn shadow_read(&self) -> G { self.shadow.read().unwrap_or_else(e) }\n\
                   fn a(&self) { let g = self.shadow_read(); self.current.write().unwrap().x(); }\n\
                   fn b(&self) { let c = self.current.write().unwrap(); self.shadow_read().y(); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "shadow->current and current->shadow must cycle: {d:?}");
    }

    #[test]
    fn match_scrutinee_holds_across_arms() {
        let src = "fn ab(&self) { match self.alpha.lock().unwrap().take() { Some(v) => { self.beta.lock().unwrap().push(v); } None => {} } }\n\
                   fn ba(&self) { let b = self.beta.lock().unwrap(); self.alpha.lock().unwrap().push(1); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "scrutinee temporary lives across the arms: {d:?}");
    }
}
