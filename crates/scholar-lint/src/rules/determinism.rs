//! **DETERMINISM** — the score-producing crates must be bit-identical
//! run-to-run and thread-count-to-thread-count.
//!
//! The failure mode this guards is silent: `HashMap` iteration order
//! changes with the hasher's per-process random seed, so a ranking that
//! sums or tie-breaks over a map walk can differ between two identical
//! runs — exactly the class of bug that made the repo's 1/2/8-thread
//! equivalence tests load-bearing. Wall-clock reads (`Instant::now`,
//! `SystemTime`) are the other leak: fine for telemetry, catastrophic
//! if they ever feed a score. `srand`'s seeded generators are the only
//! sanctioned randomness.
//!
//! The rule is deliberately coarse — it flags the *presence* of the
//! types, not just provably-ordered iteration, because lexical analysis
//! cannot see types flow. A use that is genuinely order-independent
//! gets an `// lint: allow(DETERMINISM) reason` stating why.

use crate::workspace::Workspace;
use crate::Diagnostic;

/// Crates whose output is (or feeds) published scores.
pub const SCORE_CRATES: [&str; 3] = ["sgraph", "scholar-rank", "core"];

/// Identifiers that introduce nondeterminism.
const BANNED_IDENTS: [(&str, &str); 4] = [
    ("HashMap", "iteration order varies per process (random hasher seed)"),
    ("HashSet", "iteration order varies per process (random hasher seed)"),
    ("RandomState", "per-process random hasher state"),
    ("SystemTime", "wall-clock read"),
];

/// Flag nondeterminism sources in the score-producing crates.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        let in_scope = file.crate_name.as_deref().is_some_and(|c| SCORE_CRATES.contains(&c))
            && file.rel_path.contains("/src/");
        if !in_scope {
            continue;
        }
        let code: Vec<(usize, &crate::lexer::Token)> = file.code_tokens().collect();
        for (k, (_, tok)) in code.iter().enumerate() {
            for (name, why) in BANNED_IDENTS {
                if tok.is_ident(name) {
                    out.push(Diagnostic::new(
                        &file.rel_path,
                        tok.line,
                        tok.col,
                        "DETERMINISM",
                        format!(
                            "{name} in score-producing crate ({why}); use BTreeMap/Vec or seeded srand, \
                             or `// lint: allow(DETERMINISM) <why order/time cannot reach scores>`"
                        ),
                    ));
                }
            }
            // `Instant::now` as three adjacent tokens.
            if tok.is_ident("Instant")
                && code.get(k + 1).is_some_and(|(_, t)| t.is_punct("::"))
                && code.get(k + 2).is_some_and(|(_, t)| t.is_ident("now"))
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    "DETERMINISM",
                    "Instant::now in score-producing crate (wall-clock read); route timing through \
                     scholar_rank::telemetry::Stopwatch or allowlist with the reason it cannot reach scores"
                        .to_string(),
                ));
            }
        }
    }
}
