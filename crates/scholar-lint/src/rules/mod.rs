//! The rule set. Each rule is a function from the loaded
//! [`Workspace`] to diagnostics; [`run_all`] is the engine's whole
//! dispatch. Rules only see production code — tokens inside
//! `#[cfg(test)]` items are masked out by [`crate::source`] — and never
//! see the inside of string literals or comments, by construction of
//! the lexer.
//!
//! The interprocedural rules (LOCK-ORDER, DURABILITY-PROTOCOL,
//! BLOCKING-IN-EVENT-LOOP) share one [`FnTable`] and [`CallGraph`]
//! built here, so the workspace is item-parsed and name-resolved
//! exactly once per run.

pub mod atomic_ordering;
pub mod bench_schema;
pub mod determinism;
pub mod durability;
pub mod event_loop;
pub mod failpoint_sync;
pub mod hotpath;
pub mod lock_order;
pub mod safety;

use crate::callgraph::CallGraph;
use crate::items::FnTable;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Run every rule.
pub fn run_all(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    determinism::check(ws, out);
    hotpath::check(ws, out);
    failpoint_sync::check(ws, out);
    safety::check(ws, out);
    bench_schema::check(ws, out);
    atomic_ordering::check(ws, out);
    let table = FnTable::build(ws);
    let graph = CallGraph::build(ws, &table);
    lock_order::check(ws, &table, &graph, out);
    durability::check(ws, &table, &graph, out);
    event_loop::check(ws, &table, &graph, out);
}
