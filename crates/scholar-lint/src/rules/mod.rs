//! The rule set. Each rule is a function from the loaded
//! [`Workspace`] to diagnostics; [`run_all`] is the engine's whole
//! dispatch. Rules only see production code — tokens inside
//! `#[cfg(test)]` items are masked out by [`crate::source`] — and never
//! see the inside of string literals or comments, by construction of
//! the lexer.

pub mod bench_schema;
pub mod determinism;
pub mod failpoint_sync;
pub mod hotpath;
pub mod safety;

use crate::workspace::Workspace;
use crate::Diagnostic;

/// Run every rule.
pub fn run_all(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    determinism::check(ws, out);
    hotpath::check(ws, out);
    failpoint_sync::check(ws, out);
    safety::check(ws, out);
    bench_schema::check(ws, out);
}
