//! **DURABILITY-PROTOCOL** — publishing via `rename` and journaling via
//! the WAL must follow the fsync protocol, transitively.
//!
//! Two contracts, both interprocedural:
//!
//! 1. **tmp → fsync → rename → fsync(dir)**: any function that calls
//!    `rename` must (a) reach an fsync of the file content *before* the
//!    rename — a direct `.sync_all()`/`.sync_data()` or a call whose
//!    callee transitively fsyncs — and (b) fsync the parent directory
//!    *after* it (directly, or via a `fsync_dir`/`sync_dir`-named
//!    helper). Without (a) a crash can publish an empty or torn file;
//!    without (b) the rename itself can be lost.
//!
//! 2. **journal-then-send** (PR 9 contract, `scholar-serve` only): a
//!    function that appends to the WAL (`wal.append(…)` by receiver
//!    name) and then hands the batch onward (`.send(…)`) must append
//!    before sending, and the append callee must transitively reach an
//!    fsync — otherwise a crash between the send and the sync acks
//!    work the journal never made durable.
//!
//! "Transitively reaches an fsync" is a fixpoint over the call graph:
//! conservative in the safe direction for (1a), since an unresolved
//! callee simply does not count as syncing.

use crate::callgraph::{receiver_ident, CallGraph};
use crate::items::{next_code, prev_code, FnTable};
use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Method names that make file content durable.
const SYNC_METHODS: [&str; 2] = ["sync_all", "sync_data"];
/// Helper-function names that make the *directory entry* durable.
const DIR_SYNC_FNS: [&str; 2] = ["fsync_dir", "sync_dir"];

/// Run both contracts over the workspace.
pub fn check(ws: &Workspace, table: &FnTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let syncs = transitive_sync(ws, table, graph);
    for (id, item) in table.fns.iter().enumerate() {
        let file = &ws.files[item.file];
        let toks = &file.tokens;
        // Token positions of interest inside this fn's body.
        let mut renames = Vec::new();
        let mut sync_positions = Vec::new();
        let mut dir_sync_positions = Vec::new();
        let mut wal_appends = Vec::new();
        let mut sends = Vec::new();
        for i in item.body.clone() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident
                || file.test_mask[i]
                || table.innermost_at(item.file, i) != Some(id)
            {
                continue;
            }
            let Some(open) = next_code(toks, i + 1) else { continue };
            if !toks[open].is_punct("(") {
                continue;
            }
            let prev = prev_code(toks, i).map(|p| &toks[p]);
            if prev.is_some_and(|p| p.is_ident("fn") || p.is_punct("!") || p.is_punct("#")) {
                continue;
            }
            match t.text.as_str() {
                "rename" => renames.push(i),
                m if SYNC_METHODS.contains(&m) => sync_positions.push(i),
                m if DIR_SYNC_FNS.contains(&m) => dir_sync_positions.push(i),
                "append" if receiver_ident(toks, i).as_deref() == Some("wal") => {
                    wal_appends.push(i)
                }
                "send" => sends.push(i),
                _ => {}
            }
        }
        // Calls whose callee transitively fsyncs count as sync points;
        // calls to dir-sync helpers count wherever they resolve to.
        for c in &graph.calls[id] {
            if syncs[c.callee] {
                sync_positions.push(c.tok);
            }
            if DIR_SYNC_FNS.contains(&table.fns[c.callee].name.as_str()) {
                dir_sync_positions.push(c.tok);
            }
        }

        // Contract 1: every rename needs a sync before and a dir sync
        // after, within this function.
        for &r in &renames {
            let t = &toks[r];
            if !sync_positions.iter().any(|&s| s < r) {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    t.line,
                    t.col,
                    "DURABILITY-PROTOCOL",
                    format!(
                        "`{}` renames into a published path without an fsync of the file \
                         content first (directly or via a callee) — a crash can publish an \
                         empty or torn file; sync_all/sync_data the temp file before the rename",
                        item.name
                    ),
                ));
            }
            if !dir_sync_positions.iter().chain(sync_positions.iter()).any(|&s| s > r) {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    t.line,
                    t.col,
                    "DURABILITY-PROTOCOL",
                    format!(
                        "`{}` renames into a published path but never fsyncs the parent \
                         directory afterwards — the rename itself can be lost on crash; open \
                         the directory and sync_all it (see `fsync_dir`)",
                        item.name
                    ),
                ));
            }
        }

        // Contract 2: journal-then-send, serve crate only.
        if item.crate_name.as_deref() != Some("scholar-serve") || wal_appends.is_empty() {
            continue;
        }
        for &s in &sends {
            if !wal_appends.iter().any(|&a| a < s) {
                let t = &toks[s];
                out.push(Diagnostic::new(
                    &file.rel_path,
                    t.line,
                    t.col,
                    "DURABILITY-PROTOCOL",
                    format!(
                        "`{}` sends a batch onward before appending it to the WAL — the \
                         journal-then-send contract requires the append (and its fsync) to \
                         precede the send",
                        item.name
                    ),
                ));
            }
        }
        if !sends.is_empty() {
            // The append must itself be durable: its callee (or this fn,
            // before the send) must reach an fsync.
            let append_syncs = graph.calls[id]
                .iter()
                .any(|c| table.fns[c.callee].name == "append" && syncs[c.callee])
                || wal_appends.iter().any(|&a| {
                    sync_positions.iter().any(|&sp| sp >= a && sends.iter().any(|&s| sp < s))
                });
            if !append_syncs {
                let t = &toks[wal_appends[0]];
                out.push(Diagnostic::new(
                    &file.rel_path,
                    t.line,
                    t.col,
                    "DURABILITY-PROTOCOL",
                    format!(
                        "`{}` appends to the WAL and sends, but the append path never reaches \
                         an fsync — a crash after the send acks work the journal never made \
                         durable",
                        item.name
                    ),
                ));
            }
        }
    }
}

/// For each fn: does it transitively contain a `sync_all`/`sync_data`
/// call? Fixpoint over the call graph.
fn transitive_sync(ws: &Workspace, table: &FnTable, graph: &CallGraph) -> Vec<bool> {
    let mut syncs = vec![false; table.fns.len()];
    for (id, item) in table.fns.iter().enumerate() {
        let file = &ws.files[item.file];
        syncs[id] = item.body.clone().any(|i| {
            let t = &file.tokens[i];
            t.kind == TokenKind::Ident
                && SYNC_METHODS.contains(&t.text.as_str())
                && !file.test_mask[i]
        });
    }
    loop {
        let mut changed = false;
        for id in 0..table.fns.len() {
            if syncs[id] {
                continue;
            }
            if graph.calls[id].iter().any(|c| syncs[c.callee]) {
                syncs[id] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    syncs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
            design: None,
        };
        let table = FnTable::build(&ws);
        let graph = CallGraph::build(&ws, &table);
        let mut out = Vec::new();
        check(&ws, &table, &graph, &mut out);
        out
    }

    #[test]
    fn compliant_publish_protocol_is_clean() {
        let src = "fn publish(f: &File) -> io::Result<()> {\n\
                   f.sync_all()?;\n\
                   fs::rename(tmp, dst)?;\n\
                   fsync_dir(dir)\n\
                   }\n\
                   fn fsync_dir(d: &Path) -> io::Result<()> { File::open(d)?.sync_all() }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn rename_without_prior_sync_is_flagged() {
        let src = "fn publish(f: &File) { fs::rename(tmp, dst); fsync_dir(dir); }\n\
                   fn fsync_dir(d: &Path) -> io::Result<()> { File::open(d)?.sync_all() }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("empty or torn"));
    }

    #[test]
    fn rename_without_dir_sync_is_flagged() {
        let src = "fn publish(f: &File) { f.sync_all(); fs::rename(tmp, dst); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("parent"));
    }

    #[test]
    fn sync_through_a_callee_counts() {
        let src = "fn publish(w: &W) { w.finish(); fs::rename(tmp, dst); fsync_dir(d); }\n\
                   fn finish(&self) { self.file.sync_all(); }\n\
                   fn fsync_dir(d: &Path) { File::open(d).sync_all(); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert!(d.is_empty(), "callee fsync must satisfy the pre-rename sync: {d:?}");
    }

    #[test]
    fn journal_then_send_requires_append_first_and_durable_append() {
        let ok = "fn submit(&self) { self.wal.append(batch); self.tx.send(batch); }\n\
                  fn append(&mut self, b: B) { self.file.sync_all(); }";
        assert!(run(&[("crates/scholar-serve/src/d.rs", ok)]).is_empty());

        let send_first = "fn submit(&self) { self.tx.send(batch); self.wal.append(batch); }\n\
                          fn append(&mut self, b: B) { self.file.sync_all(); }";
        let d = run(&[("crates/scholar-serve/src/d.rs", send_first)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("before appending"));

        let no_sync = "fn submit(&self) { self.wal.append(batch); self.tx.send(batch); }\n\
                       fn append(&mut self, b: B) { self.buf.push(b); }";
        let d = run(&[("crates/scholar-serve/src/d.rs", no_sync)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("never reaches an fsync"));
    }

    #[test]
    fn journal_contract_is_serve_scoped() {
        let src = "fn submit(&self) { self.tx.send(batch); self.wal.append(batch); }";
        let d = run(&[("crates/app/src/lib.rs", src)]);
        assert!(d.is_empty(), "journal-then-send only binds scholar-serve: {d:?}");
    }
}
