//! **HOTPATH-PANIC** — the serve path must answer, never die.
//!
//! A panic anywhere between accept and respond either kills a worker
//! (shrinking the pool until nothing serves) or, post-PR-3, burns a
//! `catch_unwind` converting it to a `500` that proper error flow would
//! have made a precise `4xx`. The serving contract is that every
//! failure reaches the client as a status code and the `/metrics`
//! counters as an increment — so `scholar-serve` production code may
//! not `unwrap`/`expect`, may not `panic!` (or its `unreachable!` /
//! `todo!` / `unimplemented!` siblings), and may not index slices
//! (`xs[i]` panics; `xs.get(i)` flows).
//!
//! `assert!` is deliberately *not* banned: construction-time contracts
//! (`ScoreIndex::build`) run at publish time, not per-request, and a
//! loud publish failure beats serving a corrupt index. Sites whose
//! bounds are guaranteed by construction carry
//! `// lint: allow(HOTPATH-PANIC) <the bounding invariant>` — the
//! allowlist doubles as the audit trail.

use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// The crate whose production code is the request path.
pub const HOTPATH_CRATE: &str = "scholar-serve";

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Keywords that may directly precede a `[` that is *not* an index
/// (`for x in [..]`, `return [..]`, `impl Trait for [T]`, …).
const KEYWORDS_BEFORE_BRACKET: [&str; 14] = [
    "in", "return", "break", "for", "if", "else", "match", "impl", "as", "dyn", "mut", "ref",
    "move", "where",
];

/// Flag panic sources in `scholar-serve` production code.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for file in &ws.files {
        let in_scope =
            file.crate_name.as_deref() == Some(HOTPATH_CRATE) && file.rel_path.contains("/src/");
        if !in_scope {
            continue;
        }
        let code: Vec<(usize, &crate::lexer::Token)> = file.code_tokens().collect();
        for (k, (_, tok)) in code.iter().enumerate() {
            let prev = k.checked_sub(1).and_then(|p| code.get(p)).map(|(_, t)| *t);
            let next = code.get(k + 1).map(|(_, t)| *t);
            // `.unwrap()` / `.expect(` as method calls.
            if (tok.is_ident("unwrap") || tok.is_ident("expect"))
                && prev.is_some_and(|t| t.is_punct("."))
                && next.is_some_and(|t| t.is_punct("("))
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    "HOTPATH-PANIC",
                    format!(
                        ".{}() in the serve path can panic; return an error that reaches the \
                         4xx/5xx counters (or recover, e.g. PoisonError::into_inner)",
                        tok.text
                    ),
                ));
            }
            // panic!-family macros.
            if PANIC_MACROS.iter().any(|m| tok.is_ident(m)) && next.is_some_and(|t| t.is_punct("!"))
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    "HOTPATH-PANIC",
                    format!(
                        "{}! in the serve path kills the request (at best a recorded 500); \
                         make the failure a status code instead",
                        tok.text
                    ),
                ));
            }
            // Index expressions: `[` in index position — the previous
            // token is a value (ident, `)`, or `]`). Array types
            // (`: [u64; 3]`), attributes (`#[…]`), macro brackets
            // (`vec![…]`), and slice patterns all have non-value
            // predecessors and are not flagged.
            if tok.is_punct("[")
                && prev.is_some_and(|t| {
                    (t.kind == TokenKind::Ident
                        && !KEYWORDS_BEFORE_BRACKET.contains(&t.text.as_str()))
                        || t.kind == TokenKind::Num
                        || t.kind == TokenKind::Str
                        || t.is_punct(")")
                        || t.is_punct("]")
                })
            {
                out.push(Diagnostic::new(
                    &file.rel_path,
                    tok.line,
                    tok.col,
                    "HOTPATH-PANIC",
                    "slice/array index in the serve path panics out of bounds; use .get() \
                     (or allowlist with the invariant that bounds it)"
                        .to_string(),
                ));
            }
        }
    }
}
