//! **ATOMIC-ORDERING** — relaxed atomics in the serve/score-publishing
//! crates must be *argued*, and publish/consume pairs must agree.
//!
//! Two checks, both scoped to the crates that publish scores or serve
//! them (`scholar-serve`, `scholar-corpus`):
//!
//! 1. Every literal `Ordering::Relaxed` needs a reasoned `// ORDERING:`
//!    comment on the same line or in the comment run directly above.
//!    Aliases (`const RELAXED: Ordering = Ordering::Relaxed;`) carry
//!    the literal once, so the argument concentrates at the definition
//!    and every use inherits it — that is the encouraged shape.
//!
//! 2. Per atomic field (identified as `crate/receiver`, the same
//!    coarseness as LOCK-ORDER): if any *writer* op (`store`, `swap`,
//!    `fetch_*`, `compare_exchange*`) publishes with Release-class
//!    ordering (`Release`/`AcqRel`/`SeqCst`), then a `Relaxed` *load*
//!    of that field is flagged — the consumer would not synchronize
//!    with the publication. Symmetrically, an Acquire-class load paired
//!    with only-Relaxed writers flags the writer. Ops whose arguments
//!    name no ordering at all are ignored (they are not atomics —
//!    `Vec::swap`, `cmp::Ordering` comparisons).

use crate::callgraph::{matching_paren, ordering_aliases, receiver_ident, ORDERING_NAMES};
use crate::items::next_code;
use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Diagnostic;
use std::collections::BTreeMap;

/// Crates where memory-ordering discipline is load-bearing.
const SCOPE: [&str; 2] = ["scholar-serve", "scholar-corpus"];

/// Atomic method names that read the value.
const READERS: [&str; 13] = [
    "load",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Atomic method names that write the value.
const WRITERS: [&str; 13] = [
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One atomic op site.
#[derive(Debug)]
struct Op {
    field: String,
    method: String,
    orderings: Vec<&'static str>,
    path: String,
    line: u32,
    col: u32,
}

/// Run both checks over the scoped crates.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let mut ops: Vec<Op> = Vec::new();
    for file in &ws.files {
        let Some(krate) = file.crate_name.as_deref() else { continue };
        if !SCOPE.contains(&krate) {
            continue;
        }
        let aliases = ordering_aliases(file);
        relaxed_comment_check(file, out);
        collect_ops(file, krate, &aliases, &mut ops);
    }
    pairing_check(&ops, out);
}

/// Check 1: every literal `Ordering::Relaxed` carries an `// ORDERING:`
/// argument nearby.
fn relaxed_comment_check(file: &SourceFile, out: &mut Vec<Diagnostic>) {
    let toks = &file.tokens;
    // Lines holding any code token, to bound "directly above".
    let code_lines: Vec<u32> = toks
        .iter()
        .enumerate()
        .filter(|(i, t)| !t.is_comment() && !file.test_mask[*i])
        .map(|(_, t)| t.line)
        .collect();
    let ordering_comment_lines: Vec<u32> = toks
        .iter()
        .filter(|t| t.is_comment() && t.text.contains("ORDERING:"))
        .map(|t| t.line)
        .collect();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || t.text != "Relaxed" || file.test_mask[i] {
            continue;
        }
        let Some(prev) = crate::items::prev_code(toks, i) else { continue };
        if !toks[prev].is_punct("::") {
            continue;
        }
        let covered = ordering_comment_lines.iter().any(|&cl| {
            cl == t.line
                || (cl < t.line && !code_lines.iter().any(|&code| cl < code && code < t.line))
        });
        if !covered {
            out.push(Diagnostic::new(
                &file.rel_path,
                t.line,
                t.col,
                "ATOMIC-ORDERING",
                "Ordering::Relaxed in a score-publishing/serve crate without a reasoned \
                 `// ORDERING:` comment (same line or directly above) — state why relaxed \
                 suffices, or bind it once as `const RELAXED: Ordering = Ordering::Relaxed;` \
                 with the argument at the definition",
            ));
        }
    }
}

/// Collect atomic ops (method calls carrying an ordering argument) with
/// their field identity and resolved orderings.
fn collect_ops(
    file: &SourceFile,
    krate: &str,
    aliases: &[(String, &'static str)],
    ops: &mut Vec<Op>,
) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokenKind::Ident || file.test_mask[i] {
            continue;
        }
        let method = t.text.as_str();
        if !(READERS.contains(&method) || WRITERS.contains(&method)) {
            continue;
        }
        let Some(prev) = crate::items::prev_code(toks, i) else { continue };
        if !toks[prev].is_punct(".") {
            continue;
        }
        let Some(open) = next_code(toks, i + 1) else { continue };
        if !toks[open].is_punct("(") {
            continue;
        }
        let close = matching_paren(toks, open);
        let mut orderings: Vec<&'static str> = Vec::new();
        for arg in &toks[open..=close.min(toks.len() - 1)] {
            if arg.kind != TokenKind::Ident {
                continue;
            }
            if let Some(&name) = ORDERING_NAMES.iter().find(|&&n| n == arg.text) {
                orderings.push(name);
            } else if let Some((_, v)) = aliases.iter().find(|(n, _)| *n == arg.text) {
                orderings.push(v);
            }
        }
        if orderings.is_empty() {
            continue; // not an atomic op (Vec::swap, cmp::Ordering, …)
        }
        let Some(field) = receiver_ident(toks, i) else { continue };
        ops.push(Op {
            field: format!("{krate}/{field}"),
            method: method.to_string(),
            orderings,
            path: file.rel_path.clone(),
            line: t.line,
            col: t.col,
        });
    }
}

fn release_class(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}

fn acquire_class(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// Check 2: per-field publish/consume compatibility.
fn pairing_check(ops: &[Op], out: &mut Vec<Diagnostic>) {
    let mut by_field: BTreeMap<&str, Vec<&Op>> = BTreeMap::new();
    for op in ops {
        by_field.entry(&op.field).or_default().push(op);
    }
    for (field, ops) in by_field {
        let release_writer = ops.iter().any(|o| {
            WRITERS.contains(&o.method.as_str()) && o.orderings.iter().any(|x| release_class(x))
        });
        let acquire_reader = ops.iter().any(|o| {
            READERS.contains(&o.method.as_str()) && o.orderings.iter().any(|x| acquire_class(x))
        });
        let short = field.rsplit('/').next().unwrap_or(field);
        for o in &ops {
            let all_relaxed = o.orderings.iter().all(|&x| x == "Relaxed");
            if !all_relaxed {
                continue;
            }
            if release_writer && o.method == "load" {
                out.push(Diagnostic::new(
                    &o.path,
                    o.line,
                    o.col,
                    "ATOMIC-ORDERING",
                    format!(
                        "atomic field `{short}` is published with Release-class writes elsewhere \
                         but this load is Relaxed — the consumer will not synchronize with the \
                         publication; load with Acquire (or allowlist with the invariant that \
                         makes the race benign)"
                    ),
                ));
            } else if acquire_reader && o.method != "load" {
                out.push(Diagnostic::new(
                    &o.path,
                    o.line,
                    o.col,
                    "ATOMIC-ORDERING",
                    format!(
                        "atomic field `{short}` is consumed with Acquire-class loads elsewhere \
                         but this write is Relaxed — the publication will not synchronize; write \
                         with Release (or allowlist with the invariant that makes the race \
                         benign)"
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
            design: None,
        };
        let mut out = Vec::new();
        check(&ws, &mut out);
        out
    }

    #[test]
    fn bare_relaxed_in_scope_is_flagged() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }",
        )]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("ORDERING:"));
    }

    #[test]
    fn commented_relaxed_is_clean_same_line_and_above() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "fn f(x: &AtomicU64) {\n\
             x.load(Ordering::Relaxed); // ORDERING: monotone counter, no data published\n\
             // ORDERING: same argument\n\
             x.load(Ordering::Relaxed);\n\
             }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn alias_concentrates_the_argument_at_the_definition() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "// ORDERING: stat counters only; never used to publish data\n\
             const RELAXED: Ordering = Ordering::Relaxed;\n\
             fn f(x: &AtomicU64) { x.fetch_add(1, RELAXED); x.load(RELAXED); }",
        )]);
        assert!(d.is_empty(), "alias uses carry no literal: {d:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let d = run(&[(
            "crates/sgraph/src/m.rs",
            "fn f(x: &AtomicU64) { x.load(Ordering::Relaxed); }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn release_publish_with_relaxed_load_is_flagged() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "// ORDERING: covered below\n\
             fn publish(&self, g: u64) { self.generation.store(g, Ordering::Release); }\n\
             // ORDERING: covered\n\
             fn read(&self) -> u64 { self.generation.load(Ordering::Relaxed) }",
        )]);
        let pair: Vec<_> = d.iter().filter(|x| x.message.contains("Release-class")).collect();
        assert_eq!(pair.len(), 1, "{d:?}");
        assert_eq!(pair[0].line, 4);
    }

    #[test]
    fn acquire_load_with_relaxed_store_flags_the_writer() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "// ORDERING: covered\n\
             fn publish(&self, g: u64) { self.generation.store(g, Ordering::Relaxed); }\n\
             fn read(&self) -> u64 { self.generation.load(Ordering::Acquire) }",
        )]);
        let pair: Vec<_> = d.iter().filter(|x| x.message.contains("Acquire-class")).collect();
        assert_eq!(pair.len(), 1, "{d:?}");
        assert_eq!(pair[0].line, 2);
    }

    #[test]
    fn seqcst_pairs_and_non_atomic_swaps_are_clean() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "fn f(&mut self) { self.generation.store(1, Ordering::SeqCst); \
             self.generation.load(Ordering::SeqCst); self.vals.swap(0, 1); \
             if x.cmp(&y) == Ordering::Equal {} }",
        )]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn compare_exchange_success_ordering_counts_as_publish() {
        let d = run(&[(
            "crates/scholar-serve/src/m.rs",
            "// ORDERING: covered\n\
             fn cx(&self) { self.tag.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire); }\n\
             // ORDERING: covered\n\
             fn peek(&self) -> u64 { self.tag.load(Ordering::Relaxed) }",
        )]);
        let pair: Vec<_> = d.iter().filter(|x| x.message.contains("Release-class")).collect();
        assert_eq!(pair.len(), 1, "{d:?}");
    }
}
