//! **BLOCKING-IN-EVENT-LOOP** — nothing reachable from the epoll
//! handler may block the event thread.
//!
//! The roots are the functions named `drive` in `scholar-serve` (the
//! nonblocking backend's event loop — a naming convention this rule
//! makes load-bearing). From there the call graph is walked, and every
//! reachable function is scanned for operations that can stall the
//! loop:
//!
//! - fsync (`.sync_all()`, `.sync_data()`) — milliseconds per call,
//!   the whole point of moving durability off the accept path;
//! - blocking lock acquisitions (zero-arg `.lock()`/`.read()`/
//!   `.write()`; `try_*` is fine — it returns immediately);
//! - unbounded reads (`.read_to_end(…)`, `.read_to_string(…)`) — an
//!   attacker-paced allocation loop;
//! - filesystem calls (`fs::…`, `File::open`/`create`) — every one is
//!   a potential disk stall.
//!
//! Each finding carries the call chain from `drive` so the fix (move
//! the work to another thread, or break the edge) is obvious. The rule
//! is reachability-based, so a false edge in the call graph can
//! manufacture a finding — the graph therefore refuses ambiguous
//! names, and the allowlist takes the residue with a bounding
//! argument.

use crate::callgraph::CallGraph;
use crate::items::{next_code, prev_code, FnTable};
use crate::lexer::TokenKind;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Methods that fsync — always banned on the event thread.
const SYNC_METHODS: [&str; 2] = ["sync_all", "sync_data"];
/// Zero-arg blocking lock acquisitions.
const BLOCKING_LOCKS: [&str; 3] = ["lock", "read", "write"];
/// Unbounded-allocation reads.
const UNBOUNDED_READS: [&str; 2] = ["read_to_end", "read_to_string"];
/// Path-call qualifiers that mean "filesystem".
const FS_QUALIFIERS: [&str; 2] = ["fs", "File"];

/// Walk from every `drive` in `scholar-serve`; flag blocking ops in
/// reachable functions.
pub fn check(ws: &Workspace, table: &FnTable, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    let roots: Vec<usize> = table
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| f.name == "drive" && f.crate_name.as_deref() == Some("scholar-serve"))
        .map(|(id, _)| id)
        .collect();
    if roots.is_empty() {
        return;
    }
    let seen = graph.reach_parents(&roots);
    for (id, item) in table.fns.iter().enumerate() {
        if seen[id].is_none() {
            continue;
        }
        let file = &ws.files[item.file];
        let toks = &file.tokens;
        for i in item.body.clone() {
            let t = &toks[i];
            if t.kind != TokenKind::Ident
                || file.test_mask[i]
                || table.innermost_at(item.file, i) != Some(id)
            {
                continue;
            }
            let Some(open) = next_code(toks, i + 1) else { continue };
            if !toks[open].is_punct("(") {
                continue;
            }
            let prev = prev_code(toks, i).map(|p| &toks[p]);
            if prev.is_some_and(|p| p.is_ident("fn") || p.is_punct("!") || p.is_punct("#")) {
                continue;
            }
            let name = t.text.as_str();
            let is_method = prev.is_some_and(|p| p.is_punct("."));
            let is_path = prev.is_some_and(|p| p.is_punct("::"));
            let what = if is_method && SYNC_METHODS.contains(&name) {
                Some("fsyncs")
            } else if is_method && UNBOUNDED_READS.contains(&name) {
                Some("performs an unbounded read")
            } else if is_method && BLOCKING_LOCKS.contains(&name) && zero_arg(toks, open) {
                Some("takes a blocking lock")
            } else if is_path && fs_qualified(toks, i) {
                Some("touches the filesystem")
            } else {
                None
            };
            let Some(what) = what else { continue };
            let chain = chain_to(table, &seen, id);
            out.push(Diagnostic::new(
                &file.rel_path,
                t.line,
                t.col,
                "BLOCKING-IN-EVENT-LOOP",
                format!(
                    "`{name}` {what} but is reachable from the epoll event loop ({chain}) — \
                     the event thread must never stall; move this off the hot path, or \
                     allowlist with the argument that bounds it"
                ),
            ));
        }
    }
}

/// Is the paren group opening at `open` empty?
fn zero_arg(toks: &[crate::lexer::Token], open: usize) -> bool {
    next_code(toks, open + 1).is_some_and(|j| toks[j].is_punct(")"))
}

/// Does the path call at name token `i` have an `fs`/`File` qualifier
/// segment (e.g. `std::fs::rename`, `File::open`)?
fn fs_qualified(toks: &[crate::lexer::Token], i: usize) -> bool {
    let mut j = prev_code(toks, i);
    while let Some(colon) = j {
        if !toks[colon].is_punct("::") {
            break;
        }
        let Some(seg) = prev_code(toks, colon) else { break };
        if toks[seg].kind != TokenKind::Ident {
            break;
        }
        if FS_QUALIFIERS.contains(&toks[seg].text.as_str()) {
            return true;
        }
        j = prev_code(toks, seg);
    }
    false
}

/// Render the call chain from the nearest root to fn `id`.
fn chain_to(
    table: &FnTable,
    seen: &[Option<Option<(usize, crate::callgraph::Call)>>],
    id: usize,
) -> String {
    let mut names = vec![table.fns[id].name.clone()];
    let mut cur = id;
    for _ in 0..16 {
        match seen[cur] {
            Some(Some((parent, _))) => {
                names.push(table.fns[parent].name.clone());
                cur = parent;
            }
            _ => break,
        }
    }
    names.reverse();
    names.join(" -> ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceFile;
    use std::path::PathBuf;

    fn run(files: &[(&str, &str)]) -> Vec<Diagnostic> {
        let ws = Workspace {
            root: PathBuf::new(),
            files: files.iter().map(|(p, s)| SourceFile::parse(p, s)).collect(),
            design: None,
        };
        let table = FnTable::build(&ws);
        let graph = CallGraph::build(&ws, &table);
        let mut out = Vec::new();
        check(&ws, &table, &graph, &mut out);
        out
    }

    #[test]
    fn fsync_reachable_from_drive_is_flagged_with_chain() {
        let src = "fn drive(&mut self) { self.flush_one(); }\n\
                   fn flush_one(&mut self) { self.file.sync_all(); }";
        let d = run(&[("crates/scholar-serve/src/e.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("drive -> flush_one"), "{}", d[0].message);
    }

    #[test]
    fn unreachable_fsync_is_fine() {
        let src = "fn drive(&mut self) { self.answer(); }\n\
                   fn answer(&mut self) {}\n\
                   fn snapshot(&mut self) { self.file.sync_all(); }";
        let d = run(&[("crates/scholar-serve/src/e.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn blocking_lock_flagged_try_lock_not() {
        let src = "fn drive(&mut self) { self.sample(); }\n\
                   fn sample(&self) { if self.ring.try_lock().is_ok() {} let g = self.state.lock(); }";
        let d = run(&[("crates/scholar-serve/src/e.rs", src)]);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("blocking lock"));
    }

    #[test]
    fn fs_calls_and_unbounded_reads_flagged() {
        let src = "fn drive(&mut self) { fs::read_to_string(p); s.read_to_end(&mut buf); }";
        let d = run(&[("crates/scholar-serve/src/e.rs", src)]);
        assert_eq!(d.len(), 2, "{d:?}");
    }

    #[test]
    fn other_crates_drive_is_not_a_root() {
        let src = "fn drive(&mut self) { self.file.sync_all(); }";
        let d = run(&[("crates/sgraph/src/e.rs", src)]);
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn io_read_with_buffer_is_not_a_lock() {
        let src = "fn drive(&mut self) { self.conn.read(&mut buf); }";
        let d = run(&[("crates/scholar-serve/src/e.rs", src)]);
        assert!(d.is_empty(), "buffered read() is I/O, not a lock: {d:?}");
    }
}
