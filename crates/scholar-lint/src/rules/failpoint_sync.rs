//! **FAILPOINT-SYNC** — three views of the failpoint surface must be
//! one set: the `failpoint!("name")` sites compiled into production
//! crates, the canonical catalogue `scholar_testkit::fp::SITES`, and
//! the human-facing table in DESIGN.md §2.7.
//!
//! PR 4 shipped eleven instrumented sites and documented them by hand;
//! nothing stopped the next PR from adding a twelfth site the chaos
//! harness never arms and the docs never mention. This rule makes the
//! drift a build failure in every direction: a code site missing from
//! the catalogue or the docs, a catalogued site with no code behind it,
//! and a documented site that no longer exists are all diagnostics —
//! anchored at the exact line to fix.

use crate::lexer::TokenKind;
use crate::source::SourceFile;
use crate::workspace::Workspace;
use crate::Diagnostic;

/// Where the canonical catalogue lives.
pub const CATALOGUE_PATH: &str = "crates/scholar-testkit/src/fp.rs";
/// The DESIGN.md heading that opens the documented site table.
pub const DESIGN_SECTION: &str = "### 2.7";

const RULE: &str = "FAILPOINT-SYNC";

/// One `failpoint!("…")` invocation found in production code.
#[derive(Debug)]
struct CodeSite {
    name: String,
    path: String,
    line: u32,
    col: u32,
}

/// Cross-check code sites, the testkit catalogue, and DESIGN.md §2.7.
pub fn check(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let code_sites = collect_code_sites(ws);
    let catalogue = ws.file(CATALOGUE_PATH).map(collect_catalogue);
    let design = ws.design.as_ref().map(|lines| collect_design_sites(lines));

    if code_sites.is_empty() && catalogue.is_none() {
        return; // nothing instrumented anywhere: the rule is moot
    }

    // Duplicate *names* across code sites would make the catalogue
    // ambiguous about which site a schedule arms.
    for (i, s) in code_sites.iter().enumerate() {
        if code_sites[..i].iter().any(|p| p.name == s.name) {
            out.push(Diagnostic::new(
                &s.path,
                s.line,
                s.col,
                RULE,
                format!("failpoint site {:?} is declared at more than one code site", s.name),
            ));
        }
    }

    // Code → catalogue and code → docs.
    for s in &code_sites {
        match &catalogue {
            None => out.push(Diagnostic::new(
                &s.path,
                s.line,
                s.col,
                RULE,
                format!(
                    "failpoint site {:?} has no catalogue: {CATALOGUE_PATH} (fp::SITES) was not found",
                    s.name
                ),
            )),
            Some(cat) => {
                let hits = cat.iter().filter(|(n, _)| *n == s.name).count();
                if hits == 0 {
                    out.push(Diagnostic::new(
                        &s.path,
                        s.line,
                        s.col,
                        RULE,
                        format!(
                            "failpoint site {:?} is missing from scholar_testkit::fp::SITES",
                            s.name
                        ),
                    ));
                }
            }
        }
        match &design {
            None => out.push(Diagnostic::new(
                &s.path,
                s.line,
                s.col,
                RULE,
                format!(
                    "failpoint site {:?} is undocumented: DESIGN.md section {DESIGN_SECTION:?} was not found",
                    s.name
                ),
            )),
            Some(doc) => {
                if !doc.iter().any(|(n, _)| *n == s.name) {
                    out.push(Diagnostic::new(
                        &s.path,
                        s.line,
                        s.col,
                        RULE,
                        format!(
                            "failpoint site {:?} is not documented in the DESIGN.md {DESIGN_SECTION} table",
                            s.name
                        ),
                    ));
                }
            }
        }
    }

    // Catalogue → code (stale entries) and catalogue-internal dups.
    if let Some(cat) = &catalogue {
        for (i, (name, line)) in cat.iter().enumerate() {
            if cat[..i].iter().any(|(n, _)| n == name) {
                out.push(Diagnostic::new(
                    CATALOGUE_PATH,
                    *line,
                    1,
                    RULE,
                    format!("site {name:?} appears more than once in fp::SITES"),
                ));
            }
            if !code_sites.iter().any(|s| s.name == *name) {
                out.push(Diagnostic::new(
                    CATALOGUE_PATH,
                    *line,
                    1,
                    RULE,
                    format!(
                        "fp::SITES lists {name:?} but no failpoint!({name:?}) site exists in production code"
                    ),
                ));
            }
        }
    }

    // Docs → code (stale or duplicated documentation).
    if let Some(doc) = &design {
        for (i, (name, line)) in doc.iter().enumerate() {
            if doc[..i].iter().any(|(n, _)| n == name) {
                out.push(Diagnostic::new(
                    "DESIGN.md",
                    *line,
                    1,
                    RULE,
                    format!("site {name:?} is documented more than once in {DESIGN_SECTION}"),
                ));
            }
            if !code_sites.iter().any(|s| s.name == *name) {
                out.push(Diagnostic::new(
                    "DESIGN.md",
                    *line,
                    1,
                    RULE,
                    format!(
                        "{DESIGN_SECTION} documents site {name:?} but no such failpoint! exists in production code"
                    ),
                ));
            }
        }
    }
}

/// Every `failpoint!("name"…)` invocation in production (non-test) code.
fn collect_code_sites(ws: &Workspace) -> Vec<CodeSite> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !file.rel_path.contains("/src/") {
            continue;
        }
        let code: Vec<&crate::lexer::Token> = file.code_tokens().map(|(_, t)| t).collect();
        for k in 0..code.len() {
            if code[k].is_ident("failpoint")
                && code.get(k + 1).is_some_and(|t| t.is_punct("!"))
                && code.get(k + 2).is_some_and(|t| t.is_punct("("))
                && code.get(k + 3).is_some_and(|t| t.kind == TokenKind::Str)
            {
                let lit = code[k + 3];
                out.push(CodeSite {
                    name: strip_quotes(&lit.text),
                    path: file.rel_path.clone(),
                    line: code[k].line,
                    col: code[k].col,
                });
            }
        }
    }
    out
}

/// The `(name, line)` entries of `pub const SITES: &[&str] = [ … ]` in
/// the catalogue file: string literals between the `[` after the
/// `SITES` identifier and its matching `]`.
fn collect_catalogue(file: &SourceFile) -> Vec<(String, u32)> {
    let code: Vec<&crate::lexer::Token> = file.code_tokens().map(|(_, t)| t).collect();
    let Some(start) = code.iter().position(|t| t.is_ident("SITES")) else {
        return Vec::new();
    };
    // Skip the declared type (`: &[&str]`) — the initializer's bracket
    // is the first `[` after the `=`.
    let Some(eq) = code[start..].iter().position(|t| t.is_punct("=")) else {
        return Vec::new();
    };
    let Some(open) = code[start + eq..].iter().position(|t| t.is_punct("[")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for t in &code[start + eq + open + 1..] {
        if t.is_punct("]") {
            break;
        }
        if t.kind == TokenKind::Str {
            out.push((strip_quotes(&t.text), t.line));
        }
    }
    out
}

/// Backticked site names inside the §2.7 section of DESIGN.md, with
/// their 1-based line numbers. A "site name" is dotted lowercase
/// (`serve.accept`, `corpus.jsonl.io`) — other backticked spans in the
/// section (type names, env vars, file paths) don't match the shape.
fn collect_design_sites(lines: &[String]) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (i, line) in lines.iter().enumerate() {
        if line.starts_with(DESIGN_SECTION) {
            in_section = true;
            continue;
        }
        if in_section && (line.starts_with("## ") || line.starts_with("### ")) {
            break;
        }
        if !in_section {
            continue;
        }
        for span in backticked_spans(line) {
            if is_site_name(span) {
                out.push((span.to_string(), i as u32 + 1));
            }
        }
    }
    out
}

/// The text between each `` ` `` pair on one line.
fn backticked_spans(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(open) = rest.find('`') {
        let after = &rest[open + 1..];
        let Some(close) = after.find('`') else { break };
        out.push(&after[..close]);
        rest = &after[close + 1..];
    }
    out
}

/// Dotted lowercase identifier with at least two segments (and not a
/// file name like `chaos.rs`, which prose legitimately backticks).
fn is_site_name(s: &str) -> bool {
    let segs: Vec<&str> = s.split('.').collect();
    segs.len() >= 2
        && !s.ends_with(".rs")
        && segs.iter().all(|seg| {
            !seg.is_empty()
                && seg.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
        && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
}

fn strip_quotes(text: &str) -> String {
    text.trim_matches('"').to_string()
}
