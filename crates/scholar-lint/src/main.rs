//! `scholar-lint` CLI: `cargo run -p scholar-lint -- check [--root DIR]
//! [--json]`.
//!
//! Prints one `file:line:col [RULE-ID] message` line per finding and
//! exits 1 when any survive the allowlist — the shape CI's lint step
//! and editors both understand. `--json` writes a machine-readable
//! array to stdout (the human lines move to stderr) so CI can archive
//! the findings as an artifact and grep them into the job summary.
//! `rules` lists the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for (id, what) in RULE_SUMMARIES {
                println!("{id:23} {what}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: scholar-lint check [--root DIR] [--json] | scholar-lint rules");
            ExitCode::from(2)
        }
    }
}

const RULE_SUMMARIES: [(&str, &str); 11] = [
    (
        "DETERMINISM",
        "no HashMap/HashSet/RandomState/SystemTime/Instant::now in score-producing crates",
    ),
    (
        "HOTPATH-PANIC",
        "no unwrap/expect/panic!-family/slice-index in scholar-serve production code",
    ),
    ("FAILPOINT-SYNC", "failpoint! sites == scholar_testkit::fp::SITES == DESIGN.md §2.7 table"),
    ("SAFETY-COMMENT", "every unsafe carries an adjacent // SAFETY: comment"),
    ("BENCH-SCHEMA", "every BENCH_*.json writer emits the shared corpus/seed/articles keys"),
    ("LOCK-ORDER", "the call-graph-propagated lock acquisition digraph stays acyclic"),
    (
        "ATOMIC-ORDERING",
        "Ordering::Relaxed in serve/publish crates needs // ORDERING:; publish/consume pairs agree",
    ),
    (
        "DURABILITY-PROTOCOL",
        "rename reaches fsync of file (before) + dir (after), transitively; WAL append fsyncs before send",
    ),
    (
        "BLOCKING-IN-EVENT-LOOP",
        "no fsync/blocking lock/unbounded read/fs call reachable from the epoll drive loop",
    ),
    ("ALLOW-SYNTAX", "lint: allow(...) comments must name a real rule and carry a reason"),
    ("ALLOW-UNUSED", "allows that no longer suppress anything must be deleted"),
];

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    match scholar_lint::check_workspace(&root) {
        Ok(diags) => {
            if json {
                println!("{}", render_json(&diags));
                for d in &diags {
                    eprintln!("{d}");
                }
                if !diags.is_empty() {
                    eprintln!("scholar-lint: {} finding(s)", diags.len());
                }
            } else if diags.is_empty() {
                println!("scholar-lint: clean");
            } else {
                for d in &diags {
                    println!("{d}");
                }
                println!("scholar-lint: {} finding(s)", diags.len());
            }
            if diags.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("scholar-lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}

/// Render diagnostics as a JSON array — hand-rolled, like everything
/// else in this workspace's tooling (no serde in the dependency graph).
fn render_json(diags: &[scholar_lint::Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"path\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.col,
            json_escape(&d.rule),
            json_escape(&d.message),
        ));
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Escape a string for a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
