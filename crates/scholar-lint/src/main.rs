//! `scholar-lint` CLI: `cargo run -p scholar-lint -- check [--root DIR]`.
//!
//! Prints one `file:line:col [RULE-ID] message` line per finding and
//! exits 1 when any survive the allowlist — the shape CI's lint step
//! and editors both understand. `rules` lists the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("rules") => {
            for (id, what) in RULE_SUMMARIES {
                println!("{id:15} {what}");
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: scholar-lint check [--root DIR] | scholar-lint rules");
            ExitCode::from(2)
        }
    }
}

const RULE_SUMMARIES: [(&str, &str); 7] = [
    (
        "DETERMINISM",
        "no HashMap/HashSet/RandomState/SystemTime/Instant::now in score-producing crates",
    ),
    (
        "HOTPATH-PANIC",
        "no unwrap/expect/panic!-family/slice-index in scholar-serve production code",
    ),
    ("FAILPOINT-SYNC", "failpoint! sites == scholar_testkit::fp::SITES == DESIGN.md §2.7 table"),
    ("SAFETY-COMMENT", "every unsafe carries an adjacent // SAFETY: comment"),
    ("BENCH-SCHEMA", "every BENCH_*.json writer emits the shared corpus/seed/articles keys"),
    ("ALLOW-SYNTAX", "lint: allow(...) comments must name a real rule and carry a reason"),
    ("ALLOW-UNUSED", "allows that no longer suppress anything must be deleted"),
];

fn check(args: &[String]) -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => match it.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root needs a directory");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument {other:?}");
                return ExitCode::from(2);
            }
        }
    }
    // Resolve the workspace root: accept either the root itself or any
    // directory under it that has `crates/` above (so plain `cargo run
    // -p scholar-lint -- check` works from the workspace root).
    match scholar_lint::check_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("scholar-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("scholar-lint: {} finding(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("scholar-lint: cannot scan {}: {e}", root.display());
            ExitCode::from(2)
        }
    }
}
