//! Fixture: a score-producing crate that violates DETERMINISM four ways,
//! plus the non-firing cases (string literal, comment, test code).

use std::collections::HashMap;

pub fn violations() -> usize {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = std::time::Instant::now();
    let _ = t.elapsed();
    let s = "HashMap inside a string literal never fires";
    // HashMap and Instant::now() inside a comment never fire.
    m.len() + s.len()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_use_hash_collections() {
        let _ = std::collections::HashSet::<u32>::new();
        let _ = std::time::Instant::now();
    }
}
