//! LOCK-ORDER fixture: inconsistent acquisition orders form a cycle in
//! the lock-order graph; consistent orders stay silent.

use std::sync::{Mutex, PoisonError};

pub struct Shared {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
    pub c: Mutex<u32>,
    pub d: Mutex<u32>,
}

// Positive: a -> b here, b -> a below — a two-lock cycle.
pub fn sum_ab(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    let gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    *ga + *gb
}

pub fn sum_ba(s: &Shared) -> u32 {
    let gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    *ga + *gb
}

// Interprocedural: holding `c`, call a helper that takes `d`; another
// path takes them in the opposite order through a guard-returning
// helper. Allowlisted — the runtime never runs both paths concurrently.
pub fn with_c_then_d(s: &Shared) -> u32 {
    let gc = s.c.lock().unwrap_or_else(PoisonError::into_inner);
    // lint: allow(LOCK-ORDER) fixture exception: the d->c path only runs in single-threaded setup
    *gc + read_d(s)
}

fn read_d(s: &Shared) -> u32 {
    *s.d.lock().unwrap_or_else(PoisonError::into_inner)
}

fn lock_d(s: &Shared) -> std::sync::MutexGuard<'_, u32> {
    s.d.lock().unwrap_or_else(PoisonError::into_inner)
}

pub fn with_d_then_c(s: &Shared) -> u32 {
    let gd = lock_d(s);
    let gc = s.c.lock().unwrap_or_else(PoisonError::into_inner);
    *gd + *gc
}

// Clean: everyone takes `a` before `b`; try_lock never forms an edge.
pub fn sum_ab_again(s: &Shared) -> u32 {
    let ga = s.a.lock().unwrap_or_else(PoisonError::into_inner);
    let gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    *ga + *gb
}

pub fn opportunistic(s: &Shared) -> u32 {
    let gb = s.b.lock().unwrap_or_else(PoisonError::into_inner);
    match s.a.try_lock() {
        Ok(ga) => *ga + *gb,
        Err(_) => *gb,
    }
}
