//! Stale-allowlist fixture: an allow that no longer suppresses anything
//! is itself a finding; a live allow stays silent.

use std::sync::{Mutex, PoisonError};

pub struct State {
    pub stats: Mutex<u64>,
}

pub fn drive(s: &State) {
    hot(s);
    cooled();
    refactored();
}

// Live: the lock is still there, so the allow suppresses a real finding.
fn hot(s: &State) {
    // lint: allow(BLOCKING-IN-EVENT-LOOP) fixture exception: held for one increment
    let mut g = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *g += 1;
}

// Stale: the unwrap this once excused was removed in a refactor.
fn cooled() {
    // lint: allow(HOTPATH-PANIC) fixture leftover from a deleted unwrap
    let _x = 1u32;
}

// Stale: the lock this once excused moved to another module.
fn refactored() {
    // lint: allow(BLOCKING-IN-EVENT-LOOP) fixture leftover from a moved lock
    let _y = 2u32;
}
