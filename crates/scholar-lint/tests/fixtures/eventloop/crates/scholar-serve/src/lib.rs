//! BLOCKING-IN-EVENT-LOOP fixture: fsync and blocking lock acquisition
//! reachable from the epoll driver (`drive`) via the call graph.

use std::sync::{Mutex, PoisonError};

pub struct State {
    pub log: std::fs::File,
    pub stats: Mutex<u64>,
}

pub fn drive(s: &mut State) {
    step(s);
    note(s);
    peek(s);
}

// Positive: fsync two hops below the event loop.
fn step(s: &mut State) {
    flush_log(s);
}

fn flush_log(s: &mut State) {
    let _ = s.log.sync_all();
}

// Positive, allowlisted: a blocking lock the fixture vouches for.
fn note(s: &State) {
    // lint: allow(BLOCKING-IN-EVENT-LOOP) fixture exception: holders release within nanoseconds
    let mut g = s.stats.lock().unwrap_or_else(PoisonError::into_inner);
    *g += 1;
}

// Clean: try_lock never blocks the loop.
fn peek(s: &State) {
    if let Ok(g) = s.stats.try_lock() {
        let _ = *g;
    }
}
