//! Fixture: documented and undocumented `unsafe`.

/// Reads one byte.
pub fn documented(p: *const u8) -> u8 {
    // SAFETY: fixture contract — `p` is valid for reads.
    unsafe { *p }
}

/// Reads one byte without saying why that is sound.
pub fn undocumented(p: *const u8) -> u8 {
    unsafe { *p }
}

/// Trailing placement also counts.
pub fn trailing(p: *const u8) -> u8 {
    unsafe { *p } // SAFETY: fixture contract — `p` is valid for reads.
}

/// The string "unsafe" and a comment saying unsafe never fire.
pub fn not_code() -> &'static str {
    // unsafe in a comment is fine
    "unsafe in a string is fine"
}
