//! Fixture: an outofcore artifact writer that emits the shared spine but
//! drops the RSS measurement pair the artifact exists to record.

fn main() {
    let name = "/../../BENCH_outofcore.json";
    let _ = name;
    builder()
        .field("corpus", 1)
        .field("seed", 42)
        .field("articles", 100)
        .field("peak_rss_bytes", 7)
        .build();
}

struct B;
impl B {
    fn field(self, _k: &str, _v: u32) -> Self {
        self
    }
    fn build(self) {}
}
fn builder() -> B {
    B
}
