//! Fixture: a compliant bench writer — emits every shared key.

fn main() {
    let name = "BENCH_ok.json";
    let _ = name;
    builder()
        .field("corpus", 1)
        .field("seed", 42)
        .field("articles", 100)
        .field("extra_is_fine", 7)
        .build();
}

struct B;
impl B {
    fn field(self, _k: &str, _v: u32) -> Self {
        self
    }
    fn build(self) {}
}
fn builder() -> B {
    B
}
