//! Fixture: a bench artifact writer missing the shared `seed` key.

fn main() {
    let name = "BENCH_fixture.json";
    let json = format!("{{\"corpus\": 1}}");
    let _ = (name, json);
    // Pretend-builder calls the rule recognizes:
    // .field("corpus", …) and .field("articles", …) below, no seed.
    builder().field("corpus", "tiny").field("articles", 100).build();
}

struct B;
impl B {
    fn field(self, _k: &str, _v: u32) -> Self {
        self
    }
    fn build(self) {}
}
fn builder() -> B {
    B
}
