//! ATOMIC-ORDERING fixture: bare `Relaxed` in a scoped crate needs an
//! `// ORDERING:` comment, and publish/consume pairs on one field must
//! use compatible orderings.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Cell {
    pub hits: AtomicU64,
    pub generation: AtomicU64,
    pub epoch: AtomicU64,
}

// Positive: Relaxed with no reasoned comment.
pub fn bump(c: &Cell) {
    c.hits.fetch_add(1, Ordering::Relaxed);
}

// Clean: the comment states why relaxed is enough.
pub fn bump_documented(c: &Cell) {
    // ORDERING: independent monotone counter; nothing reads it to infer
    // visibility of other data.
    c.hits.fetch_add(1, Ordering::Relaxed);
}

// Allowlisted: suppressed without an ORDERING comment.
pub fn bump_allowed(c: &Cell) {
    // lint: allow(ATOMIC-ORDERING) fixture exception standing in for generated code
    c.hits.fetch_add(1, Ordering::Relaxed);
}

// Positive (pairing): `generation` is published with Release but
// consumed with a Relaxed load — the consumer cannot rely on anything
// the publisher wrote before the store.
pub fn publish(c: &Cell) {
    c.generation.store(1, Ordering::Release);
}

pub fn consume(c: &Cell) -> u64 {
    // ORDERING: commented, but the pairing check still fires.
    c.generation.load(Ordering::Relaxed)
}

// Clean pairing: Release store, Acquire load.
pub fn advance(c: &Cell) {
    c.epoch.store(2, Ordering::Release);
}

pub fn observe(c: &Cell) -> u64 {
    c.epoch.load(Ordering::Acquire)
}
