//! DURABILITY-PROTOCOL fixture, rename half: a rename into a published
//! path must be preceded by an fsync of the file and followed by an
//! fsync of the parent directory.

use std::fs::File;
use std::io::Write;
use std::path::Path;

// Positive: no fsync before the rename, no directory sync after it.
pub fn publish_torn(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(b"payload")?;
    drop(f);
    std::fs::rename(tmp, dst)
}

// Clean: file synced before, directory synced after.
pub fn publish_durable(tmp: &Path, dst: &Path, dir: &Path) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(b"payload")?;
    f.sync_all()?;
    drop(f);
    std::fs::rename(tmp, dst)?;
    fsync_dir(dir)
}

// Clean, interprocedural: the helper that writes the tmp file syncs it
// transitively, so the caller's rename is covered.
pub fn publish_via_helper(tmp: &Path, dst: &Path, dir: &Path) -> std::io::Result<()> {
    write_synced(tmp)?;
    std::fs::rename(tmp, dst)?;
    fsync_dir(dir)
}

fn write_synced(tmp: &Path) -> std::io::Result<()> {
    let mut f = File::create(tmp)?;
    f.write_all(b"payload")?;
    f.sync_all()
}

// Allowlisted: a cache file whose loss on crash is acceptable.
pub fn publish_cache(tmp: &Path, dst: &Path) -> std::io::Result<()> {
    // lint: allow(DURABILITY-PROTOCOL) fixture exception: throwaway cache, rebuilt on open
    std::fs::rename(tmp, dst)
}

fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}
