//! DURABILITY-PROTOCOL fixture, journal half: inside scholar-serve a
//! WAL append must reach disk before the response is sent.

use std::fs::File;
use std::io::Write;

pub struct Wal {
    file: File,
}

impl Wal {
    pub fn append(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.file.write_all(bytes)?;
        self.file.sync_data()
    }
}

pub struct Conn;

impl Conn {
    pub fn send(&mut self, _bytes: &[u8]) -> std::io::Result<()> {
        Ok(())
    }
}

// Positive: the response leaves before the journal entry is durable.
pub fn answer_then_log(wal: &mut Wal, conn: &mut Conn) -> std::io::Result<()> {
    conn.send(b"200 ok")?;
    wal.append(b"entry")?;
    Ok(())
}

// Clean: journal first (append syncs internally), then send.
pub fn log_then_answer(wal: &mut Wal, conn: &mut Conn) -> std::io::Result<()> {
    wal.append(b"entry")?;
    conn.send(b"200 ok")?;
    Ok(())
}
