//! Fixture catalogue: lists one live site and one stale one; misses
//! `drift.new` entirely.

pub const SITES: &[&str] = &["serve.good", "stale.gone"];
