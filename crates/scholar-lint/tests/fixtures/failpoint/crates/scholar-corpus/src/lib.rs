//! Fixture: one site in full sync, one drifted out of catalogue + docs.

macro_rules! failpoint {
    ($site:literal) => {
        let _ = $site;
    };
}

pub fn instrumented() {
    failpoint!("serve.good");
    failpoint!("drift.new");
}
