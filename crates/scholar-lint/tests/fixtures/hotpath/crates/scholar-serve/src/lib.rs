//! Fixture: serve-path panic sources, allow suppression, and the
//! meta-diagnostics for broken allow comments.

pub fn violations(v: &[u32]) -> u32 {
    let a = *v.first().unwrap();
    let b = *v.get(1).expect("fixture");
    if v.len() == usize::MAX {
        panic!("unreachable fixture arm");
    }
    let c = v[2];
    let s = "v[9] and v.unwrap() and panic! in a string never fire";
    // v[9], .unwrap() and panic!() in a comment never fire.
    let d = v[3]; // lint: allow(HOTPATH-PANIC) fixture proves a reasoned allow suppresses
    // lint: allow(HOTPATH-PANIC) this allow suppresses nothing and must be flagged unused
    let e = s.len() as u32;
    // lint: allow(HOTPATH-PANIC)
    let f = v[4];
    // lint: allow(NO-SUCH-RULE) unknown rule ids must be flagged
    a + b + c + d + e + f
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v = [1u32, 2];
        assert_eq!(v.first().copied().unwrap(), v[0]);
    }
}
