//! Golden-file tests: each fixture workspace under `tests/fixtures/` is
//! scanned by the real engine and its full diagnostic transcript is
//! compared, byte for byte, against the checked-in `expected.txt`.
//!
//! The fixtures double as the rule-behavior spec: every rule has a case
//! proving it fires on violations, does NOT fire inside string literals,
//! comments, or `#[cfg(test)]` code, and respects (or reports) allow
//! comments. Regenerate a transcript after an intentional rule change
//! with `UPDATE_GOLDEN=1 cargo test -p scholar-lint --test golden`.

use std::path::{Path, PathBuf};

fn fixture_root(case: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(case)
}

fn transcript(case: &str) -> String {
    let diags = scholar_lint::check_workspace(&fixture_root(case))
        .unwrap_or_else(|e| panic!("scanning fixture {case:?} failed: {e}"));
    let mut out = String::new();
    for d in &diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

fn assert_golden(case: &str) {
    let got = transcript(case);
    let golden = fixture_root(case).join("expected.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&golden, &got).expect("write golden transcript");
        return;
    }
    let want = std::fs::read_to_string(&golden)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", golden.display()));
    assert_eq!(
        got, want,
        "fixture {case:?} diverged from its golden transcript \
         (UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn determinism_fixture_matches_golden() {
    assert_golden("determinism");
}

#[test]
fn hotpath_fixture_matches_golden() {
    assert_golden("hotpath");
}

#[test]
fn failpoint_drift_fixture_matches_golden() {
    assert_golden("failpoint");
}

#[test]
fn safety_fixture_matches_golden() {
    assert_golden("safety");
}

#[test]
fn bench_schema_fixture_matches_golden() {
    assert_golden("bench");
}

#[test]
fn lock_order_fixture_matches_golden() {
    assert_golden("lockorder");
}

#[test]
fn atomic_ordering_fixture_matches_golden() {
    assert_golden("atomic");
}

#[test]
fn durability_fixture_matches_golden() {
    assert_golden("durability");
}

#[test]
fn event_loop_fixture_matches_golden() {
    assert_golden("eventloop");
}

#[test]
fn stale_allow_fixture_matches_golden() {
    assert_golden("allowstale");
}

/// The acceptance property behind the golden transcripts, stated
/// directly: rules never fire on banned names that appear only inside
/// string literals or comments.
#[test]
fn literals_and_comments_never_fire() {
    for case in ["determinism", "hotpath", "safety"] {
        let got = transcript(case);
        for line in got.lines() {
            // Every diagnostic line in the goldens points at real code;
            // the fixture lines holding only strings/comments are known.
            assert!(!line.contains("never fire"), "fired inside a literal/comment: {line}");
        }
    }
}

/// FAILPOINT-SYNC drift detection, asserted semantically on top of the
/// golden bytes: a code site absent from the catalogue and the docs is
/// reported against the code line, and stale catalogue/doc entries are
/// reported against their own files.
#[test]
fn failpoint_drift_is_reported_in_every_direction() {
    let got = transcript("failpoint");
    assert!(got.contains("\"drift.new\" is missing from scholar_testkit::fp::SITES"));
    assert!(got.contains("\"drift.new\" is not documented"));
    assert!(got.contains("fp::SITES lists \"stale.gone\""));
    assert!(got.contains("documents site \"stale.doc\""));
    assert!(!got.contains("serve.good"), "the in-sync site must stay silent:\n{got}");
    assert!(!got.contains("outside.section"), "sites outside §2.7 must not count:\n{got}");
}
