//! The workspace gate: the real repository must lint clean.
//!
//! This is the test CI leans on — any new violation of a workspace
//! invariant (nondeterministic containers in score crates, panics in
//! the serve path, failpoint catalogue drift, undocumented `unsafe`,
//! bench schema drift) or any allow comment without a reason fails
//! `cargo test` here, with the same `file:line:col [RULE]` lines the
//! CLI prints.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scholar_lint::check_workspace(&root).expect("scan the workspace");
    assert!(
        diags.is_empty(),
        "scholar-lint found {} undocumented finding(s):\n{}",
        diags.len(),
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// Allowlist round-trip: every allow in the tree both parses and
/// suppresses something. `check_workspace` already folds unused or
/// malformed allows into the diagnostics (ALLOW-UNUSED / ALLOW-SYNTAX),
/// so this is implied by `repository_lints_clean` — asserted separately
/// here so a failure names the property that broke.
#[test]
fn every_allow_is_well_formed_and_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scholar_lint::check_workspace(&root).expect("scan the workspace");
    let meta: Vec<String> = diags
        .iter()
        .filter(|d| d.rule == "ALLOW-UNUSED" || d.rule == "ALLOW-SYNTAX")
        .map(|d| d.to_string())
        .collect();
    assert!(meta.is_empty(), "allowlist entries out of round-trip:\n{}", meta.join("\n"));
}
