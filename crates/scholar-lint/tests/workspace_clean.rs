//! The workspace gate: the real repository must lint clean.
//!
//! This is the test CI leans on — any new violation of a workspace
//! invariant (nondeterministic containers in score crates, panics in
//! the serve path, failpoint catalogue drift, undocumented `unsafe`,
//! bench schema drift, lock-order cycles, unexplained relaxed atomics,
//! torn rename protocols, blocking calls under the event loop) or any
//! allow comment without a reason fails `cargo test` here, with the
//! same `file:line:col [RULE]` lines the CLI prints.

use std::path::Path;

#[test]
fn repository_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scholar_lint::check_workspace(&root).expect("scan the workspace");
    assert!(
        diags.is_empty(),
        "scholar-lint found {} undocumented finding(s):\n{}",
        diags.len(),
        diags.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("\n")
    );
}

/// Allowlist round-trip: every allow in the tree both parses and
/// suppresses something. `check_workspace` already folds unused or
/// malformed allows into the diagnostics (ALLOW-UNUSED / ALLOW-SYNTAX),
/// so this is implied by `repository_lints_clean` — asserted separately
/// here so a failure names the property that broke.
#[test]
fn every_allow_is_well_formed_and_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let diags = scholar_lint::check_workspace(&root).expect("scan the workspace");
    let meta: Vec<String> = diags
        .iter()
        .filter(|d| d.rule == "ALLOW-UNUSED" || d.rule == "ALLOW-SYNTAX")
        .map(|d| d.to_string())
        .collect();
    assert!(meta.is_empty(), "allowlist entries out of round-trip:\n{}", meta.join("\n"));
}

/// The interprocedural rules actually exercise the real tree: the call
/// graph must resolve a healthy number of intra-workspace edges and
/// find fns in every production crate, or the graph rules are running
/// on an empty model and "clean" means "blind".
#[test]
fn call_graph_covers_the_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let ws = scholar_lint::workspace::Workspace::load(&root).expect("scan the workspace");
    let table = scholar_lint::items::FnTable::build(&ws);
    let graph = scholar_lint::callgraph::CallGraph::build(&ws, &table);
    assert!(
        table.fns.len() > 300,
        "expected hundreds of fn items across the workspace, found {}",
        table.fns.len()
    );
    let edges: usize = graph.calls.iter().map(Vec::len).sum();
    assert!(edges > 200, "expected hundreds of resolved call edges, found {edges}");
    for krate in ["scholar-serve", "scholar-corpus", "sgraph", "scholar-rank"] {
        assert!(
            table.fns.iter().any(|f| f.crate_name.as_deref() == Some(krate)),
            "no fn items found in crate {krate}"
        );
    }
}

/// The lint runtime budget the CI gate assumes: a full workspace scan
/// (all nine rules, call graph included) stays under two seconds, so it
/// can run on every push without anyone routing around it.
#[test]
fn full_workspace_scan_stays_under_two_seconds() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    // Warm the page cache so the budget measures analysis, not cold IO.
    scholar_lint::check_workspace(&root).expect("scan the workspace");
    let start = std::time::Instant::now();
    scholar_lint::check_workspace(&root).expect("scan the workspace");
    let elapsed = start.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(2),
        "workspace lint took {elapsed:?}, over the 2s budget"
    );
}
