//! Subgraph extraction with node re-labeling.
//!
//! Year-snapshot experiments ("rank using only data up to year Y") are
//! implemented by inducing the subgraph on the articles published by the
//! cutoff; [`SubgraphMap`] keeps the correspondence between the original
//! and induced node ids so scores can be mapped back.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// The id correspondence produced by [`induced_subgraph`].
#[derive(Debug, Clone)]
pub struct SubgraphMap {
    /// `orig_of[sub]` = the original id of subgraph node `sub`.
    orig_of: Vec<u32>,
    /// `sub_of[orig]` = subgraph id of original node, or `u32::MAX`.
    sub_of: Vec<u32>,
}

impl SubgraphMap {
    /// Original id of a subgraph node.
    #[inline]
    pub fn to_original(&self, sub: NodeId) -> NodeId {
        NodeId(self.orig_of[sub.index()])
    }

    /// Subgraph id of an original node, if it was kept.
    #[inline]
    pub fn to_subgraph(&self, orig: NodeId) -> Option<NodeId> {
        match self.sub_of.get(orig.index()) {
            Some(&v) if v != u32::MAX => Some(NodeId(v)),
            _ => None,
        }
    }

    /// Number of kept nodes.
    pub fn len(&self) -> usize {
        self.orig_of.len()
    }

    /// `true` when no nodes were kept.
    pub fn is_empty(&self) -> bool {
        self.orig_of.is_empty()
    }

    /// Iterate over `(subgraph id, original id)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (NodeId, NodeId)> + '_ {
        self.orig_of.iter().enumerate().map(|(s, &o)| (NodeId(s as u32), NodeId(o)))
    }

    /// Scatter a subgraph score vector back into an original-sized vector,
    /// filling dropped nodes with `fill`.
    pub fn scatter(&self, sub_scores: &[f64], fill: f64) -> Vec<f64> {
        assert_eq!(sub_scores.len(), self.orig_of.len(), "score vector length mismatch");
        let mut out = vec![fill; self.sub_of.len()];
        for (s, &o) in self.orig_of.iter().enumerate() {
            out[o as usize] = sub_scores[s];
        }
        out
    }

    /// Gather an original-sized vector down to subgraph order.
    pub fn gather(&self, orig_scores: &[f64]) -> Vec<f64> {
        assert_eq!(orig_scores.len(), self.sub_of.len(), "score vector length mismatch");
        self.orig_of.iter().map(|&o| orig_scores[o as usize]).collect()
    }
}

/// Induce the subgraph on the nodes where `keep(v)` is true.
///
/// Kept nodes are renumbered densely in ascending original order; edges
/// survive iff both endpoints are kept. Runs in O(V + E).
pub fn induced_subgraph<F>(g: &CsrGraph, mut keep: F) -> (CsrGraph, SubgraphMap)
where
    F: FnMut(NodeId) -> bool,
{
    let n = g.len();
    let mut sub_of = vec![u32::MAX; n];
    let mut orig_of = Vec::new();
    for v in g.nodes() {
        if keep(v) {
            sub_of[v.index()] = orig_of.len() as u32;
            orig_of.push(v.0);
        }
    }
    let mut b = GraphBuilder::new(orig_of.len() as u32);
    for e in g.edges() {
        let s = sub_of[e.src.index()];
        let d = sub_of[e.dst.index()];
        if s != u32::MAX && d != u32::MAX {
            b.add_edge(NodeId(s), NodeId(d), e.weight);
        }
    }
    (b.build(), SubgraphMap { orig_of, sub_of })
}

/// Induce the subgraph on an explicit node set (order-insensitive,
/// duplicates ignored).
pub fn subgraph_of_nodes(g: &CsrGraph, nodes: &[NodeId]) -> (CsrGraph, SubgraphMap) {
    let mut keep = vec![false; g.len()];
    for &v in nodes {
        keep[v.index()] = true;
    }
    induced_subgraph(g, |v| keep[v.index()])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path5() -> CsrGraph {
        GraphBuilder::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (0, 4, 9.0)],
        )
    }

    #[test]
    fn keep_even_nodes() {
        let g = path5();
        let (sub, map) = induced_subgraph(&g, |v| v.0 % 2 == 0);
        assert_eq!(sub.num_nodes(), 3); // 0, 2, 4
        assert_eq!(map.to_original(NodeId(1)), NodeId(2));
        assert_eq!(map.to_subgraph(NodeId(4)), Some(NodeId(2)));
        assert_eq!(map.to_subgraph(NodeId(1)), None);
        // Only surviving edge: 0 -> 4 (weight 9).
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.edge_weight(NodeId(0), NodeId(2)), Some(9.0));
    }

    #[test]
    fn keep_all_is_identity_shape() {
        let g = path5();
        let (sub, map) = induced_subgraph(&g, |_| true);
        assert_eq!(sub, g);
        for v in g.nodes() {
            assert_eq!(map.to_subgraph(v), Some(v));
        }
    }

    #[test]
    fn keep_none_is_empty() {
        let g = path5();
        let (sub, map) = induced_subgraph(&g, |_| false);
        assert!(sub.is_empty());
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn scatter_and_gather_roundtrip() {
        let g = path5();
        let (_, map) = induced_subgraph(&g, |v| v.0 >= 2);
        let sub_scores = vec![0.2, 0.3, 0.5];
        let full = map.scatter(&sub_scores, 0.0);
        assert_eq!(full, vec![0.0, 0.0, 0.2, 0.3, 0.5]);
        assert_eq!(map.gather(&full), sub_scores);
    }

    #[test]
    fn subgraph_of_nodes_ignores_duplicates() {
        let g = path5();
        let (sub, map) = subgraph_of_nodes(&g, &[NodeId(3), NodeId(1), NodeId(3), NodeId(2)]);
        assert_eq!(sub.num_nodes(), 3);
        // Dense ascending renumbering: 1->0, 2->1, 3->2.
        assert_eq!(map.to_original(NodeId(0)), NodeId(1));
        assert!(sub.has_edge(NodeId(0), NodeId(1))); // 1 -> 2
        assert!(sub.has_edge(NodeId(1), NodeId(2))); // 2 -> 3
        assert_eq!(sub.num_edges(), 2);
    }

    #[test]
    fn iter_pairs() {
        let g = path5();
        let (_, map) = induced_subgraph(&g, |v| v.0 > 2);
        let pairs: Vec<_> = map.iter().collect();
        assert_eq!(pairs, vec![(NodeId(0), NodeId(3)), (NodeId(1), NodeId(4))]);
    }
}
