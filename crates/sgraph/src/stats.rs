//! Degree statistics and power-law diagnostics.
//!
//! The synthetic corpus generator is validated against these statistics
//! (heavy-tailed in-degree with exponent ~3 for preferential attachment),
//! and R-Table 1 reports them per dataset preset.

use crate::csr::CsrGraph;

/// Summary statistics of a degree sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: f64,
    /// Gini coefficient of the degree distribution (0 = equal, →1 =
    /// concentrated on few nodes).
    pub gini: f64,
    /// Fraction of nodes with degree zero.
    pub zero_fraction: f64,
}

fn degree_stats(mut degrees: Vec<usize>) -> DegreeStats {
    if degrees.is_empty() {
        return DegreeStats {
            min: 0,
            max: 0,
            mean: 0.0,
            median: 0.0,
            gini: 0.0,
            zero_fraction: 0.0,
        };
    }
    degrees.sort_unstable();
    let n = degrees.len();
    let sum: usize = degrees.iter().sum();
    let mean = sum as f64 / n as f64;
    let median = if n % 2 == 1 {
        degrees[n / 2] as f64
    } else {
        (degrees[n / 2 - 1] + degrees[n / 2]) as f64 / 2.0
    };
    let zero_fraction = degrees.iter().take_while(|&&d| d == 0).count() as f64 / n as f64;
    // Gini from the sorted sequence: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
    let gini = if sum == 0 {
        0.0
    } else {
        let weighted: f64 =
            degrees.iter().enumerate().map(|(i, &d)| (i as f64 + 1.0) * d as f64).sum();
        (2.0 * weighted) / (n as f64 * sum as f64) - (n as f64 + 1.0) / n as f64
    };
    DegreeStats { min: degrees[0], max: degrees[n - 1], mean, median, gini, zero_fraction }
}

/// In-degree statistics of `g`.
pub fn in_degree_stats(g: &CsrGraph) -> DegreeStats {
    degree_stats(g.nodes().map(|v| g.in_degree(v)).collect())
}

/// Out-degree statistics of `g`.
pub fn out_degree_stats(g: &CsrGraph) -> DegreeStats {
    degree_stats(g.nodes().map(|v| g.out_degree(v)).collect())
}

/// Histogram of a degree sequence: `hist[d]` = number of nodes with degree
/// `d`, truncated at the maximum observed degree.
pub fn degree_histogram(degrees: impl Iterator<Item = usize>) -> Vec<usize> {
    let mut hist = Vec::new();
    for d in degrees {
        if d >= hist.len() {
            hist.resize(d + 1, 0);
        }
        hist[d] += 1;
    }
    hist
}

/// In-degree histogram of `g`.
pub fn in_degree_histogram(g: &CsrGraph) -> Vec<usize> {
    degree_histogram(g.nodes().map(|v| g.in_degree(v)))
}

/// Maximum-likelihood estimate of a discrete power-law exponent α for the
/// tail `degree >= x_min`, using the standard continuous approximation
/// (Clauset–Shalizi–Newman eq. 3.7 with the ½ offset):
///
/// ```text
/// α ≈ 1 + n · [ Σ ln( x_i / (x_min − ½) ) ]⁻¹
/// ```
///
/// Returns `None` if fewer than `min_tail` observations reach `x_min`.
pub fn power_law_alpha_mle(
    degrees: impl Iterator<Item = usize>,
    x_min: usize,
    min_tail: usize,
) -> Option<f64> {
    assert!(x_min >= 1, "x_min must be at least 1");
    let shift = x_min as f64 - 0.5;
    let mut n = 0usize;
    let mut log_sum = 0.0f64;
    for d in degrees {
        if d >= x_min {
            n += 1;
            log_sum += (d as f64 / shift).ln();
        }
    }
    if n < min_tail || log_sum <= 0.0 {
        None
    } else {
        Some(1.0 + n as f64 / log_sum)
    }
}

/// Estimate the power-law exponent of `g`'s in-degree tail.
pub fn in_degree_power_law_alpha(g: &CsrGraph, x_min: usize) -> Option<f64> {
    power_law_alpha_mle(g.nodes().map(|v| g.in_degree(v)), x_min, 25)
}

/// Edge density `E / (V·(V−1))` (NaN for graphs with < 2 nodes).
pub fn density(g: &CsrGraph) -> f64 {
    let n = g.len() as f64;
    g.num_edges() as f64 / (n * (n - 1.0))
}

/// Reciprocity: fraction of edges `u→v` for which `v→u` also exists.
/// Self-loops count as reciprocated. 0 for an edgeless graph.
pub fn reciprocity(g: &CsrGraph) -> f64 {
    if g.num_edges() == 0 {
        return 0.0;
    }
    let mut recip = 0usize;
    for e in g.edges() {
        if g.has_edge(e.dst, e.src) {
            recip += 1;
        }
    }
    recip as f64 / g.num_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(n: u32) -> CsrGraph {
        // 1..n all point at 0.
        let edges: Vec<(u32, u32)> = (1..n).map(|i| (i, 0)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn star_in_degree_stats() {
        let g = star(11);
        let s = in_degree_stats(&g);
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 0);
        assert!((s.mean - 10.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.median, 0.0);
        assert!((s.zero_fraction - 10.0 / 11.0).abs() < 1e-12);
        assert!(s.gini > 0.85, "star should be maximally unequal, got {}", s.gini);
    }

    #[test]
    fn regular_graph_gini_zero() {
        // Cycle: every in-degree is 1.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let s = in_degree_stats(&g);
        assert!(s.gini.abs() < 1e-12);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1);
        assert_eq!(s.median, 1.0);
    }

    #[test]
    fn empty_graph_stats() {
        let g = CsrGraph::empty(0);
        let s = in_degree_stats(&g);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn histogram_counts() {
        let g = star(5);
        let hist = in_degree_histogram(&g);
        assert_eq!(hist, vec![4, 0, 0, 0, 1]); // four 0s, one 4
        let out_hist = degree_histogram(g.nodes().map(|v| g.out_degree(v)));
        assert_eq!(out_hist, vec![1, 4]); // node 0 has out 0, others 1
    }

    #[test]
    fn alpha_mle_recovers_planted_exponent() {
        // Sample from a discrete power law P(X = x) ∝ x^-2.5 by inverse
        // transform on the continuous approximation.
        let alpha = 2.5f64;
        let x_min = 2usize;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut degrees = Vec::new();
        for _ in 0..20_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let u = (state >> 11) as f64 / (1u64 << 53) as f64;
            let x = (x_min as f64 - 0.5) * (1.0 - u).powf(-1.0 / (alpha - 1.0));
            degrees.push(x.round() as usize);
        }
        let est = power_law_alpha_mle(degrees.into_iter(), x_min, 100).unwrap();
        assert!((est - alpha).abs() < 0.1, "estimated {est}, wanted ~{alpha}");
    }

    #[test]
    fn alpha_mle_requires_tail() {
        assert_eq!(power_law_alpha_mle([1usize, 1, 1].into_iter(), 2, 1), None);
        assert_eq!(power_law_alpha_mle([5usize; 3].into_iter(), 2, 10), None);
    }

    #[test]
    fn density_and_reciprocity() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        assert!((density(&g) - 3.0 / 6.0).abs() < 1e-12);
        assert!((reciprocity(&g) - 2.0 / 3.0).abs() < 1e-12);
        let dag = GraphBuilder::from_edges(3, &[(0, 1), (1, 2)]);
        assert_eq!(reciprocity(&dag), 0.0);
        assert_eq!(reciprocity(&CsrGraph::empty(2)), 0.0);
    }
}
