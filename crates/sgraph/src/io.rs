//! Graph serialization: whitespace edge-list text and a compact binary
//! format.
//!
//! The text format is one edge per line — `src dst [weight]` — with `#`
//! comments and blank lines ignored; it is interchange-compatible with the
//! formats published alongside AAN and SNAP datasets. The binary format is
//! a little-endian dump of the CSR arrays behind a magic/version header,
//! used to cache large generated corpora between benchmark runs.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphBuilder, GraphError, Result};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"SGRAPH01";

/// Parse a graph from edge-list text. Node count is
/// `max(seen node) + 1` unless `num_nodes` forces a larger graph.
pub fn read_edge_list<R: Read>(reader: R, num_nodes: Option<u32>) -> Result<CsrGraph> {
    let reader = BufReader::new(reader);
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut max_node: Option<u32> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let lineno = lineno + 1;
        let src: u32 = parts
            .next()
            .ok_or_else(|| GraphError::ParseError { line: lineno, message: "missing src".into() })?
            .parse()
            .map_err(|e| GraphError::ParseError {
                line: lineno,
                message: format!("bad src: {e}"),
            })?;
        let dst: u32 = parts
            .next()
            .ok_or_else(|| GraphError::ParseError { line: lineno, message: "missing dst".into() })?
            .parse()
            .map_err(|e| GraphError::ParseError {
                line: lineno,
                message: format!("bad dst: {e}"),
            })?;
        let weight: f64 = match parts.next() {
            Some(tok) => tok.parse().map_err(|e| GraphError::ParseError {
                line: lineno,
                message: format!("bad weight: {e}"),
            })?,
            None => 1.0,
        };
        if parts.next().is_some() {
            return Err(GraphError::ParseError {
                line: lineno,
                message: "trailing tokens after weight".into(),
            });
        }
        max_node = Some(max_node.map_or(src.max(dst), |m| m.max(src).max(dst)));
        edges.push((src, dst, weight));
    }
    let n = match (num_nodes, max_node) {
        (Some(n), Some(m)) => n.max(m + 1),
        (Some(n), None) => n,
        (None, Some(m)) => m + 1,
        (None, None) => 0,
    };
    let mut b = GraphBuilder::new(n).with_edge_capacity(edges.len());
    for (s, d, w) in edges {
        b.add_edge(NodeId(s), NodeId(d), w);
    }
    b.try_build()
}

/// Write a graph as edge-list text. Weights equal to 1.0 are omitted.
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# sgraph edge list: {} nodes, {} edges", g.num_nodes(), g.num_edges())?;
    for e in g.edges() {
        if e.weight == 1.0 {
            writeln!(w, "{} {}", e.src.0, e.dst.0)?;
        } else {
            writeln!(w, "{} {} {}", e.src.0, e.dst.0, e.weight)?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Read an edge-list file from disk.
pub fn read_edge_list_file(path: &Path, num_nodes: Option<u32>) -> Result<CsrGraph> {
    read_edge_list(std::fs::File::open(path)?, num_nodes)
}

/// Write an edge-list file to disk.
pub fn write_edge_list_file(g: &CsrGraph, path: &Path) -> Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialize the graph in the compact binary format.
pub fn write_binary<W: Write>(g: &CsrGraph, writer: W) -> Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u64(&mut w, g.num_nodes() as u64)?;
    write_u64(&mut w, g.num_edges() as u64)?;
    for &off in &g.out_offsets {
        write_u64(&mut w, off as u64)?;
    }
    for &t in &g.out_targets {
        w.write_all(&t.to_le_bytes())?;
    }
    for &wt in &g.out_weights {
        w.write_all(&wt.to_le_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Deserialize a graph written by [`write_binary`]. The in-CSR is rebuilt
/// and the result validated.
pub fn read_binary<R: Read>(reader: R) -> Result<CsrGraph> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(GraphError::BadBinaryFormat("bad magic".into()));
    }
    let n = read_u64(&mut r)?;
    let m = read_u64(&mut r)?;
    if n > u32::MAX as u64 {
        return Err(GraphError::BadBinaryFormat("node count exceeds u32".into()));
    }
    let mut offsets = Vec::with_capacity(n as usize + 1);
    for _ in 0..=n {
        let off = read_u64(&mut r)?;
        if off > m {
            return Err(GraphError::BadBinaryFormat("offset exceeds edge count".into()));
        }
        offsets.push(off as usize);
    }
    let mut targets = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf)?;
        targets.push(u32::from_le_bytes(buf));
    }
    let mut weights = Vec::with_capacity(m as usize);
    for _ in 0..m {
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf)?;
        weights.push(f64::from_le_bytes(buf));
    }
    // Rebuild via the builder to regenerate the in-CSR and validate.
    let mut b = GraphBuilder::new(n as u32).with_edge_capacity(m as usize);
    for u in 0..n as usize {
        let (start, end) = (offsets[u], offsets[u + 1]);
        if end < start {
            return Err(GraphError::BadBinaryFormat("offsets not monotone".into()));
        }
        for i in start..end {
            b.add_edge(NodeId(u as u32), NodeId(targets[i]), weights[i]);
        }
    }
    let g = b.try_build()?;
    g.validate()?;
    Ok(g)
}

/// Read a binary graph file from disk.
pub fn read_binary_file(path: &Path) -> Result<CsrGraph> {
    read_binary(std::fs::File::open(path)?)
}

/// Write a binary graph file to disk.
pub fn write_binary_file(g: &CsrGraph, path: &Path) -> Result<()> {
    write_binary(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrGraph {
        GraphBuilder::from_weighted_edges(
            5,
            &[(0, 1, 1.0), (0, 2, 2.5), (3, 4, 1.0), (4, 0, 0.125)],
        )
    }

    #[test]
    fn text_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], None).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_roundtrip_preserves_isolated_nodes_with_hint() {
        let g = GraphBuilder::from_edges(10, &[(0, 1)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let g2 = read_edge_list(&buf[..], Some(10)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn text_parses_comments_and_defaults() {
        let text = "# a comment\n\n0 1\n1 2 0.5\n  # indented comment\n";
        let g = read_edge_list(text.as_bytes(), None).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.0));
        assert_eq!(g.edge_weight(NodeId(1), NodeId(2)), Some(0.5));
    }

    #[test]
    fn text_parse_errors_carry_line_numbers() {
        let text = "0 1\nnot numbers\n";
        match read_edge_list(text.as_bytes(), None) {
            Err(GraphError::ParseError { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected ParseError, got {other:?}"),
        }
        let text2 = "0\n";
        assert!(matches!(
            read_edge_list(text2.as_bytes(), None),
            Err(GraphError::ParseError { line: 1, .. })
        ));
        let text3 = "0 1 2.0 junk\n";
        assert!(read_edge_list(text3.as_bytes(), None).is_err());
    }

    #[test]
    fn empty_text_is_empty_graph() {
        let g = read_edge_list("".as_bytes(), None).unwrap();
        assert!(g.is_empty());
        let g = read_edge_list("# only comments\n".as_bytes(), Some(3)).unwrap();
        assert_eq!(g.num_nodes(), 3);
    }

    #[test]
    fn binary_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let g2 = read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip_empty_and_isolated() {
        for g in [CsrGraph::empty(0), CsrGraph::empty(7)] {
            let mut buf = Vec::new();
            write_binary(&g, &mut buf).unwrap();
            assert_eq!(read_binary(&buf[..]).unwrap(), g);
        }
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_binary(&buf[..]), Err(GraphError::BadBinaryFormat(_))));
    }

    #[test]
    fn binary_rejects_truncation() {
        let mut buf = Vec::new();
        write_binary(&sample(), &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn file_roundtrips() {
        let dir = std::env::temp_dir().join("sgraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample();
        let txt = dir.join("g.txt");
        write_edge_list_file(&g, &txt).unwrap();
        assert_eq!(read_edge_list_file(&txt, None).unwrap(), g);
        let bin = dir.join("g.bin");
        write_binary_file(&g, &bin).unwrap();
        assert_eq!(read_binary_file(&bin).unwrap(), g);
        std::fs::remove_dir_all(&dir).ok();
    }
}
