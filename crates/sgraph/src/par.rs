//! Minimal data-parallel helpers built on scoped threads.
//!
//! The PageRank-family kernels are embarrassingly parallel over disjoint
//! output ranges, so a full work-stealing runtime is unnecessary: we
//! partition the output index space into contiguous chunks, one per
//! worker, and join. Chunks are balanced by *edge count* when the caller
//! provides a prefix-sum of per-index work, which matters for power-law
//! graphs where a uniform node split can leave one thread with most of
//! the edges.

/// Number of workers to use by default: the available parallelism, capped
/// at 16 (diminishing returns for memory-bound SpMV beyond that).
///
/// The `SCHOLAR_THREADS` environment variable overrides the probe when it
/// is set to a positive integer — `SCHOLAR_THREADS=1` forces every
/// default-configured kernel sequential, the CLI `--threads` flag does
/// the same per invocation.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("SCHOLAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(16)
}

/// Split `0..len` into at most `threads` contiguous ranges of near-equal
/// length. Returns fewer ranges when `len < threads`. Empty when `len == 0`.
pub fn uniform_ranges(len: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    if len == 0 || threads == 0 {
        return Vec::new();
    }
    let threads = threads.min(len);
    let chunk = len / threads;
    let rem = len % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for i in 0..threads {
        let extra = usize::from(i < rem);
        let end = start + chunk + extra;
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// Split `0..prefix.len()-1` into ranges that each carry roughly
/// `total_work / threads` units, where `prefix` is a monotone prefix-sum of
/// per-index work (e.g. CSR offsets: `prefix[i+1] - prefix[i]` edges at
/// index `i`).
pub fn balanced_ranges(prefix: &[usize], threads: usize) -> Vec<std::ops::Range<usize>> {
    let len = prefix.len().saturating_sub(1);
    if len == 0 || threads == 0 {
        return Vec::new();
    }
    let total = prefix[len] - prefix[0];
    if total == 0 {
        return uniform_ranges(len, threads);
    }
    let threads = threads.min(len);
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0usize;
    for i in 0..threads {
        if start >= len {
            break;
        }
        let target = prefix[0] + (total as u128 * (i as u128 + 1) / threads as u128) as usize;
        // First index whose prefix value reaches the target.
        let mut end = match prefix[start + 1..=len].binary_search(&target) {
            Ok(pos) => start + 1 + pos,
            Err(pos) => start + 1 + pos,
        };
        end = end.min(len).max(start + 1);
        if i == threads - 1 {
            end = len;
        }
        ranges.push(start..end);
        start = end;
    }
    if let Some(last) = ranges.last_mut() {
        last.end = len;
    }
    ranges
}

/// Run `f` on each output range in parallel, giving each invocation a
/// disjoint `&mut` view of `out`. `f(range, out_chunk)` receives the global
/// index range and the slice `&mut out[range]`.
///
/// Falls back to a sequential loop when only one range is produced, so
/// callers can use it unconditionally.
pub fn for_each_range_mut<T, F>(out: &mut [T], ranges: &[std::ops::Range<usize>], f: F)
where
    T: Send,
    F: Fn(std::ops::Range<usize>, &mut [T]) + Sync,
{
    debug_assert!(ranges_cover_disjoint(ranges, out.len()), "ranges must be disjoint ascending");
    if ranges.len() <= 1 {
        if let Some(r) = ranges.first() {
            f(r.clone(), &mut out[r.clone()]);
        }
        return;
    }
    // Split `out` into the disjoint chunks described by `ranges`.
    let mut chunks: Vec<(std::ops::Range<usize>, &mut [T])> = Vec::with_capacity(ranges.len());
    let mut rest = out;
    let mut offset = 0usize;
    for r in ranges {
        let (skip, tail) = rest.split_at_mut(r.start - offset);
        debug_assert!(skip.is_empty() || r.start > offset);
        let (chunk, tail) = tail.split_at_mut(r.end - r.start);
        chunks.push((r.clone(), chunk));
        rest = tail;
        offset = r.end;
    }
    std::thread::scope(|scope| {
        for (range, chunk) in chunks {
            let f = &f;
            scope.spawn(move || f(range, chunk));
        }
    });
}

fn ranges_cover_disjoint(ranges: &[std::ops::Range<usize>], len: usize) -> bool {
    let mut prev = 0usize;
    for r in ranges {
        if r.start < prev || r.end < r.start || r.end > len {
            return false;
        }
        prev = r.end;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ranges_cover_everything() {
        for len in [0usize, 1, 5, 16, 17, 1000] {
            for threads in [1usize, 2, 3, 8, 64] {
                let rs = uniform_ranges(len, threads);
                let covered: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len, "len={len} threads={threads}");
                let mut prev = 0;
                for r in &rs {
                    assert_eq!(r.start, prev);
                    prev = r.end;
                }
                if len > 0 {
                    let max = rs.iter().map(|r| r.len()).max().unwrap();
                    let min = rs.iter().map(|r| r.len()).min().unwrap();
                    assert!(max - min <= 1, "uniform ranges should differ by at most 1");
                }
            }
        }
    }

    #[test]
    fn zero_threads_yields_no_ranges() {
        assert!(uniform_ranges(10, 0).is_empty());
        assert!(balanced_ranges(&[0, 1, 2], 0).is_empty());
    }

    #[test]
    fn balanced_ranges_split_by_work() {
        // Index 0 carries 100 units, indices 1..=4 carry 1 each.
        let prefix = vec![0usize, 100, 101, 102, 103, 104];
        let rs = balanced_ranges(&prefix, 2);
        assert_eq!(rs.iter().map(|r| r.len()).sum::<usize>(), 5);
        // First range should be just the heavy index.
        assert_eq!(rs[0], 0..1);
        assert_eq!(rs.last().unwrap().end, 5);
    }

    #[test]
    fn balanced_ranges_handle_zero_work() {
        let prefix = vec![0usize; 6]; // five indices, no work
        let rs = balanced_ranges(&prefix, 3);
        let covered: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(covered, 5);
    }

    #[test]
    fn balanced_ranges_are_contiguous_and_complete() {
        let prefix: Vec<usize> = (0..=97).map(|i| i * i).collect();
        for threads in [1, 2, 3, 7, 16] {
            let rs = balanced_ranges(&prefix, threads);
            let mut prev = 0;
            for r in &rs {
                assert_eq!(r.start, prev);
                assert!(r.end > r.start);
                prev = r.end;
            }
            assert_eq!(prev, 97);
        }
    }

    #[test]
    fn for_each_range_mut_writes_disjoint_chunks() {
        let mut data = vec![0usize; 100];
        let ranges = uniform_ranges(100, 4);
        for_each_range_mut(&mut data, &ranges, |range, chunk| {
            for (i, slot) in range.clone().zip(chunk.iter_mut()) {
                *slot = i * 2;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i * 2);
        }
    }

    #[test]
    fn for_each_range_mut_sequential_fallback() {
        let mut data = vec![0u32; 5];
        #[allow(clippy::single_range_in_vec_init)] // one range, not vec![0..5]
        let single: [std::ops::Range<usize>; 1] = [0..5];
        for_each_range_mut(&mut data, &single, |_, chunk| {
            for v in chunk {
                *v = 7;
            }
        });
        assert_eq!(data, vec![7; 5]);
        // Empty ranges: no-op.
        let mut data2 = vec![1u32; 3];
        for_each_range_mut(&mut data2, &[], |_, _| unreachable!());
        assert_eq!(data2, vec![1; 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
        assert!(default_threads() <= 16);
    }
}
