//! Read-only memory mapping with a portable heap fallback.
//!
//! The out-of-core layers ([`crate::mmap_csr`] and scholar-corpus's
//! colstore) want file-backed byte ranges they can view as typed slices
//! without copying. On Linux this module maps files with `mmap(2)`
//! declared directly against libc (the same no-new-deps syscall idiom as
//! scholar-serve's epoll backend); under Miri or on other platforms it
//! degrades to reading the file into an 8-byte-aligned heap buffer, so
//! every consumer keeps working — just without the paging benefit.
//!
//! All typed views require 8-byte section alignment, which the on-disk
//! formats guarantee by padding; the accessors assert it.

use std::fs::File;
use std::io;
use std::path::Path;

#[cfg(all(target_os = "linux", not(miri)))]
mod sys {
    //! Raw `mmap`/`munmap` declarations. Constants mirror the Linux ABI
    //! (stable since forever on every architecture we build for).

    use std::ffi::{c_int, c_long, c_void};

    /// Pages are readable only.
    pub const PROT_READ: c_int = 1;
    /// Private copy-on-write mapping (we never write, so: just private).
    pub const MAP_PRIVATE: c_int = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: c_long,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
    }
}

/// A read-only view of an entire file.
///
/// On Linux the bytes are served straight from the page cache via
/// `mmap`; elsewhere (and under Miri) they live in an aligned heap
/// buffer. Either way [`Mmap::bytes`] and the typed-slice accessors
/// behave identically.
pub struct Mmap {
    backing: Backing,
    len: usize,
}

enum Backing {
    /// Zero-length files map to nothing; serve an empty slice.
    Empty,
    #[cfg(all(target_os = "linux", not(miri)))]
    Mapped(*mut std::ffi::c_void),
    #[allow(dead_code)] // constructed only on non-Linux / Miri builds
    Heap(Vec<u64>),
}

// SAFETY: the mapping is PROT_READ and never mutated after construction,
// so shared references to its bytes are safe to send and share across
// threads; the heap variant is a plain Vec.
unsafe impl Send for Mmap {}
// SAFETY: see Send — the underlying memory is immutable for the life of
// the value.
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Map `path` read-only. Returns the usual `io::Error` on open or
    /// map failure.
    pub fn map_file(path: &Path) -> io::Result<Mmap> {
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Mmap { backing: Backing::Empty, len: 0 });
        }
        #[cfg(all(target_os = "linux", not(miri)))]
        {
            use std::os::fd::AsRawFd;
            let ptr =
                // SAFETY: fd is a valid open file descriptor for the whole
                // call; len > 0; we request a fresh PROT_READ private mapping
                // at a kernel-chosen address and check for MAP_FAILED.
                unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(Mmap { backing: Backing::Mapped(ptr), len })
        }
        #[cfg(not(all(target_os = "linux", not(miri))))]
        {
            use std::io::Read;
            // Heap fallback: read into a Vec<u64> so the base address is
            // 8-byte aligned for the typed accessors, then view as bytes.
            let mut file = file;
            let mut buf = vec![0u64; len.div_ceil(8)];
            let dst =
                // SAFETY: the Vec owns `len.div_ceil(8) * 8 >= len` writable
                // bytes; u64 has no invalid bit patterns, so filling them as
                // raw bytes is fine.
                unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
            file.read_exact(dst)?;
            Ok(Mmap { backing: Backing::Heap(buf), len })
        }
    }

    /// The file's bytes.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            Backing::Empty => &[],
            #[cfg(all(target_os = "linux", not(miri)))]
            Backing::Mapped(ptr) => {
                // SAFETY: the mapping is live (unmapped only in Drop), spans
                // exactly `len` readable bytes, and is never written.
                unsafe { std::slice::from_raw_parts(*ptr as *const u8, self.len) }
            }
            Backing::Heap(buf) => {
                // SAFETY: buf owns at least `len` initialized bytes
                // (zero-filled then overwritten by read_exact).
                unsafe { std::slice::from_raw_parts(buf.as_ptr() as *const u8, self.len) }
            }
        }
    }

    /// Total length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the file was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// View `bytes[off..off + count * 4]` as `&[u32]` (little-endian
    /// native, as all on-disk formats here are). `off` must be 4-aligned.
    pub fn as_u32s(&self, off: usize, count: usize) -> &[u32] {
        slice_at::<u32>(self.bytes(), off, count)
    }

    /// View a byte range as `&[i32]`; see [`Mmap::as_u32s`].
    pub fn as_i32s(&self, off: usize, count: usize) -> &[i32] {
        slice_at::<i32>(self.bytes(), off, count)
    }

    /// View a byte range as `&[u64]`; `off` must be 8-aligned.
    pub fn as_u64s(&self, off: usize, count: usize) -> &[u64] {
        slice_at::<u64>(self.bytes(), off, count)
    }

    /// View a byte range as `&[f64]`; `off` must be 8-aligned.
    pub fn as_f64s(&self, off: usize, count: usize) -> &[f64] {
        slice_at::<f64>(self.bytes(), off, count)
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", not(miri)))]
        if let Backing::Mapped(ptr) = self.backing {
            // SAFETY: ptr/len came from a successful mmap and nothing
            // else unmaps them; after this the struct is gone, so no
            // slice from bytes() can outlive the mapping (they borrow
            // self).
            unsafe {
                sys::munmap(ptr, self.len);
            }
        }
    }
}

/// View `bytes[off..off + count * size_of::<T>()]` as a typed slice.
///
/// `T` is one of the plain-old-data numeric types re-exported above;
/// bounds and alignment are asserted, so corrupt offsets fail loudly
/// instead of reading garbage.
fn slice_at<T: Copy>(bytes: &[u8], off: usize, count: usize) -> &[T] {
    let size = std::mem::size_of::<T>();
    let byte_len = count.checked_mul(size).expect("typed slice length overflow");
    let end = off.checked_add(byte_len).expect("typed slice range overflow");
    assert!(end <= bytes.len(), "typed slice out of bounds: {end} > {}", bytes.len());
    let ptr = bytes[off..].as_ptr();
    assert_eq!(ptr as usize % std::mem::align_of::<T>(), 0, "misaligned typed slice at {off}");
    // SAFETY: range checked in bounds above, pointer alignment asserted,
    // T is a POD numeric type with no invalid bit patterns, and the
    // returned slice borrows `bytes` so it cannot outlive the backing.
    unsafe { std::slice::from_raw_parts(ptr as *const T, count) }
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sgraph-mmap-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn roundtrip_typed_views() {
        let path = tmp("roundtrip");
        let mut f = File::create(&path).unwrap();
        for v in [1u64, 2, 3] {
            f.write_all(&v.to_le_bytes()).unwrap();
        }
        f.write_all(&7u32.to_le_bytes()).unwrap();
        f.write_all(&8u32.to_le_bytes()).unwrap();
        f.write_all(&1.5f64.to_le_bytes()).unwrap();
        drop(f);

        let m = Mmap::map_file(&path).unwrap();
        assert_eq!(m.len(), 40);
        assert_eq!(m.as_u64s(0, 3), &[1, 2, 3]);
        assert_eq!(m.as_u32s(24, 2), &[7, 8]);
        assert_eq!(m.as_f64s(32, 1), &[1.5]);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = tmp("empty");
        File::create(&path).unwrap();
        let m = Mmap::map_file(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.bytes(), &[] as &[u8]);
        drop(m);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_view_panics() {
        let path = tmp("oob");
        std::fs::write(&path, [0u8; 16]).unwrap();
        let m = Mmap::map_file(&path).unwrap();
        let _ = m.as_u64s(8, 2);
    }
}
