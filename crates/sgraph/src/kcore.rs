//! k-core decomposition (total-degree peeling).
//!
//! The citation-network literature uses coreness both as a cheap
//! importance proxy and to characterize dataset density; the corpus
//! statistics module reports the degeneracy (maximum core number), and
//! the sparsification experiment uses core membership to check that edge
//! sampling preserves the dense backbone.

use crate::csr::{CsrGraph, NodeId};

/// The k-core decomposition of a graph (edge directions ignored).
#[derive(Debug, Clone, PartialEq)]
pub struct CoreResult {
    /// `core[v]` = the largest k such that v belongs to the k-core.
    pub core: Vec<u32>,
    /// The degeneracy: the maximum core number (0 for edgeless graphs).
    pub degeneracy: u32,
}

impl CoreResult {
    /// The nodes whose core number is at least `k`.
    pub fn members_of_core(&self, k: u32) -> Vec<NodeId> {
        self.core
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= k)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Histogram over core numbers: `hist[k]` = number of nodes with core
    /// number exactly `k`.
    pub fn histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.degeneracy as usize + 1];
        for &c in &self.core {
            hist[c as usize] += 1;
        }
        hist
    }
}

/// Compute core numbers with the Batagelj–Zaversnik bucket-peeling
/// algorithm, O(V + E). Degree = in-degree + out-degree (self-loops count
/// twice, as in the undirected convention).
pub fn k_core_decomposition(g: &CsrGraph) -> CoreResult {
    let n = g.len();
    if n == 0 {
        return CoreResult { core: Vec::new(), degeneracy: 0 };
    }
    let mut degree: Vec<usize> = g.nodes().map(|v| g.in_degree(v) + g.out_degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);

    // Bucket sort nodes by degree.
    let mut bin_starts = vec![0usize; max_deg + 2];
    for &d in &degree {
        bin_starts[d + 1] += 1;
    }
    for i in 0..=max_deg {
        bin_starts[i + 1] += bin_starts[i];
    }
    let mut pos = vec![0usize; n]; // position of node in `order`
    let mut order = vec![0u32; n]; // nodes sorted by current degree
    {
        let mut cursor = bin_starts.clone();
        for v in 0..n {
            let d = degree[v];
            order[cursor[d]] = v as u32;
            pos[v] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bin[d] = index in `order` of the first node with degree >= d.
    let mut bin = bin_starts;

    let mut core = vec![0u32; n];
    for i in 0..n {
        let v = order[i] as usize;
        core[v] = degree[v] as u32;
        // "Remove" v: decrement the degree of each neighbor still ahead.
        let neighbors: Vec<u32> = g
            .out_neighbors(NodeId(v as u32))
            .iter()
            .chain(g.in_neighbors(NodeId(v as u32)))
            .map(|x| x.0)
            .collect();
        for u in neighbors {
            let u = u as usize;
            if degree[u] > degree[v] {
                let du = degree[u];
                let pu = pos[u];
                // Swap u with the first node of its degree bucket.
                let pw = bin[du];
                let w = order[pw] as usize;
                if u != w {
                    order[pu] = w as u32;
                    order[pw] = u as u32;
                    pos[u] = pw;
                    pos[w] = pu;
                }
                bin[du] += 1;
                degree[u] -= 1;
            }
        }
    }
    let degeneracy = core.iter().copied().max().unwrap_or(0);
    CoreResult { core, degeneracy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn triangle_is_a_2_core() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let res = k_core_decomposition(&g);
        assert_eq!(res.core, vec![2, 2, 2]);
        assert_eq!(res.degeneracy, 2);
    }

    #[test]
    fn pendant_vertices_peel_first() {
        // Triangle {0,1,2} plus pendant 3 - 0.
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let res = k_core_decomposition(&g);
        assert_eq!(res.core[3], 1);
        assert_eq!(res.core[0], 2);
        assert_eq!(res.core[1], 2);
        assert_eq!(res.core[2], 2);
        assert_eq!(res.members_of_core(2).len(), 3);
        assert_eq!(res.members_of_core(1).len(), 4);
        assert_eq!(res.histogram(), vec![0, 1, 3]);
    }

    #[test]
    fn chain_is_1_core() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let res = k_core_decomposition(&g);
        assert_eq!(res.core, vec![1, 1, 1, 1]);
        assert_eq!(res.degeneracy, 1);
    }

    #[test]
    fn isolated_nodes_are_0_core() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]);
        let res = k_core_decomposition(&g);
        assert_eq!(res.core[2], 0);
        assert_eq!(res.core[0], 1);
    }

    #[test]
    fn clique_core_number() {
        // Directed 5-clique (each ordered pair once): undirected degree 8.
        let mut edges = Vec::new();
        for i in 0..5u32 {
            for j in 0..5u32 {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        let g = GraphBuilder::from_edges(5, &edges);
        let res = k_core_decomposition(&g);
        // Every node has total degree 8; the whole graph peels at 8.
        assert!(res.core.iter().all(|&c| c == 8));
    }

    #[test]
    fn empty_graph() {
        let res = k_core_decomposition(&CsrGraph::empty(0));
        assert_eq!(res.degeneracy, 0);
        assert!(res.core.is_empty());
        let res1 = k_core_decomposition(&CsrGraph::empty(4));
        assert_eq!(res1.core, vec![0; 4]);
    }

    #[test]
    fn core_is_monotone_under_edge_removal() {
        // Removing edges can only lower core numbers.
        let g_full = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 2)]);
        let g_less = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let full = k_core_decomposition(&g_full);
        let less = k_core_decomposition(&g_less);
        for v in 0..5 {
            assert!(less.core[v] <= full.core[v]);
        }
    }
}
