#![warn(missing_docs)]

//! # sgraph — a compact directed-graph substrate for link analysis
//!
//! `sgraph` is the storage and traversal layer underneath the `qrank`
//! scholarly-ranking stack. It provides:
//!
//! * [`CsrGraph`] — an immutable, weighted, directed graph in compressed
//!   sparse row form, with *both* out- and in-adjacency materialized so
//!   that push- and pull-style propagation are both cache-friendly.
//! * [`GraphBuilder`] — the mutable staging area used to assemble graphs
//!   (deduplication, weight merging, validation).
//! * [`Bipartite`] — weighted bipartite graphs (author↔article,
//!   venue↔article) with both orientations materialized.
//! * Traversals ([`traversal`]), strongly/weakly connected components
//!   ([`scc`], [`components`]), k-core decomposition ([`kcore`]), degree
//!   statistics and power-law fitting ([`stats`]).
//! * [`stochastic`] — the row-stochastic random-walk operator used by
//!   every PageRank-family algorithm in the stack, with sequential and
//!   multi-threaded ([`par`]) apply kernels and principled dangling-node
//!   handling — plus a Gauss–Seidel solver for the same fixpoint
//!   ([`solver`]) and local forward-push personalized PageRank ([`push`]).
//! * Deterministic edge sampling for robustness experiments
//!   ([`sampling`]) and random-graph models for benchmarking
//!   ([`generate`]).
//! * Plain-text and binary serialization ([`io`]).
//!
//! Node identifiers are dense `u32` indices wrapped in [`NodeId`]; graphs
//! are therefore limited to fewer than 2³² nodes, which comfortably covers
//! the scholarly corpora this stack targets (the largest preset, MAG-like,
//! is ~10⁶ articles) while halving index memory versus `usize`.
//!
//! ## Quick example
//!
//! ```
//! use sgraph::{GraphBuilder, NodeId};
//!
//! let mut b = GraphBuilder::new(3);
//! b.add_edge(NodeId(0), NodeId(1), 1.0);
//! b.add_edge(NodeId(1), NodeId(2), 2.0);
//! b.add_edge(NodeId(0), NodeId(2), 0.5);
//! let g = b.build();
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.num_edges(), 3);
//! assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
//! assert_eq!(g.in_degree(NodeId(2)), 2);
//! ```

pub mod bipartite;
pub mod builder;
pub mod components;
pub mod csr;
pub mod error;
pub mod generate;
pub mod io;
pub mod kcore;
pub mod mmap;
pub mod mmap_csr;
pub mod par;
pub mod push;
pub mod sampling;
pub mod scc;
pub mod solver;
pub mod stats;
pub mod stochastic;
pub mod store;
pub mod traversal;
pub mod view;

pub use bipartite::{Bipartite, BipartiteBuilder};
pub use builder::{DuplicateEdgePolicy, GraphBuilder};
pub use csr::{CsrGraph, EdgeRef, NodeId};
pub use error::GraphError;
pub use mmap_csr::{MmapCsr, MmapCsrBuilder};
pub use stochastic::{JumpVector, RowStochastic};
pub use store::{stationary_store, CsrStore};
pub use view::SubgraphMap;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, GraphError>;
