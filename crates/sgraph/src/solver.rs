//! Gauss–Seidel PageRank solver.
//!
//! Power iteration updates every score from the *previous* iterate;
//! Gauss–Seidel sweeps update in place, so later nodes in a sweep already
//! see this sweep's earlier updates — classically cutting the iteration
//! count roughly in half on link graphs (Arasu et al. 2002). The repro
//! harness compares the two solvers (R-Fig 9); both converge to the same
//! fixpoint (tested to 1e-8).
//!
//! Implementation notes:
//!
//! * The linear system is `x = d·Pᵀx + (d·D(x) + (1−d))·j`, where `D(x)`
//!   is the dangling mass. The dangling term couples every unknown, which
//!   would break the sparse triangular structure Gauss–Seidel wants, so
//!   the dangling mass is *lagged*: within a sweep it is taken from the
//!   running estimate and refreshed after the sweep (a standard hybrid —
//!   Jacobi on the rank-1 part, Gauss–Seidel on the sparse part).
//! * Self-loops make the diagonal entry `P_vv` nonzero; the update solves
//!   the 1×1 equation exactly: `x_v = rhs / (1 − d·p_vv)`.

use crate::csr::CsrGraph;
use crate::stochastic::{l1_distance, JumpVector, PowerIterationResult, RowStochastic};

/// Options for [`gauss_seidel`].
#[derive(Debug, Clone)]
pub struct GaussSeidelOpts {
    /// Damping factor `d` ∈ [0, 1).
    pub damping: f64,
    /// Teleportation distribution.
    pub jump: JumpVector,
    /// L1 tolerance between consecutive sweeps.
    pub tol: f64,
    /// Sweep cap.
    pub max_sweeps: usize,
}

impl Default for GaussSeidelOpts {
    fn default() -> Self {
        GaussSeidelOpts { damping: 0.85, jump: JumpVector::Uniform, tol: 1e-10, max_sweeps: 200 }
    }
}

/// Solve for the damped stationary distribution by Gauss–Seidel sweeps.
///
/// Returns the same structure as power iteration so diagnostics are
/// directly comparable; `iterations` counts sweeps.
pub fn gauss_seidel(g: &CsrGraph, opts: &GaussSeidelOpts) -> PowerIterationResult {
    assert!((0.0..1.0).contains(&opts.damping), "damping must be in [0, 1)");
    assert!(opts.max_sweeps > 0, "need at least one sweep");
    let n = g.len();
    if n == 0 {
        return PowerIterationResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
        };
    }
    let d = opts.damping;
    let op = RowStochastic::new(g); // reuse dangling detection
    let dangling = op.dangling();
    let mut is_dangling = vec![false; n];
    for &u in dangling {
        is_dangling[u as usize] = true;
    }
    // Per-node out-weight sums for transition probabilities.
    let out_sum: Vec<f64> = g.nodes().map(|v| g.out_weight_sum(v)).collect();

    // Materialize the jump distribution once (like power iteration does)
    // instead of calling `JumpVector::prob` per node per sweep.
    let jump_dense = opts.jump.to_dense(n);
    let mut x = jump_dense.clone();
    let mut prev = vec![0.0f64; n];
    let mut residuals = Vec::new();
    let mut converged = false;
    let mut sweeps = 0;
    // Lagged dangling mass.
    let mut dangling_mass: f64 = dangling.iter().map(|&u| x[u as usize]).sum();

    while sweeps < opts.max_sweeps {
        prev.copy_from_slice(&x);
        for v in 0..n {
            let vu = v as u32;
            let jp = jump_dense[v];
            let mut acc = 0.0;
            let mut diag = 0.0;
            let node = crate::NodeId(vu);
            for (&u, &w) in g.in_neighbors(node).iter().zip(g.in_edge_weights(node)) {
                let s = out_sum[u.index()];
                if s <= 0.0 || w <= 0.0 {
                    continue;
                }
                let p = w / s;
                if u.index() == v {
                    diag = p;
                } else {
                    acc += p * x[u.index()];
                }
            }
            let rhs = d * acc + (d * dangling_mass + (1.0 - d)) * jp;
            let new_v = rhs / (1.0 - d * diag);
            if is_dangling[v] {
                // Keep the lagged dangling mass roughly current within
                // the sweep (cheap running correction).
                dangling_mass += new_v - x[v];
            }
            x[v] = new_v;
        }
        // Renormalize: the lagged dangling term lets total mass drift
        // slightly within a sweep; project back onto the simplex.
        crate::stochastic::normalize_l1(&mut x);
        dangling_mass = dangling.iter().map(|&u| x[u as usize]).sum();

        sweeps += 1;
        let r = l1_distance(&prev, &x);
        residuals.push(r);
        if r < opts.tol {
            converged = true;
            break;
        }
    }
    PowerIterationResult { scores: x, iterations: sweeps, converged, residuals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::PowerIterationOpts;
    use crate::GraphBuilder;

    fn random_graph(n: u32, m: usize, seed: u64) -> CsrGraph {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let edges: Vec<(u32, u32, f64)> =
            (0..m).map(|_| (next() % n, next() % n, 1.0 + (next() % 4) as f64)).collect();
        GraphBuilder::from_weighted_edges(n, &edges)
    }

    fn power(g: &CsrGraph) -> PowerIterationResult {
        RowStochastic::new(g).stationary(&PowerIterationOpts {
            tol: 1e-12,
            max_iter: 2000,
            ..Default::default()
        })
    }

    #[test]
    fn agrees_with_power_iteration() {
        let g = random_graph(400, 2500, 17);
        let exact = power(&g);
        let gs = gauss_seidel(&g, &GaussSeidelOpts { tol: 1e-12, ..Default::default() });
        assert!(gs.converged);
        let l1 = l1_distance(&exact.scores, &gs.scores);
        assert!(l1 < 1e-8, "solvers disagree by {l1}");
    }

    #[test]
    fn agrees_with_dangling_nodes_present() {
        // Half the nodes dangle.
        let g = GraphBuilder::from_edges(6, &[(0, 3), (1, 3), (1, 4), (2, 5), (0, 4)]);
        assert_eq!(g.dangling_nodes().len(), 3);
        let exact = power(&g);
        let gs = gauss_seidel(&g, &GaussSeidelOpts { tol: 1e-13, ..Default::default() });
        assert!(l1_distance(&exact.scores, &gs.scores) < 1e-9);
        assert!((gs.scores.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn handles_self_loops() {
        let g = GraphBuilder::from_weighted_edges(
            3,
            &[(0, 0, 3.0), (0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)],
        );
        let exact = power(&g);
        let gs = gauss_seidel(&g, &GaussSeidelOpts { tol: 1e-13, ..Default::default() });
        assert!(l1_distance(&exact.scores, &gs.scores) < 1e-9);
    }

    #[test]
    fn converges_in_fewer_sweeps_than_power_iterations() {
        let g = random_graph(2000, 14_000, 23);
        let pw = RowStochastic::new(&g)
            .stationary(&PowerIterationOpts { tol: 1e-10, ..Default::default() });
        let gs = gauss_seidel(&g, &GaussSeidelOpts::default());
        assert!(pw.converged && gs.converged);
        assert!(
            gs.iterations < pw.iterations,
            "Gauss-Seidel ({}) should need fewer sweeps than power iteration ({})",
            gs.iterations,
            pw.iterations
        );
    }

    #[test]
    fn weighted_jump_supported() {
        let g = random_graph(100, 500, 29);
        let mut w = vec![0.0; 100];
        w[3] = 1.0;
        w[7] = 3.0;
        let jump = JumpVector::weighted(w);
        let exact = RowStochastic::new(&g).stationary(&PowerIterationOpts {
            jump: jump.clone(),
            tol: 1e-13,
            max_iter: 2000,
            ..Default::default()
        });
        let gs = gauss_seidel(&g, &GaussSeidelOpts { jump, tol: 1e-13, ..Default::default() });
        assert!(l1_distance(&exact.scores, &gs.scores) < 1e-8);
    }

    #[test]
    fn empty_graph() {
        let res = gauss_seidel(&CsrGraph::empty(0), &GaussSeidelOpts::default());
        assert!(res.converged);
        assert!(res.scores.is_empty());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn bad_damping_panics() {
        gauss_seidel(&CsrGraph::empty(1), &GaussSeidelOpts { damping: 1.5, ..Default::default() });
    }
}
