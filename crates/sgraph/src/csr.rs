//! Immutable compressed-sparse-row graph storage.
//!
//! [`CsrGraph`] stores a weighted directed graph with both the out- and
//! in-adjacency materialized. This doubles edge memory but makes both
//! push-style (follow out-edges) and pull-style (gather over in-edges)
//! propagation sequential-scan friendly; the PageRank-family kernels in
//! [`crate::stochastic`] are all pull-style and rely on the in-CSR.

/// A dense node identifier.
///
/// Nodes of a [`CsrGraph`] are always numbered `0..num_nodes`, so the
/// wrapped `u32` doubles as an index into score vectors and attribute
/// columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for indexing slices.
    #[inline(always)]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    #[inline]
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    #[inline]
    fn from(v: NodeId) -> u32 {
        v.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A borrowed view of one directed edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeRef {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Edge weight (finite, non-negative).
    pub weight: f64,
}

/// An immutable weighted directed graph in CSR form.
///
/// Construct via [`crate::GraphBuilder`]. Within each node's adjacency
/// list, neighbors are sorted by target index, which makes neighbor
/// lookups binary-searchable and graph equality canonical.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrGraph {
    pub(crate) num_nodes: u32,
    // Out-adjacency.
    pub(crate) out_offsets: Vec<usize>, // len = num_nodes + 1
    pub(crate) out_targets: Vec<u32>,   // len = num_edges
    pub(crate) out_weights: Vec<f64>,   // len = num_edges
    // In-adjacency (transpose), derived at build time.
    pub(crate) in_offsets: Vec<usize>,
    pub(crate) in_sources: Vec<u32>,
    pub(crate) in_weights: Vec<f64>,
}

impl CsrGraph {
    /// An empty graph with `n` isolated nodes.
    pub fn empty(n: u32) -> Self {
        CsrGraph {
            num_nodes: n,
            out_offsets: vec![0; n as usize + 1],
            out_targets: Vec::new(),
            out_weights: Vec::new(),
            in_offsets: vec![0; n as usize + 1],
            in_sources: Vec::new(),
            in_weights: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline(always)]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of nodes as `usize` (handy for allocating score vectors).
    #[inline(always)]
    pub fn len(&self) -> usize {
        self.num_nodes as usize
    }

    /// `true` when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.num_nodes == 0
    }

    /// Number of directed edges.
    #[inline(always)]
    pub fn num_edges(&self) -> usize {
        self.out_targets.len()
    }

    /// Iterator over all node ids, `0..num_nodes`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + '_ {
        (0..self.num_nodes).map(NodeId)
    }

    #[inline(always)]
    fn out_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.out_offsets[u.index()]..self.out_offsets[u.index() + 1]
    }

    #[inline(always)]
    fn in_range(&self, u: NodeId) -> std::ops::Range<usize> {
        self.in_offsets[u.index()]..self.in_offsets[u.index() + 1]
    }

    /// Out-degree of `u`.
    #[inline(always)]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_range(u).len()
    }

    /// In-degree of `u`.
    #[inline(always)]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_range(u).len()
    }

    /// The targets of `u`'s out-edges, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, u: NodeId) -> &[NodeId] {
        let r = self.out_range(u);
        node_slice(&self.out_targets[r])
    }

    /// The weights of `u`'s out-edges, parallel to [`Self::out_neighbors`].
    #[inline]
    pub fn out_edge_weights(&self, u: NodeId) -> &[f64] {
        let r = self.out_range(u);
        &self.out_weights[r]
    }

    /// The sources of `u`'s in-edges, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, u: NodeId) -> &[NodeId] {
        let r = self.in_range(u);
        node_slice(&self.in_sources[r])
    }

    /// The weights of `u`'s in-edges, parallel to [`Self::in_neighbors`].
    #[inline]
    pub fn in_edge_weights(&self, u: NodeId) -> &[f64] {
        let r = self.in_range(u);
        &self.in_weights[r]
    }

    /// Sum of `u`'s out-edge weights.
    #[inline]
    pub fn out_weight_sum(&self, u: NodeId) -> f64 {
        self.out_edge_weights(u).iter().sum()
    }

    /// Sum of `u`'s in-edge weights.
    #[inline]
    pub fn in_weight_sum(&self, u: NodeId) -> f64 {
        self.in_edge_weights(u).iter().sum()
    }

    /// `true` if the edge `u -> v` exists (binary search).
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let r = self.out_range(u);
        self.out_targets[r].binary_search(&v.0).is_ok()
    }

    /// Weight of edge `u -> v`, if present.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<f64> {
        let r = self.out_range(u);
        let base = r.start;
        self.out_targets[r].binary_search(&v.0).ok().map(|i| self.out_weights[base + i])
    }

    /// Iterator over every edge in source order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeRef> + '_ {
        self.nodes().flat_map(move |u| {
            let r = self.out_range(u);
            let base = r.start;
            self.out_targets[r].iter().enumerate().map(move |(i, &t)| EdgeRef {
                src: u,
                dst: NodeId(t),
                weight: self.out_weights[base + i],
            })
        })
    }

    /// Nodes with no out-edges ("dangling" nodes in random-walk terms).
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&u| self.out_degree(u) == 0).collect()
    }

    /// The transposed graph (every edge reversed, weights preserved).
    ///
    /// Because both orientations are already materialized, this is a
    /// cheap re-labeling rather than a rebuild.
    pub fn transpose(&self) -> CsrGraph {
        CsrGraph {
            num_nodes: self.num_nodes,
            out_offsets: self.in_offsets.clone(),
            out_targets: self.in_sources.clone(),
            out_weights: self.in_weights.clone(),
            in_offsets: self.out_offsets.clone(),
            in_sources: self.out_targets.clone(),
            in_weights: self.out_weights.clone(),
        }
    }

    /// Total weight across all edges.
    pub fn total_weight(&self) -> f64 {
        self.out_weights.iter().sum()
    }

    /// Returns a copy of this graph with every weight replaced by
    /// `f(src, dst, weight)`. Weights must remain finite and non-negative;
    /// this is checked in debug builds.
    pub fn map_weights<F>(&self, mut f: F) -> CsrGraph
    where
        F: FnMut(NodeId, NodeId, f64) -> f64,
    {
        let mut g = self.clone();
        for u in 0..self.num_nodes {
            let r = self.out_range(NodeId(u));
            for i in r {
                let w = f(NodeId(u), NodeId(self.out_targets[i]), self.out_weights[i]);
                debug_assert!(w.is_finite() && w >= 0.0, "map_weights produced invalid weight {w}");
                g.out_weights[i] = w;
            }
        }
        // Rebuild in-weights to stay consistent with the new out-weights.
        let mut cursor = g.in_offsets[..g.len()].to_vec();
        for u in 0..self.num_nodes {
            let r = self.out_range(NodeId(u));
            for i in r {
                let t = self.out_targets[i] as usize;
                let slot = cursor[t];
                g.in_weights[slot] = g.out_weights[i];
                cursor[t] += 1;
            }
        }
        g
    }

    /// Internal consistency check: offsets monotone, transpose matches,
    /// adjacency sorted, weights valid. Used by tests and by the binary
    /// deserializer; O(V + E log d).
    pub fn validate(&self) -> crate::Result<()> {
        use crate::GraphError;
        let n = self.len();
        if self.out_offsets.len() != n + 1 || self.in_offsets.len() != n + 1 {
            return Err(GraphError::BadBinaryFormat("offset array length mismatch".into()));
        }
        if *self.out_offsets.last().unwrap() != self.out_targets.len()
            || *self.in_offsets.last().unwrap() != self.in_sources.len()
            || self.out_targets.len() != self.out_weights.len()
            || self.in_sources.len() != self.in_weights.len()
            || self.out_targets.len() != self.in_sources.len()
        {
            return Err(GraphError::BadBinaryFormat("edge array length mismatch".into()));
        }
        for w in windows_pairs(&self.out_offsets).chain(windows_pairs(&self.in_offsets)) {
            if w.1 < w.0 {
                return Err(GraphError::BadBinaryFormat("offsets not monotone".into()));
            }
        }
        let mut in_degree_check = vec![0usize; n];
        for u in self.nodes() {
            let ts = self.out_neighbors(u);
            for pair in ts.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(GraphError::BadBinaryFormat(
                        "out adjacency not strictly sorted".into(),
                    ));
                }
            }
            for (&t, &w) in ts.iter().zip(self.out_edge_weights(u)) {
                if t.0 >= self.num_nodes {
                    return Err(GraphError::NodeOutOfBounds {
                        node: t.0,
                        num_nodes: self.num_nodes,
                    });
                }
                if !w.is_finite() || w < 0.0 {
                    return Err(GraphError::InvalidWeight { src: u.0, dst: t.0, weight: w });
                }
                in_degree_check[t.index()] += 1;
            }
        }
        for u in self.nodes() {
            if self.in_degree(u) != in_degree_check[u.index()] {
                return Err(GraphError::BadBinaryFormat(format!(
                    "in-degree of node {u} inconsistent with out-adjacency"
                )));
            }
            for (&s, &w) in self.in_neighbors(u).iter().zip(self.in_edge_weights(u)) {
                match self.edge_weight(s, u) {
                    Some(ow) if ow == w => {}
                    _ => {
                        return Err(GraphError::BadBinaryFormat(format!(
                            "in-edge {s} -> {u} does not match out-adjacency"
                        )))
                    }
                }
            }
        }
        Ok(())
    }
}

fn windows_pairs(v: &[usize]) -> impl Iterator<Item = (usize, usize)> + '_ {
    v.windows(2).map(|w| (w[0], w[1]))
}

/// Reinterpret a `&[u32]` as `&[NodeId]` without copying.
///
/// Sound because `NodeId` is a newtype with the same layout as `u32`
/// (single public field; identical size and alignment enforced via the
/// const assertions below).
#[inline(always)]
fn node_slice(raw: &[u32]) -> &[NodeId] {
    const _: () = assert!(std::mem::size_of::<NodeId>() == std::mem::size_of::<u32>());
    const _: () = assert!(std::mem::align_of::<NodeId>() == std::mem::align_of::<u32>());
    // SAFETY: NodeId is a single-field tuple struct over u32 with identical
    // size and alignment (checked above); its only invariant is "any u32".
    unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const NodeId, raw.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn diamond() -> CsrGraph {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut b = GraphBuilder::new(4);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(2), 2.0);
        b.add_edge(NodeId(1), NodeId(3), 3.0);
        b.add_edge(NodeId(2), NodeId(3), 4.0);
        b.build()
    }

    #[test]
    fn basic_shape() {
        let g = diamond();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.out_neighbors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.in_neighbors(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.out_edge_weights(NodeId(0)), &[1.0, 2.0]);
        assert_eq!(g.in_edge_weights(NodeId(3)), &[3.0, 4.0]);
        g.validate().unwrap();
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_nodes(), 5);
        assert_eq!(g.num_edges(), 0);
        assert!(!g.is_empty());
        assert_eq!(g.dangling_nodes().len(), 5);
        g.validate().unwrap();
        let g0 = CsrGraph::empty(0);
        assert!(g0.is_empty());
        g0.validate().unwrap();
    }

    #[test]
    fn edge_queries() {
        let g = diamond();
        assert!(g.has_edge(NodeId(0), NodeId(2)));
        assert!(!g.has_edge(NodeId(2), NodeId(0)));
        assert_eq!(g.edge_weight(NodeId(2), NodeId(3)), Some(4.0));
        assert_eq!(g.edge_weight(NodeId(3), NodeId(2)), None);
    }

    #[test]
    fn edges_iterator_yields_all_in_source_order() {
        let g = diamond();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        assert_eq!(edges[0], EdgeRef { src: NodeId(0), dst: NodeId(1), weight: 1.0 });
        assert!(edges.windows(2).all(|w| w[0].src <= w[1].src));
        let total: f64 = edges.iter().map(|e| e.weight).sum();
        assert_eq!(total, g.total_weight());
    }

    #[test]
    fn transpose_is_involutive() {
        let g = diamond();
        let t = g.transpose();
        t.validate().unwrap();
        assert!(t.has_edge(NodeId(3), NodeId(1)));
        assert_eq!(t.edge_weight(NodeId(3), NodeId(2)), Some(4.0));
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn dangling_nodes_found() {
        let g = diamond();
        assert_eq!(g.dangling_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn map_weights_keeps_transpose_consistent() {
        let g = diamond();
        let doubled = g.map_weights(|_, _, w| w * 2.0);
        doubled.validate().unwrap();
        assert_eq!(doubled.edge_weight(NodeId(0), NodeId(2)), Some(4.0));
        assert_eq!(doubled.in_edge_weights(NodeId(3)), &[6.0, 8.0]);
        assert_eq!(doubled.total_weight(), 2.0 * g.total_weight());
    }

    #[test]
    fn map_weights_receives_endpoints() {
        let g = diamond();
        let h = g.map_weights(|s, d, _| (s.0 * 10 + d.0) as f64);
        assert_eq!(h.edge_weight(NodeId(1), NodeId(3)), Some(13.0));
        assert_eq!(h.edge_weight(NodeId(2), NodeId(3)), Some(23.0));
    }

    #[test]
    fn weight_sums() {
        let g = diamond();
        assert_eq!(g.out_weight_sum(NodeId(0)), 3.0);
        assert_eq!(g.in_weight_sum(NodeId(3)), 7.0);
        assert_eq!(g.out_weight_sum(NodeId(3)), 0.0);
    }

    #[test]
    fn node_id_conversions() {
        let n: NodeId = 7u32.into();
        assert_eq!(n.index(), 7);
        let raw: u32 = n.into();
        assert_eq!(raw, 7);
        assert_eq!(n.to_string(), "7");
    }

    #[test]
    fn validate_rejects_corruption() {
        let mut g = diamond();
        g.out_weights[0] = -1.0;
        assert!(g.validate().is_err());
        let mut g2 = diamond();
        g2.in_weights[0] = 99.0;
        assert!(g2.validate().is_err());
        let mut g3 = diamond();
        g3.out_offsets[2] = 0; // non-monotone
        assert!(g3.validate().is_err());
    }
}
