//! Local approximate personalized PageRank via forward push
//! (Andersen–Chung–Lang 2006, adapted to weighted directed graphs).
//!
//! Power iteration costs O(E) per step regardless of how concentrated the
//! answer is. For *seeded* queries — "articles related to this reading
//! list" — the stationary distribution is localized around the seeds, and
//! forward push computes an ε-approximation touching only the
//! neighborhood that actually carries mass: maintain an estimate `p` and
//! a residual `r`; while some node `u` has `r[u] > ε·W_out(u)`, move
//! `(1−α)·r[u]` into `p[u]` and push `α·r[u]` along `u`'s out-edges
//! proportionally to weight.
//!
//! Guarantee (standard): after termination, `p` underestimates the true
//! personalized PageRank by at most `ε · Σ_u W_out(u)`-weighted degree
//! per node, and total mass `Σp + Σr = 1`.
//!
//! Note the role reversal versus [`crate::stochastic`]: `alpha` here is
//! the *continue* probability (= damping).

use crate::csr::{CsrGraph, NodeId};
use std::collections::VecDeque;

/// Options for [`forward_push`].
#[derive(Debug, Clone, PartialEq)]
pub struct PushOpts {
    /// Continue (damping) probability α ∈ [0, 1).
    pub alpha: f64,
    /// Per-unit-degree residual threshold ε; smaller = more accurate and
    /// more work. 1e-6 gives ranking-grade accuracy on citation graphs.
    pub epsilon: f64,
    /// Hard cap on push operations (safety valve; 0 = no cap).
    pub max_pushes: usize,
}

impl Default for PushOpts {
    fn default() -> Self {
        PushOpts { alpha: 0.85, epsilon: 1e-6, max_pushes: 0 }
    }
}

/// Result of a forward-push computation.
#[derive(Debug, Clone)]
pub struct PushResult {
    /// The (sparse-in-spirit, densely stored) score estimates; sums to
    /// `1 − residual_mass`.
    pub scores: Vec<f64>,
    /// Mass still sitting in residuals (bounded by ε × total out-weight).
    pub residual_mass: f64,
    /// Number of push operations performed.
    pub pushes: usize,
    /// Whether the run stopped because of `max_pushes`.
    pub truncated: bool,
}

/// Approximate personalized PageRank from a seed distribution.
///
/// `seeds` are `(node, mass)` pairs; masses must be positive and are
/// normalized to sum 1. Dangling nodes absorb their pushed mass into
/// their own score (equivalent to a self-restart, which keeps the
/// approximation local instead of teleporting globally).
pub fn forward_push(g: &CsrGraph, seeds: &[(NodeId, f64)], opts: &PushOpts) -> PushResult {
    assert!((0.0..1.0).contains(&opts.alpha), "alpha must be in [0, 1)");
    assert!(opts.epsilon > 0.0, "epsilon must be positive");
    assert!(!seeds.is_empty(), "need at least one seed");
    let n = g.len();
    let mut p = vec![0.0f64; n];
    let mut r = vec![0.0f64; n];
    let total_seed: f64 = seeds.iter().map(|&(_, m)| m).sum();
    assert!(total_seed > 0.0, "seed mass must be positive");
    for &(v, m) in seeds {
        assert!(m > 0.0, "seed masses must be positive");
        r[v.index()] += m / total_seed;
    }

    // Queue of nodes that may exceed their threshold.
    let mut queue: VecDeque<u32> = seeds.iter().map(|&(v, _)| v.0).collect();
    let mut queued = vec![false; n];
    for &(v, _) in seeds {
        queued[v.index()] = true;
    }

    let mut pushes = 0usize;
    let mut truncated = false;
    while let Some(u) = queue.pop_front() {
        let ui = u as usize;
        queued[ui] = false;
        let w_out = g.out_weight_sum(NodeId(u));
        let threshold = opts.epsilon * w_out.max(1.0);
        let ru = r[ui];
        if ru <= threshold {
            continue;
        }
        if opts.max_pushes > 0 && pushes >= opts.max_pushes {
            truncated = true;
            break;
        }
        pushes += 1;
        r[ui] = 0.0;
        if w_out > 0.0 {
            p[ui] += (1.0 - opts.alpha) * ru;
            let push_mass = opts.alpha * ru;
            let targets = g.out_neighbors(NodeId(u));
            let weights = g.out_edge_weights(NodeId(u));
            for (&t, &w) in targets.iter().zip(weights) {
                if w <= 0.0 {
                    continue;
                }
                let ti = t.index();
                r[ti] += push_mass * (w / w_out);
                let t_thresh = opts.epsilon * g.out_weight_sum(t).max(1.0);
                if r[ti] > t_thresh && !queued[ti] {
                    queued[ti] = true;
                    queue.push_back(t.0);
                }
            }
        } else {
            // Dangling: absorb everything locally.
            p[ui] += ru;
        }
    }

    let residual_mass = r.iter().sum();
    PushResult { scores: p, residual_mass, pushes, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stochastic::{PowerIterationOpts, RowStochastic};
    use crate::{GraphBuilder, JumpVector};

    fn random_graph(n: u32, m: usize, seed: u64) -> CsrGraph {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let edges: Vec<(u32, u32, f64)> =
            (0..m).map(|_| (next() % n, next() % n, 1.0 + (next() % 4) as f64)).collect();
        GraphBuilder::from_weighted_edges(n, &edges)
    }

    #[test]
    fn mass_is_conserved() {
        let g = random_graph(500, 3000, 3);
        let res = forward_push(&g, &[(NodeId(0), 1.0)], &PushOpts::default());
        let total = res.scores.iter().sum::<f64>() + res.residual_mass;
        assert!((total - 1.0).abs() < 1e-12, "p + r must sum to 1, got {total}");
        assert!(!res.truncated);
        assert!(res.pushes > 0);
    }

    #[test]
    fn approximates_exact_ppr() {
        // Compare against power iteration with the seed as the jump vector
        // on a graph with no dangling nodes (so the two dangling semantics
        // cannot differ).
        let n = 300u32;
        let mut edges: Vec<(u32, u32, f64)> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        let mut state = 77u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..1500 {
            edges.push((next() % n, next() % n, 1.0));
        }
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        assert!(g.dangling_nodes().is_empty());

        let mut jump = vec![0.0; n as usize];
        jump[7] = 1.0;
        let exact = RowStochastic::new(&g).stationary(&PowerIterationOpts {
            jump: JumpVector::weighted(jump),
            tol: 1e-14,
            max_iter: 1000,
            ..Default::default()
        });
        let approx = forward_push(
            &g,
            &[(NodeId(7), 1.0)],
            &PushOpts { epsilon: 1e-9, ..Default::default() },
        );
        let l1: f64 = exact.scores.iter().zip(&approx.scores).map(|(a, b)| (a - b).abs()).sum();
        assert!(l1 < 1e-5, "push estimate too far from exact: L1 = {l1}");
    }

    #[test]
    fn smaller_epsilon_means_less_residual() {
        let g = random_graph(400, 2500, 9);
        let coarse = forward_push(
            &g,
            &[(NodeId(1), 1.0)],
            &PushOpts { epsilon: 1e-3, ..Default::default() },
        );
        let fine = forward_push(
            &g,
            &[(NodeId(1), 1.0)],
            &PushOpts { epsilon: 1e-8, ..Default::default() },
        );
        assert!(fine.residual_mass < coarse.residual_mass);
        assert!(fine.pushes >= coarse.pushes);
    }

    #[test]
    fn work_is_local() {
        // Two disconnected halves: pushing from one half must never touch
        // the other.
        let mut b = GraphBuilder::new(100);
        for i in 0..49u32 {
            b.add_unweighted(NodeId(i), NodeId(i + 1));
        }
        for i in 50..99u32 {
            b.add_unweighted(NodeId(i), NodeId(i + 1));
        }
        let g = b.build();
        let res = forward_push(&g, &[(NodeId(0), 1.0)], &PushOpts::default());
        for i in 50..100 {
            assert_eq!(res.scores[i], 0.0, "mass leaked into the disconnected half");
        }
    }

    #[test]
    fn multiple_seeds_normalize() {
        let g = random_graph(200, 1000, 11);
        let res = forward_push(&g, &[(NodeId(0), 3.0), (NodeId(5), 1.0)], &PushOpts::default());
        let total = res.scores.iter().sum::<f64>() + res.residual_mass;
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_pushes_truncates() {
        let g = random_graph(500, 4000, 13);
        let res = forward_push(
            &g,
            &[(NodeId(0), 1.0)],
            &PushOpts { epsilon: 1e-12, max_pushes: 10, ..Default::default() },
        );
        assert!(res.truncated);
        assert!(res.pushes <= 10);
    }

    #[test]
    fn dangling_seed_keeps_its_mass() {
        let g = GraphBuilder::from_edges(3, &[(1, 0)]); // node 0 dangling
        let res = forward_push(&g, &[(NodeId(0), 1.0)], &PushOpts::default());
        assert!((res.scores[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one seed")]
    fn empty_seeds_panic() {
        forward_push(&CsrGraph::empty(3), &[], &PushOpts::default());
    }
}
