//! Weighted bipartite graphs (author↔article, venue↔article).
//!
//! A [`Bipartite`] stores both orientations in CSR form so that
//! left-to-right aggregation (an author's score from their articles) and
//! right-to-left aggregation (an article's score from its authors) are
//! both sequential scans. FutureRank's author↔paper propagation and
//! QRank's mutual-reinforcement steps are built on these.

/// Builder for a [`Bipartite`] graph.
#[derive(Debug, Clone)]
pub struct BipartiteBuilder {
    num_left: u32,
    num_right: u32,
    edges: Vec<(u32, u32, f64)>,
}

impl BipartiteBuilder {
    /// A builder for `num_left` left nodes and `num_right` right nodes.
    pub fn new(num_left: u32, num_right: u32) -> Self {
        BipartiteBuilder { num_left, num_right, edges: Vec::new() }
    }

    /// Stage an undirected weighted edge between left node `l` and right
    /// node `r`. Duplicate `(l, r)` pairs have their weights summed.
    ///
    /// # Panics
    /// Panics on out-of-bounds endpoints or invalid weight.
    pub fn add_edge(&mut self, l: u32, r: u32, weight: f64) {
        assert!(l < self.num_left, "left node {l} out of bounds ({})", self.num_left);
        assert!(r < self.num_right, "right node {r} out of bounds ({})", self.num_right);
        assert!(weight.is_finite() && weight >= 0.0, "invalid bipartite weight {weight}");
        self.edges.push((l, r, weight));
    }

    /// Build the immutable bipartite structure.
    pub fn build(mut self) -> Bipartite {
        self.edges.sort_by_key(|&(l, r, _)| (l, r));
        let mut dedup: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for (l, r, w) in self.edges.drain(..) {
            match dedup.last_mut() {
                Some(last) if last.0 == l && last.1 == r => last.2 += w,
                _ => dedup.push((l, r, w)),
            }
        }
        let nl = self.num_left as usize;
        let nr = self.num_right as usize;
        let m = dedup.len();

        let mut lr_offsets = vec![0usize; nl + 1];
        for &(l, _, _) in &dedup {
            lr_offsets[l as usize + 1] += 1;
        }
        for i in 0..nl {
            lr_offsets[i + 1] += lr_offsets[i];
        }
        let mut lr_targets = Vec::with_capacity(m);
        let mut lr_weights = Vec::with_capacity(m);
        for &(_, r, w) in &dedup {
            lr_targets.push(r);
            lr_weights.push(w);
        }

        let mut rl_offsets = vec![0usize; nr + 1];
        for &(_, r, _) in &dedup {
            rl_offsets[r as usize + 1] += 1;
        }
        for i in 0..nr {
            rl_offsets[i + 1] += rl_offsets[i];
        }
        let mut rl_targets = vec![0u32; m];
        let mut rl_weights = vec![0f64; m];
        let mut cursor = rl_offsets[..nr].to_vec();
        for &(l, r, w) in &dedup {
            let slot = cursor[r as usize];
            rl_targets[slot] = l;
            rl_weights[slot] = w;
            cursor[r as usize] += 1;
        }

        Bipartite {
            num_left: self.num_left,
            num_right: self.num_right,
            lr_offsets,
            lr_targets,
            lr_weights,
            rl_offsets,
            rl_targets,
            rl_weights,
        }
    }
}

/// An immutable weighted bipartite graph with both orientations.
#[derive(Debug, Clone, PartialEq)]
pub struct Bipartite {
    num_left: u32,
    num_right: u32,
    lr_offsets: Vec<usize>,
    lr_targets: Vec<u32>,
    lr_weights: Vec<f64>,
    rl_offsets: Vec<usize>,
    rl_targets: Vec<u32>,
    rl_weights: Vec<f64>,
}

impl Bipartite {
    /// Number of left nodes.
    pub fn num_left(&self) -> u32 {
        self.num_left
    }

    /// Number of right nodes.
    pub fn num_right(&self) -> u32 {
        self.num_right
    }

    /// Number of (deduplicated) edges.
    pub fn num_edges(&self) -> usize {
        self.lr_targets.len()
    }

    /// Right neighbors of left node `l`, sorted ascending.
    pub fn right_of(&self, l: u32) -> &[u32] {
        &self.lr_targets[self.lr_offsets[l as usize]..self.lr_offsets[l as usize + 1]]
    }

    /// Weights parallel to [`Self::right_of`].
    pub fn right_weights_of(&self, l: u32) -> &[f64] {
        &self.lr_weights[self.lr_offsets[l as usize]..self.lr_offsets[l as usize + 1]]
    }

    /// Left neighbors of right node `r`, sorted ascending.
    pub fn left_of(&self, r: u32) -> &[u32] {
        &self.rl_targets[self.rl_offsets[r as usize]..self.rl_offsets[r as usize + 1]]
    }

    /// Weights parallel to [`Self::left_of`].
    pub fn left_weights_of(&self, r: u32) -> &[f64] {
        &self.rl_weights[self.rl_offsets[r as usize]..self.rl_offsets[r as usize + 1]]
    }

    /// Degree of left node `l`.
    pub fn left_degree(&self, l: u32) -> usize {
        self.right_of(l).len()
    }

    /// Degree of right node `r`.
    pub fn right_degree(&self, r: u32) -> usize {
        self.left_of(r).len()
    }

    /// Weighted-mean aggregation from right scores to left nodes:
    /// `out[l] = Σ_r w(l,r)·score[r] / Σ_r w(l,r)`, 0 for isolated `l`.
    pub fn aggregate_to_left(&self, right_scores: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_left as usize];
        self.aggregate_to_left_into(right_scores, &mut out);
        out
    }

    /// Weighted-mean aggregation from left scores to right nodes.
    pub fn aggregate_to_right(&self, left_scores: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_right as usize];
        self.aggregate_to_right_into(left_scores, &mut out);
        out
    }

    /// [`Self::aggregate_to_left`] into a caller-provided buffer, so
    /// solve-many loops can run allocation-free. Isolated left nodes are
    /// written as 0 (the buffer need not be pre-zeroed).
    pub fn aggregate_to_left_into(&self, right_scores: &[f64], out: &mut [f64]) {
        assert_eq!(right_scores.len(), self.num_right as usize, "score length mismatch");
        assert_eq!(out.len(), self.num_left as usize, "output length mismatch");
        self.aggregate_to_left_range(right_scores, 0..self.num_left as usize, out);
    }

    /// [`Self::aggregate_to_right`] into a caller-provided buffer.
    /// Isolated right nodes are written as 0.
    pub fn aggregate_to_right_into(&self, left_scores: &[f64], out: &mut [f64]) {
        assert_eq!(left_scores.len(), self.num_left as usize, "score length mismatch");
        assert_eq!(out.len(), self.num_right as usize, "output length mismatch");
        self.aggregate_to_right_range(left_scores, 0..self.num_right as usize, out);
    }

    /// Parallel [`Self::aggregate_to_left_into`] over precomputed ranges
    /// (see [`Self::left_ranges`]). Each worker gathers into a disjoint
    /// chunk of `out`; the result is bitwise identical to the sequential
    /// path for any partition, because every output element is produced by
    /// the same per-node loop.
    pub fn aggregate_to_left_into_par(
        &self,
        right_scores: &[f64],
        out: &mut [f64],
        ranges: &[std::ops::Range<usize>],
    ) {
        assert_eq!(right_scores.len(), self.num_right as usize, "score length mismatch");
        assert_eq!(out.len(), self.num_left as usize, "output length mismatch");
        crate::par::for_each_range_mut(out, ranges, |range, chunk| {
            self.aggregate_to_left_range(right_scores, range, chunk);
        });
    }

    /// Parallel [`Self::aggregate_to_right_into`] over precomputed ranges
    /// (see [`Self::right_ranges`]).
    pub fn aggregate_to_right_into_par(
        &self,
        left_scores: &[f64],
        out: &mut [f64],
        ranges: &[std::ops::Range<usize>],
    ) {
        assert_eq!(left_scores.len(), self.num_left as usize, "score length mismatch");
        assert_eq!(out.len(), self.num_right as usize, "output length mismatch");
        crate::par::for_each_range_mut(out, ranges, |range, chunk| {
            self.aggregate_to_right_range(left_scores, range, chunk);
        });
    }

    /// Contiguous left-node ranges balanced by edge count, for
    /// [`Self::aggregate_to_left_into_par`]. Compute once per
    /// `(graph, threads)` pair and reuse across iterations.
    pub fn left_ranges(&self, threads: usize) -> Vec<std::ops::Range<usize>> {
        crate::par::balanced_ranges(&self.lr_offsets, threads)
    }

    /// Contiguous right-node ranges balanced by edge count, for
    /// [`Self::aggregate_to_right_into_par`].
    pub fn right_ranges(&self, threads: usize) -> Vec<std::ops::Range<usize>> {
        crate::par::balanced_ranges(&self.rl_offsets, threads)
    }

    /// Weighted-mean gather for left nodes in `range`; `chunk` is the
    /// `out[range]` slice (chunk[i] corresponds to left node range.start+i).
    fn aggregate_to_left_range(
        &self,
        right_scores: &[f64],
        range: std::ops::Range<usize>,
        chunk: &mut [f64],
    ) {
        for (slot, l) in range.enumerate() {
            let rs = &self.lr_targets[self.lr_offsets[l]..self.lr_offsets[l + 1]];
            let ws = &self.lr_weights[self.lr_offsets[l]..self.lr_offsets[l + 1]];
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (&r, &w) in rs.iter().zip(ws) {
                acc += w * right_scores[r as usize];
                wsum += w;
            }
            chunk[slot] = if wsum > 0.0 { acc / wsum } else { 0.0 };
        }
    }

    /// Mirror of [`Self::aggregate_to_left_range`] for right nodes.
    fn aggregate_to_right_range(
        &self,
        left_scores: &[f64],
        range: std::ops::Range<usize>,
        chunk: &mut [f64],
    ) {
        for (slot, r) in range.enumerate() {
            let ls = &self.rl_targets[self.rl_offsets[r]..self.rl_offsets[r + 1]];
            let ws = &self.rl_weights[self.rl_offsets[r]..self.rl_offsets[r + 1]];
            let mut acc = 0.0;
            let mut wsum = 0.0;
            for (&l, &w) in ls.iter().zip(ws) {
                acc += w * left_scores[l as usize];
                wsum += w;
            }
            chunk[slot] = if wsum > 0.0 { acc / wsum } else { 0.0 };
        }
    }

    /// Sum-propagation from right to left with per-edge normalization over
    /// the *right* node's degree: `out[l] = Σ_r score[r]·w(l,r)/W(r)` where
    /// `W(r)` is `r`'s total weight. This is the HITS/FutureRank-style
    /// "split your mass among your endpoints" step; it conserves the total
    /// mass of scores sitting on non-isolated right nodes.
    pub fn distribute_to_left(&self, right_scores: &[f64]) -> Vec<f64> {
        assert_eq!(right_scores.len(), self.num_right as usize, "score length mismatch");
        let mut out = vec![0.0; self.num_left as usize];
        for r in 0..self.num_right {
            let ls = self.left_of(r);
            let ws = self.left_weights_of(r);
            let wsum: f64 = ws.iter().sum();
            if wsum <= 0.0 {
                continue;
            }
            let s = right_scores[r as usize] / wsum;
            for (&l, &w) in ls.iter().zip(ws) {
                out[l as usize] += s * w;
            }
        }
        out
    }

    /// Sum-propagation from left to right with per-edge normalization over
    /// the *left* node's degree. Mirror of [`Self::distribute_to_left`].
    pub fn distribute_to_right(&self, left_scores: &[f64]) -> Vec<f64> {
        assert_eq!(left_scores.len(), self.num_left as usize, "score length mismatch");
        let mut out = vec![0.0; self.num_right as usize];
        for l in 0..self.num_left {
            let rs = self.right_of(l);
            let ws = self.right_weights_of(l);
            let wsum: f64 = ws.iter().sum();
            if wsum <= 0.0 {
                continue;
            }
            let s = left_scores[l as usize] / wsum;
            for (&r, &w) in rs.iter().zip(ws) {
                out[r as usize] += s * w;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    /// 2 authors, 3 articles. Author 0 wrote articles 0,1; author 1 wrote
    /// articles 1,2. Article 1 is co-authored.
    fn authors_articles() -> Bipartite {
        let mut b = BipartiteBuilder::new(2, 3);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 0.5);
        b.add_edge(1, 1, 0.5);
        b.add_edge(1, 2, 1.0);
        b.build()
    }

    #[test]
    fn shape_and_adjacency() {
        let bp = authors_articles();
        assert_eq!(bp.num_left(), 2);
        assert_eq!(bp.num_right(), 3);
        assert_eq!(bp.num_edges(), 4);
        assert_eq!(bp.right_of(0), &[0, 1]);
        assert_eq!(bp.left_of(1), &[0, 1]);
        assert_eq!(bp.left_degree(0), 2);
        assert_eq!(bp.right_degree(2), 1);
        assert_eq!(bp.right_weights_of(0), &[1.0, 0.5]);
        assert_eq!(bp.left_weights_of(1), &[0.5, 0.5]);
    }

    #[test]
    fn into_variants_match_allocating_and_reset_stale_buffers() {
        let bp = authors_articles();
        let right_scores = [0.1, 0.6, 0.3];
        let left_scores = [0.7, 0.3];
        // Poisoned buffers: `_into` must overwrite every slot, including
        // isolated nodes (the allocating path relies on a fresh zeroed vec).
        let mut left_out = vec![f64::MAX; 2];
        bp.aggregate_to_left_into(&right_scores, &mut left_out);
        assert_eq!(left_out, bp.aggregate_to_left(&right_scores));
        let mut right_out = vec![f64::MAX; 3];
        bp.aggregate_to_right_into(&left_scores, &mut right_out);
        assert_eq!(right_out, bp.aggregate_to_right(&left_scores));

        // Isolated nodes are explicitly zeroed.
        let mut b = BipartiteBuilder::new(3, 2);
        b.add_edge(0, 0, 1.0);
        let sparse = b.build();
        let mut out = vec![9.9; 3];
        sparse.aggregate_to_left_into(&[1.0, 1.0], &mut out);
        assert_eq!(out[1], 0.0);
        assert_eq!(out[2], 0.0);
    }

    #[test]
    fn parallel_aggregation_is_bitwise_sequential() {
        // Big enough to produce several ranges; skewed degrees so the
        // balanced partition is non-trivial.
        let (nl, nr) = (500u32, 300u32);
        let mut b = BipartiteBuilder::new(nl, nr);
        let mut state = 0x9e3779b9u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..4000 {
            let l = next() % nl;
            let r = next() % nr;
            let w = 0.5 + (next() % 8) as f64;
            b.add_edge(l, r, w);
        }
        let bp = b.build();
        let right_scores: Vec<f64> = (0..nr).map(|i| 1.0 / (i + 1) as f64).collect();
        let left_scores: Vec<f64> = (0..nl).map(|i| (i % 7) as f64 + 0.25).collect();
        let seq_l = bp.aggregate_to_left(&right_scores);
        let seq_r = bp.aggregate_to_right(&left_scores);
        for threads in [1usize, 2, 8] {
            let mut par_l = vec![f64::MAX; nl as usize];
            bp.aggregate_to_left_into_par(&right_scores, &mut par_l, &bp.left_ranges(threads));
            assert_eq!(par_l, seq_l, "left aggregation differs at {threads} threads");
            let mut par_r = vec![f64::MAX; nr as usize];
            bp.aggregate_to_right_into_par(&left_scores, &mut par_r, &bp.right_ranges(threads));
            assert_eq!(par_r, seq_r, "right aggregation differs at {threads} threads");
        }
    }

    #[test]
    fn duplicate_edges_merge() {
        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 0, 2.0);
        let bp = b.build();
        assert_eq!(bp.num_edges(), 1);
        assert_eq!(bp.right_weights_of(0), &[3.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_left_panics() {
        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(1, 0, 1.0);
    }

    #[test]
    #[should_panic(expected = "invalid bipartite weight")]
    fn nan_weight_panics() {
        let mut b = BipartiteBuilder::new(1, 1);
        b.add_edge(0, 0, f64::NAN);
    }

    #[test]
    fn aggregate_to_left_is_weighted_mean() {
        let bp = authors_articles();
        let article_scores = [0.9, 0.6, 0.3];
        let a = bp.aggregate_to_left(&article_scores);
        // Author 0: (1.0*0.9 + 0.5*0.6) / 1.5 = 0.8
        assert_close(a[0], 0.8);
        // Author 1: (0.5*0.6 + 1.0*0.3) / 1.5 = 0.4
        assert_close(a[1], 0.4);
    }

    #[test]
    fn aggregate_to_right_is_weighted_mean() {
        let bp = authors_articles();
        let author_scores = [1.0, 0.0];
        let s = bp.aggregate_to_right(&author_scores);
        assert_close(s[0], 1.0); // only author 0
        assert_close(s[1], 0.5); // equal-weight mix
        assert_close(s[2], 0.0); // only author 1
    }

    #[test]
    fn isolated_nodes_score_zero() {
        let mut b = BipartiteBuilder::new(2, 2);
        b.add_edge(0, 0, 1.0);
        let bp = b.build();
        let left = bp.aggregate_to_left(&[1.0, 1.0]);
        assert_close(left[1], 0.0);
        let right = bp.aggregate_to_right(&[1.0, 1.0]);
        assert_close(right[1], 0.0);
    }

    #[test]
    fn distribute_conserves_mass() {
        let bp = authors_articles();
        let article_scores = [0.9, 0.6, 0.3];
        let left = bp.distribute_to_left(&article_scores);
        assert_close(left.iter().sum::<f64>(), article_scores.iter().sum::<f64>());
        let back = bp.distribute_to_right(&left);
        assert_close(back.iter().sum::<f64>(), article_scores.iter().sum::<f64>());
    }

    #[test]
    fn distribute_splits_by_weight() {
        let mut b = BipartiteBuilder::new(2, 1);
        b.add_edge(0, 0, 3.0);
        b.add_edge(1, 0, 1.0);
        let bp = b.build();
        let left = bp.distribute_to_left(&[1.0]);
        assert_close(left[0], 0.75);
        assert_close(left[1], 0.25);
    }

    #[test]
    fn empty_bipartite() {
        let bp = BipartiteBuilder::new(0, 0).build();
        assert_eq!(bp.num_edges(), 0);
        assert!(bp.aggregate_to_left(&[]).is_empty());
        assert!(bp.distribute_to_right(&[]).is_empty());
    }
}
