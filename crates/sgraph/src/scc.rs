//! Strongly connected components (iterative Tarjan).
//!
//! Citation graphs are nearly acyclic, but same-year mutual citations and
//! data noise create small SCCs; SCC structure is reported by the corpus
//! statistics module and exercised by graph-sanity tests.

use crate::csr::{CsrGraph, NodeId};

/// The strongly-connected-component decomposition of a graph.
#[derive(Debug, Clone)]
pub struct SccResult {
    /// `component[v]` is the SCC index of node `v`; components are numbered
    /// in *reverse topological* order of the condensation (Tarjan's natural
    /// output order): if SCC `a` has an edge to SCC `b`, then `a > b`.
    pub component: Vec<u32>,
    /// Number of SCCs.
    pub num_components: u32,
}

impl SccResult {
    /// Sizes of each component, indexed by component id.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components as usize];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest SCC (0 for an empty graph).
    pub fn largest_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Number of SCCs containing more than one node.
    pub fn num_nontrivial(&self) -> usize {
        self.component_sizes().into_iter().filter(|&s| s > 1).count()
    }

    /// The members of each component.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.num_components as usize];
        for (i, &c) in self.component.iter().enumerate() {
            out[c as usize].push(NodeId(i as u32));
        }
        out
    }
}

/// Compute SCCs with an iterative Tarjan (explicit stack, so deep graphs —
/// e.g. a 10⁶-node citation chain — cannot overflow the call stack).
pub fn tarjan_scc(g: &CsrGraph) -> SccResult {
    const UNVISITED: u32 = u32::MAX;
    let n = g.len();
    let mut index = vec![UNVISITED; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut component = vec![0u32; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut num_components = 0u32;

    // Work stack frames: (node, next-child cursor).
    let mut frames: Vec<(u32, usize)> = Vec::new();

    for root in 0..n as u32 {
        if index[root as usize] != UNVISITED {
            continue;
        }
        frames.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let vi = v as usize;
            if *cursor == 0 {
                // First visit of v.
                index[vi] = next_index;
                lowlink[vi] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[vi] = true;
            }
            let neighbors = g.out_neighbors(NodeId(v));
            let mut advanced = false;
            while *cursor < neighbors.len() {
                let w = neighbors[*cursor].0;
                *cursor += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    frames.push((w, 0));
                    advanced = true;
                    break;
                } else if on_stack[wi] {
                    lowlink[vi] = lowlink[vi].min(index[wi]);
                }
            }
            if advanced {
                continue;
            }
            // All children done: pop frame, maybe emit component.
            frames.pop();
            if let Some(&(parent, _)) = frames.last() {
                let pi = parent as usize;
                lowlink[pi] = lowlink[pi].min(lowlink[vi]);
            }
            if lowlink[vi] == index[vi] {
                loop {
                    let w = stack.pop().expect("tarjan stack underflow");
                    on_stack[w as usize] = false;
                    component[w as usize] = num_components;
                    if w == v {
                        break;
                    }
                }
                num_components += 1;
            }
        }
    }

    SccResult { component, num_components }
}

/// Condense the graph: one node per SCC, edges between distinct SCCs with
/// summed weights. The result is always a DAG.
pub fn condensation(g: &CsrGraph, scc: &SccResult) -> CsrGraph {
    let mut b = crate::GraphBuilder::new(scc.num_components).self_loops(false);
    for e in g.edges() {
        let cs = scc.component[e.src.index()];
        let cd = scc.component[e.dst.index()];
        if cs != cd {
            b.add_edge(NodeId(cs), NodeId(cd), e.weight);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::is_cyclic;
    use crate::GraphBuilder;

    #[test]
    fn dag_has_singleton_components() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 4);
        assert_eq!(scc.largest_size(), 1);
        assert_eq!(scc.num_nontrivial(), 0);
    }

    #[test]
    fn cycle_is_one_component() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 1);
        assert_eq!(scc.largest_size(), 3);
    }

    #[test]
    fn two_cycles_with_bridge() {
        // {0,1} cycle -> {2,3} cycle
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)]);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 2);
        assert_eq!(scc.component[0], scc.component[1]);
        assert_eq!(scc.component[2], scc.component[3]);
        assert_ne!(scc.component[0], scc.component[2]);
        // Reverse topological numbering: source SCC has the larger id.
        assert!(scc.component[0] > scc.component[2]);
    }

    #[test]
    fn members_partition_the_nodes() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 0), (2, 3), (3, 4), (4, 2)]);
        let scc = tarjan_scc(&g);
        let members = scc.members();
        let total: usize = members.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
        assert_eq!(scc.num_nontrivial(), 2);
    }

    #[test]
    fn condensation_is_acyclic() {
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 0), (1, 2), (2, 3), (3, 4), (4, 2), (4, 5)]);
        let scc = tarjan_scc(&g);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.num_nodes(), scc.num_components);
        assert!(!is_cyclic(&dag));
    }

    #[test]
    fn condensation_sums_parallel_edge_weights() {
        // Two nodes in SCC A both point into SCC B.
        let g = GraphBuilder::from_weighted_edges(
            4,
            &[(0, 1, 1.0), (1, 0, 1.0), (0, 2, 2.0), (1, 2, 3.0), (2, 3, 1.0), (3, 2, 1.0)],
        );
        let scc = tarjan_scc(&g);
        let dag = condensation(&g, &scc);
        assert_eq!(dag.num_edges(), 1);
        assert_eq!(dag.total_weight(), 5.0);
    }

    #[test]
    fn empty_and_isolated() {
        let g = crate::CsrGraph::empty(3);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, 3);
        let g0 = crate::CsrGraph::empty(0);
        let scc0 = tarjan_scc(&g0);
        assert_eq!(scc0.num_components, 0);
        assert_eq!(scc0.largest_size(), 0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 200k-node chain would overflow a recursive Tarjan.
        let n = 200_000u32;
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = GraphBuilder::from_edges(n, &edges);
        let scc = tarjan_scc(&g);
        assert_eq!(scc.num_components, n);
    }
}
