//! Error type shared across the crate.

use std::fmt;

/// Errors produced while building, transforming, or (de)serializing graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An edge referenced a node index `>= num_nodes`.
    NodeOutOfBounds {
        /// The offending node index.
        node: u32,
        /// Number of nodes in the graph being built.
        num_nodes: u32,
    },
    /// An edge weight was NaN, infinite, or negative.
    InvalidWeight {
        /// Source of the offending edge.
        src: u32,
        /// Destination of the offending edge.
        dst: u32,
        /// The offending weight.
        weight: f64,
    },
    /// A duplicate edge was encountered under [`DuplicateEdgePolicy::Reject`].
    ///
    /// [`DuplicateEdgePolicy::Reject`]: crate::builder::DuplicateEdgePolicy::Reject
    DuplicateEdge {
        /// Source of the duplicated edge.
        src: u32,
        /// Destination of the duplicated edge.
        dst: u32,
    },
    /// The graph contains a cycle where an acyclic graph was required
    /// (e.g. topological sorting).
    CycleDetected,
    /// A malformed line in a text edge-list file.
    ParseError {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// Binary format corruption or version mismatch.
    BadBinaryFormat(String),
    /// Underlying IO failure.
    Io(std::io::Error),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node index {node} out of bounds (graph has {num_nodes} nodes)")
            }
            GraphError::InvalidWeight { src, dst, weight } => {
                write!(
                    f,
                    "invalid weight {weight} on edge {src} -> {dst} (must be finite and >= 0)"
                )
            }
            GraphError::DuplicateEdge { src, dst } => {
                write!(f, "duplicate edge {src} -> {dst} rejected by policy")
            }
            GraphError::CycleDetected => write!(f, "graph contains a cycle"),
            GraphError::ParseError { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::BadBinaryFormat(msg) => write!(f, "bad binary graph format: {msg}"),
            GraphError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<GraphError> = vec![
            GraphError::NodeOutOfBounds { node: 7, num_nodes: 3 },
            GraphError::InvalidWeight { src: 0, dst: 1, weight: f64::NAN },
            GraphError::DuplicateEdge { src: 2, dst: 2 },
            GraphError::CycleDetected,
            GraphError::ParseError { line: 4, message: "oops".into() },
            GraphError::BadBinaryFormat("magic".into()),
            GraphError::Io(std::io::Error::other("x")),
        ];
        for c in cases {
            assert!(!c.to_string().is_empty());
        }
    }

    #[test]
    fn io_error_source_is_preserved() {
        let e = GraphError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(matches!(e, GraphError::Io(_)));
    }
}
