//! Random edge sampling — the substrate of the sparsification-robustness
//! experiment (R-Fig 7): how does each ranker's output degrade when a
//! fraction of the citation edges is hidden?
//!
//! Sampling is deterministic given the seed and independent per edge, so
//! nested samples can be produced by lowering the keep probability with
//! the same seed.

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// Deterministic per-edge hash in [0, 1): splitmix64 of
/// `(seed, src, dst)`. The same edge keeps/drops consistently across
/// different keep fractions, so samples are nested. Public so corpus-level
/// perturbations can stay consistent with graph-level ones.
pub fn edge_unit(seed: u64, src: u32, dst: u32) -> f64 {
    let mut z = seed ^ ((src as u64) << 32 | dst as u64).wrapping_mul(0x9e3779b97f4a7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// Keep each edge independently with probability `keep_fraction`
/// (weights preserved). Node set unchanged.
pub fn sample_edges(g: &CsrGraph, keep_fraction: f64, seed: u64) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep fraction must be a probability, got {keep_fraction}"
    );
    let mut b = GraphBuilder::new(g.num_nodes())
        .with_edge_capacity((g.num_edges() as f64 * keep_fraction) as usize + 16);
    for e in g.edges() {
        if edge_unit(seed, e.src.0, e.dst.0) < keep_fraction {
            b.add_edge(e.src, e.dst, e.weight);
        }
    }
    b.build()
}

/// Hide all *in-edges* of the given target nodes with probability
/// `drop_fraction` — the "new page" simulation: a set of articles loses
/// most of the citations pointing at them.
pub fn drop_in_edges_of(
    g: &CsrGraph,
    targets: &[NodeId],
    drop_fraction: f64,
    seed: u64,
) -> CsrGraph {
    assert!(
        (0.0..=1.0).contains(&drop_fraction),
        "drop fraction must be a probability, got {drop_fraction}"
    );
    let mut is_target = vec![false; g.len()];
    for &t in targets {
        is_target[t.index()] = true;
    }
    let mut b = GraphBuilder::new(g.num_nodes()).with_edge_capacity(g.num_edges());
    for e in g.edges() {
        let drop = is_target[e.dst.index()] && edge_unit(seed, e.src.0, e.dst.0) < drop_fraction;
        if !drop {
            b.add_edge(e.src, e.dst, e.weight);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_random_graph() -> CsrGraph {
        let mut edges = Vec::new();
        let mut state = 77u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        for _ in 0..20_000 {
            edges.push((next() % 2000, next() % 2000, 1.0));
        }
        GraphBuilder::from_weighted_edges(2000, &edges)
    }

    #[test]
    fn keep_fraction_is_respected() {
        let g = big_random_graph();
        for &f in &[0.2, 0.5, 0.8] {
            let s = sample_edges(&g, f, 9);
            let got = s.num_edges() as f64 / g.num_edges() as f64;
            assert!(
                (got - f).abs() < 0.03,
                "asked to keep {f}, kept {got} ({} of {})",
                s.num_edges(),
                g.num_edges()
            );
            assert_eq!(s.num_nodes(), g.num_nodes());
        }
    }

    #[test]
    fn extremes() {
        let g = big_random_graph();
        assert_eq!(sample_edges(&g, 1.0, 1).num_edges(), g.num_edges());
        assert_eq!(sample_edges(&g, 0.0, 1).num_edges(), 0);
    }

    #[test]
    fn sampling_is_deterministic_and_seed_sensitive() {
        let g = big_random_graph();
        let a = sample_edges(&g, 0.5, 42);
        let b = sample_edges(&g, 0.5, 42);
        assert_eq!(a, b);
        let c = sample_edges(&g, 0.5, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn samples_are_nested() {
        // Every edge kept at 30% must also be kept at 60% (same seed).
        let g = big_random_graph();
        let small = sample_edges(&g, 0.3, 5);
        let large = sample_edges(&g, 0.6, 5);
        for e in small.edges() {
            assert!(
                large.has_edge(e.src, e.dst),
                "edge {} -> {} in the 30% sample missing from the 60% sample",
                e.src,
                e.dst
            );
        }
    }

    #[test]
    fn drop_in_edges_targets_only() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 1), (3, 1), (0, 2), (3, 2)]);
        let dropped = drop_in_edges_of(&g, &[NodeId(1)], 1.0, 7);
        assert_eq!(dropped.in_degree(NodeId(1)), 0);
        assert_eq!(dropped.in_degree(NodeId(2)), 2, "non-target in-edges untouched");
    }

    #[test]
    fn partial_drop_fraction() {
        let g = big_random_graph();
        let targets: Vec<NodeId> = (0..200).map(NodeId).collect();
        let before: usize = targets.iter().map(|&t| g.in_degree(t)).sum();
        let dropped = drop_in_edges_of(&g, &targets, 0.9, 3);
        let after: usize = targets.iter().map(|&t| dropped.in_degree(t)).sum();
        let kept = after as f64 / before as f64;
        assert!((kept - 0.1).abs() < 0.05, "expected ~10% of in-edges kept, got {kept}");
    }

    #[test]
    fn weights_survive_sampling() {
        let g = GraphBuilder::from_weighted_edges(3, &[(0, 1, 2.5), (1, 2, 0.5)]);
        let s = sample_edges(&g, 1.0, 1);
        assert_eq!(s.edge_weight(NodeId(0), NodeId(1)), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_fraction_panics() {
        sample_edges(&CsrGraph::empty(1), 1.5, 0);
    }
}
