//! The backing-store abstraction under the power-iteration driver.
//!
//! Every damped walk in the stack is the same fixpoint
//! `y = d·Pᵀx + (d·dangling_mass(x) + (1−d))·j`; what varies is where
//! the pull-form transition structure *lives*. [`CsrStore`] abstracts
//! that: the in-RAM [`RowStochastic`] operator implements it by
//! delegating to its dense gather kernels, and the out-of-core
//! [`crate::mmap_csr::MmapCsr`] implements it by sweeping mmap-backed
//! node shards. [`stationary_store`] is the one driver both run under —
//! it is the exact loop [`RowStochastic::stationary`] has always used
//! (which now delegates here), so a store whose `apply_step` matches the
//! dense kernel bit-for-bit produces bit-identical residual sequences,
//! iteration counts, and stationaries.

use crate::stochastic::{
    l1_distance, JumpVector, PowerIterationOpts, PowerIterationResult, RowStochastic,
};

/// A pull-form row-stochastic transition structure, wherever it lives.
///
/// Implementations must make `apply_step` compute exactly
/// `y[v] = d·Σ_u p(u→v)·x[u] + (d·Σ_{u dangling} x[u] + (1−d))·j(v)`
/// with per-node gathers accumulated in ascending source order and the
/// dangling sum accumulated in ascending node order — the summation
/// orders [`RowStochastic`] uses — so that every implementation of the
/// same graph yields bit-identical iterates.
pub trait CsrStore {
    /// Number of nodes (length of the iterate vectors).
    fn num_nodes(&self) -> usize;

    /// One damped power-iteration step: read `x`, write `y`.
    ///
    /// `threads` is a parallelism *hint*; implementations may run
    /// sequentially (results are bitwise identical at any thread count
    /// because each output slot's gather order is fixed).
    fn apply_step(&self, x: &[f64], y: &mut [f64], damping: f64, jump: &JumpVector, threads: usize);
}

impl CsrStore for RowStochastic {
    fn num_nodes(&self) -> usize {
        RowStochastic::num_nodes(self)
    }

    fn apply_step(
        &self,
        x: &[f64],
        y: &mut [f64],
        damping: f64,
        jump: &JumpVector,
        threads: usize,
    ) {
        self.apply_parallel(x, y, damping, jump, threads);
    }
}

/// Run damped power iteration to a fixpoint over any [`CsrStore`].
///
/// This is the canonical loop behind [`RowStochastic::stationary`]
/// (which delegates here): start from the jump distribution or a
/// normalized warm start, step until the L1 residual drops below
/// `opts.tol` or `opts.max_iter` steps elapse, and report the final
/// iterate with the per-iteration residual history.
pub fn stationary_store<S: CsrStore + ?Sized>(
    store: &S,
    opts: &PowerIterationOpts,
) -> PowerIterationResult {
    let n = store.num_nodes();
    if n == 0 {
        return PowerIterationResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
        };
    }
    let mut x = match &opts.warm_start {
        Some(v) => {
            assert_eq!(v.len(), n, "warm start length mismatch");
            let s: f64 = v.iter().sum();
            assert!(s > 0.0, "warm start must have positive mass");
            v.iter().map(|&e| e / s).collect()
        }
        None => opts.jump.to_dense(n),
    };
    let mut y = vec![0.0; n];
    let mut residuals = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    while iterations < opts.max_iter {
        store.apply_step(&x, &mut y, opts.damping, &opts.jump, opts.threads);
        iterations += 1;
        let r = l1_distance(&x, &y);
        residuals.push(r);
        std::mem::swap(&mut x, &mut y);
        if r < opts.tol {
            converged = true;
            break;
        }
    }
    PowerIterationResult { scores: x, iterations, converged, residuals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn store_driver_is_the_stationary_loop() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (0, 5)]);
        let op = RowStochastic::new(&g);
        let opts = PowerIterationOpts::default();
        let direct = op.stationary(&opts);
        let via_store = stationary_store(&op, &opts);
        assert_eq!(direct.scores, via_store.scores, "must be the same loop, bit for bit");
        assert_eq!(direct.iterations, via_store.iterations);
        assert_eq!(direct.residuals, via_store.residuals);
    }

    #[test]
    fn dyn_store_works() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let op = RowStochastic::new(&g);
        let store: &dyn CsrStore = &op;
        let res = stationary_store(store, &PowerIterationOpts::default());
        assert!(res.converged);
        assert!((res.scores.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
