//! Mutable staging area for assembling [`CsrGraph`]s.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphError, Result};

/// What to do when the same `(src, dst)` pair is added more than once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DuplicateEdgePolicy {
    /// Sum the weights of duplicate edges into one edge (the default;
    /// matches how citation multi-edges are aggregated into venue/author
    /// graphs).
    #[default]
    SumWeights,
    /// Keep the first weight seen, drop the rest.
    KeepFirst,
    /// Keep the maximum weight seen.
    MaxWeight,
    /// Fail the build with [`GraphError::DuplicateEdge`].
    Reject,
}

/// Incrementally collects edges, then produces a canonical [`CsrGraph`].
///
/// The builder is intentionally permissive while staging (edges land in a
/// flat vector); all validation, sorting, deduplication and the in-CSR
/// derivation happen in [`GraphBuilder::build`] / [`GraphBuilder::try_build`],
/// which run in O(E log E).
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(u32, u32, f64)>,
    policy: DuplicateEdgePolicy,
    allow_self_loops: bool,
}

impl GraphBuilder {
    /// A builder for a graph with `num_nodes` nodes (ids `0..num_nodes`).
    pub fn new(num_nodes: u32) -> Self {
        GraphBuilder {
            num_nodes,
            edges: Vec::new(),
            policy: DuplicateEdgePolicy::default(),
            allow_self_loops: true,
        }
    }

    /// Pre-reserve capacity for `n` edges.
    pub fn with_edge_capacity(mut self, n: usize) -> Self {
        self.edges.reserve(n);
        self
    }

    /// Set the duplicate-edge policy (default: [`DuplicateEdgePolicy::SumWeights`]).
    pub fn duplicate_policy(mut self, policy: DuplicateEdgePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// When `false`, self-loops are silently dropped at build time
    /// (citation graphs never contain them; aggregated venue/author graphs
    /// do, and whether to keep them is a modeling choice).
    pub fn self_loops(mut self, allow: bool) -> Self {
        self.allow_self_loops = allow;
        self
    }

    /// Number of nodes this builder was created with.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of staged (pre-dedup) edges.
    pub fn num_staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Grow the node count (never shrinks).
    pub fn ensure_nodes(&mut self, n: u32) {
        self.num_nodes = self.num_nodes.max(n);
    }

    /// Stage a weighted edge.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: f64) {
        self.edges.push((src.0, dst.0, weight));
    }

    /// Stage an unweighted edge (weight 1.0).
    pub fn add_unweighted(&mut self, src: NodeId, dst: NodeId) {
        self.add_edge(src, dst, 1.0);
    }

    /// Stage many edges at once.
    pub fn extend_edges<I: IntoIterator<Item = (NodeId, NodeId, f64)>>(&mut self, iter: I) {
        self.edges.extend(iter.into_iter().map(|(s, d, w)| (s.0, d.0, w)));
    }

    /// Build, panicking on invalid input. Prefer [`Self::try_build`] when
    /// edges come from untrusted data.
    pub fn build(self) -> CsrGraph {
        self.try_build().expect("GraphBuilder::build: invalid graph input")
    }

    /// Build, validating node bounds, weights, and the duplicate policy.
    pub fn try_build(mut self) -> Result<CsrGraph> {
        let n = self.num_nodes as usize;

        for &(s, d, w) in &self.edges {
            if s >= self.num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: s, num_nodes: self.num_nodes });
            }
            if d >= self.num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: d, num_nodes: self.num_nodes });
            }
            if !w.is_finite() || w < 0.0 {
                return Err(GraphError::InvalidWeight { src: s, dst: d, weight: w });
            }
        }
        if !self.allow_self_loops {
            self.edges.retain(|&(s, d, _)| s != d);
        }

        // Sort by (src, dst); stable so KeepFirst keeps insertion order.
        self.edges.sort_by_key(|&(s, d, _)| (s, d));

        // Deduplicate in place according to policy.
        let mut deduped: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for (s, d, w) in self.edges.drain(..) {
            match deduped.last_mut() {
                Some(last) if last.0 == s && last.1 == d => match self.policy {
                    DuplicateEdgePolicy::SumWeights => last.2 += w,
                    DuplicateEdgePolicy::KeepFirst => {}
                    DuplicateEdgePolicy::MaxWeight => last.2 = last.2.max(w),
                    DuplicateEdgePolicy::Reject => {
                        return Err(GraphError::DuplicateEdge { src: s, dst: d })
                    }
                },
                _ => deduped.push((s, d, w)),
            }
        }

        let m = deduped.len();
        let mut out_offsets = vec![0usize; n + 1];
        for &(s, _, _) in &deduped {
            out_offsets[s as usize + 1] += 1;
        }
        for i in 0..n {
            out_offsets[i + 1] += out_offsets[i];
        }
        let mut out_targets = Vec::with_capacity(m);
        let mut out_weights = Vec::with_capacity(m);
        for &(_, d, w) in &deduped {
            out_targets.push(d);
            out_weights.push(w);
        }

        // Derive in-CSR with a counting pass + placement pass.
        let mut in_offsets = vec![0usize; n + 1];
        for &(_, d, _) in &deduped {
            in_offsets[d as usize + 1] += 1;
        }
        for i in 0..n {
            in_offsets[i + 1] += in_offsets[i];
        }
        let mut in_sources = vec![0u32; m];
        let mut in_weights = vec![0f64; m];
        let mut cursor = in_offsets[..n].to_vec();
        // deduped is sorted by (src, dst), so within each target bucket the
        // sources arrive in ascending order — the in-adjacency comes out
        // sorted for free.
        for &(s, d, w) in &deduped {
            let slot = cursor[d as usize];
            in_sources[slot] = s;
            in_weights[slot] = w;
            cursor[d as usize] += 1;
        }

        Ok(CsrGraph {
            num_nodes: self.num_nodes,
            out_offsets,
            out_targets,
            out_weights,
            in_offsets,
            in_sources,
            in_weights,
        })
    }

    /// Convenience: build a graph directly from an edge list.
    pub fn from_edges(num_nodes: u32, edges: &[(u32, u32)]) -> CsrGraph {
        let mut b = GraphBuilder::new(num_nodes).with_edge_capacity(edges.len());
        for &(s, d) in edges {
            b.add_unweighted(NodeId(s), NodeId(d));
        }
        b.build()
    }

    /// Convenience: build a weighted graph directly from an edge list.
    pub fn from_weighted_edges(num_nodes: u32, edges: &[(u32, u32, f64)]) -> CsrGraph {
        let mut b = GraphBuilder::new(num_nodes).with_edge_capacity(edges.len());
        for &(s, d, w) in edges {
            b.add_edge(NodeId(s), NodeId(d), w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_duplicate_weights_by_default() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 1.5);
        b.add_edge(NodeId(0), NodeId(1), 2.5);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(4.0));
    }

    #[test]
    fn keep_first_policy() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicateEdgePolicy::KeepFirst);
        b.add_edge(NodeId(0), NodeId(1), 1.5);
        b.add_edge(NodeId(0), NodeId(1), 9.0);
        let g = b.build();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(1.5));
    }

    #[test]
    fn max_weight_policy() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicateEdgePolicy::MaxWeight);
        b.add_edge(NodeId(0), NodeId(1), 1.5);
        b.add_edge(NodeId(0), NodeId(1), 9.0);
        b.add_edge(NodeId(0), NodeId(1), 3.0);
        let g = b.build();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(9.0));
    }

    #[test]
    fn reject_policy_errors() {
        let mut b = GraphBuilder::new(2).duplicate_policy(DuplicateEdgePolicy::Reject);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        assert!(matches!(b.try_build(), Err(GraphError::DuplicateEdge { src: 0, dst: 1 })));
    }

    #[test]
    fn out_of_bounds_src_and_dst_error() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(5), NodeId(0), 1.0);
        assert!(matches!(b.try_build(), Err(GraphError::NodeOutOfBounds { node: 5, .. })));
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(2), 1.0);
        assert!(matches!(b.try_build(), Err(GraphError::NodeOutOfBounds { node: 2, .. })));
    }

    #[test]
    fn invalid_weights_error() {
        for bad in [f64::NAN, f64::INFINITY, -0.5] {
            let mut b = GraphBuilder::new(2);
            b.add_edge(NodeId(0), NodeId(1), bad);
            assert!(b.try_build().is_err(), "weight {bad} should be rejected");
        }
    }

    #[test]
    fn zero_weight_is_allowed() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(NodeId(0), NodeId(1), 0.0);
        let g = b.build();
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(0.0));
    }

    #[test]
    fn self_loops_dropped_when_disallowed() {
        let mut b = GraphBuilder::new(2).self_loops(false);
        b.add_edge(NodeId(0), NodeId(0), 1.0);
        b.add_edge(NodeId(0), NodeId(1), 1.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert!(!g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn self_loops_kept_by_default() {
        let mut b = GraphBuilder::new(1);
        b.add_edge(NodeId(0), NodeId(0), 2.0);
        let g = b.build();
        assert!(g.has_edge(NodeId(0), NodeId(0)));
    }

    #[test]
    fn unsorted_input_becomes_canonical() {
        let g1 = GraphBuilder::from_edges(4, &[(2, 1), (0, 3), (0, 1), (2, 0)]);
        let g2 = GraphBuilder::from_edges(4, &[(0, 1), (0, 3), (2, 0), (2, 1)]);
        assert_eq!(g1, g2);
        g1.validate().unwrap();
    }

    #[test]
    fn ensure_nodes_grows_only() {
        let mut b = GraphBuilder::new(3);
        b.ensure_nodes(10);
        assert_eq!(b.num_nodes(), 10);
        b.ensure_nodes(5);
        assert_eq!(b.num_nodes(), 10);
    }

    #[test]
    fn extend_edges_stages_all() {
        let mut b = GraphBuilder::new(3);
        b.extend_edges([(NodeId(0), NodeId(1), 1.0), (NodeId(1), NodeId(2), 1.0)]);
        assert_eq!(b.num_staged_edges(), 2);
        assert_eq!(b.build().num_edges(), 2);
    }

    #[test]
    fn from_weighted_edges_roundtrip() {
        let g = GraphBuilder::from_weighted_edges(3, &[(0, 1, 0.25), (1, 2, 0.75)]);
        assert_eq!(g.edge_weight(NodeId(0), NodeId(1)), Some(0.25));
        assert_eq!(g.total_weight(), 1.0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert!(g.is_empty());
        let g = GraphBuilder::new(4).build();
        assert_eq!(g.num_edges(), 0);
    }
}
