//! Mmap-backed, node-sharded pull CSR for out-of-core power iteration.
//!
//! [`MmapCsr`] stores the same pull-form transition structure as
//! [`RowStochastic`](crate::RowStochastic) — per-target in-edge lists
//! with precomputed probabilities plus the global dangling set — but on
//! disk, partitioned into contiguous node shards that are served
//! zero-copy through [`crate::mmap::Mmap`]. A sweep touches one shard's
//! arrays at a time, so peak resident memory is two iterate vectors plus
//! one shard, not the whole graph.
//!
//! ## Bit identity with the dense operator
//!
//! The damped step `y = d·Pᵀx + (d·dangling_mass(x) + (1−d))·j` is a
//! sum per output slot, and floating-point addition is order-sensitive;
//! the dense kernel fixes the order as *ascending global source id per
//! target* and *ascending node id for the dangling mass*.
//! [`MmapCsrBuilder`] preserves exactly those orders (sources arrive
//! ascending because `add_source` must be called for node 0, 1, …, n−1;
//! the stable per-shard sort by target keeps them ascending per row),
//! and [`MmapCsr::apply_step`] accumulates in stored order. Node
//! partitioning never reorders a per-slot sum — each target's whole row
//! lives in its own shard — so shard size is a pure layout knob:
//! residuals, iteration counts, and stationaries are bit-identical to
//! the dense solve at any `shard_size`.
//!
//! ## File format (`SCSRv1`, little-endian, 8-byte-aligned sections)
//!
//! ```text
//! header   : magic "SCSRv1\0\0" · n · m · shard_size · num_shards
//!            · dangling_off · dangling_len · tag          (8 × u64)
//! directory: per shard { boundary_off, boundary_len, offsets_off,
//!            sources_off, probs_off, edges }              (6 × u64)
//! dangling : u32[dangling_len]   ascending global ids
//! per shard:
//!   boundary: u32[boundary_len]  sorted global ids of sources that
//!                                live OUTSIDE this shard's node range
//!   offsets : u64[shard_len + 1] row starts, relative to the shard
//!   sources : u32[edges]         local codes: code < shard_len is the
//!                                in-shard node (global = start + code),
//!                                else boundary[code − shard_len]
//!   probs   : f64[edges]         transition probabilities w / out_sum
//! ```
//!
//! The `tag` is caller-supplied (the colstore layer passes its content
//! generation) and is validated on open, so a stale shard file built
//! from an older corpus cannot be silently reused.
//!
//! The boundary list is the *frontier exchange*: before sweeping a
//! shard, the solver gathers `x` at each boundary id into a dense
//! frontier buffer, so row gathers read either the shard's own `x`
//! range or the frontier — never a random global offset per edge.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::mmap::Mmap;
use crate::stochastic::JumpVector;
use crate::store::CsrStore;
use crate::CsrGraph;

const MAGIC: &[u8; 8] = b"SCSRv1\0\0";
const HEADER_BYTES: usize = 64;
const DIR_FIELDS: usize = 6;

/// Round `off` up to the next multiple of 8.
fn align8(off: u64) -> u64 {
    (off + 7) & !7
}

#[derive(Clone, Copy)]
struct ShardMeta {
    boundary_off: u64,
    boundary_len: u64,
    offsets_off: u64,
    sources_off: u64,
    probs_off: u64,
    edges: u64,
}

/// Streaming writer for the [`MmapCsr`] shard file.
///
/// Call [`MmapCsrBuilder::add_source`] once per node in ascending id
/// order with that node's out-edges (targets and raw weights, in the
/// same order the dense CSR stores them), then
/// [`MmapCsrBuilder::finish`]. Edges are spilled to per-shard temp
/// files as they arrive, so the full edge set is never held in memory;
/// `finish` assembles one shard at a time and atomically renames the
/// result into place.
pub struct MmapCsrBuilder {
    path: PathBuf,
    n: usize,
    shard_size: usize,
    num_shards: usize,
    next: u32,
    m: u64,
    dangling: Vec<u32>,
    spills: Vec<BufWriter<File>>,
    spill_paths: Vec<PathBuf>,
}

impl MmapCsrBuilder {
    /// Start building a shard file at `path` for an `n`-node graph with
    /// `shard_size` nodes per shard.
    pub fn new(path: &Path, n: usize, shard_size: usize) -> io::Result<MmapCsrBuilder> {
        assert!(shard_size > 0, "shard_size must be positive");
        assert!(n < u32::MAX as usize, "node count must fit in u32");
        let num_shards = n.div_ceil(shard_size).max(1);
        let mut spills = Vec::with_capacity(num_shards);
        let mut spill_paths = Vec::with_capacity(num_shards);
        for s in 0..num_shards {
            let sp = path.with_extension(format!("spill{s}"));
            spills.push(BufWriter::new(File::create(&sp)?));
            spill_paths.push(sp);
        }
        Ok(MmapCsrBuilder {
            path: path.to_path_buf(),
            n,
            shard_size,
            num_shards,
            next: 0,
            m: 0,
            dangling: Vec::new(),
            spills,
            spill_paths,
        })
    }

    /// Feed the out-edges of the next node (ids must arrive 0, 1, …).
    ///
    /// `targets`/`weights` must be in the dense CSR's storage order
    /// (ascending target, no duplicates). A node whose weight sum is
    /// `<= 0` is dangling, exactly as in
    /// [`RowStochastic::new`](crate::RowStochastic::new); otherwise each
    /// edge with `w > 0` contributes probability `w / sum`.
    pub fn add_source(&mut self, targets: &[u32], weights: &[f64]) -> io::Result<()> {
        assert_eq!(targets.len(), weights.len(), "targets/weights length mismatch");
        assert!((self.next as usize) < self.n, "add_source called more than n times");
        let u = self.next;
        self.next += 1;
        let out_sum: f64 = weights.iter().sum();
        if out_sum <= 0.0 {
            self.dangling.push(u);
            return Ok(());
        }
        for (&t, &w) in targets.iter().zip(weights) {
            assert!((t as usize) < self.n, "target {t} out of bounds");
            if w > 0.0 {
                let prob = w / out_sum;
                let shard = t as usize / self.shard_size;
                let sp = &mut self.spills[shard];
                sp.write_all(&t.to_le_bytes())?;
                sp.write_all(&u.to_le_bytes())?;
                sp.write_all(&prob.to_le_bytes())?;
                self.m += 1;
            }
        }
        Ok(())
    }

    /// Assemble the shard file and atomically move it into place,
    /// stamping `tag` into the header for staleness detection on open.
    pub fn finish(mut self, tag: u64) -> io::Result<()> {
        assert_eq!(self.next as usize, self.n, "add_source must be called exactly n times");
        for sp in &mut self.spills {
            sp.flush()?;
        }
        self.spills.clear();

        let tmp = self.path.with_extension("scsr.tmp");
        let mut out = BufWriter::new(File::create(&tmp)?);
        let dir_bytes = (self.num_shards * DIR_FIELDS * 8) as u64;
        let dangling_off = HEADER_BYTES as u64 + dir_bytes;
        // Header + directory are rewritten at the end once section
        // offsets are known; reserve their bytes now.
        out.write_all(&vec![0u8; (dangling_off as usize) + self.dangling.len() * 4])?;
        let mut cursor = dangling_off + (self.dangling.len() * 4) as u64;

        let mut dir = Vec::with_capacity(self.num_shards);
        let pad = |out: &mut BufWriter<File>, cursor: &mut u64| -> io::Result<()> {
            let aligned = align8(*cursor);
            if aligned > *cursor {
                out.write_all(&vec![0u8; (aligned - *cursor) as usize])?;
                *cursor = aligned;
            }
            Ok(())
        };

        for shard in 0..self.num_shards {
            let start = shard * self.shard_size;
            let shard_len = self.shard_size.min(self.n - start.min(self.n));
            let records = read_spill(&self.spill_paths[shard])?;
            let mut order: Vec<u32> = (0..records.len() as u32).collect();
            // Stable sort by target: spill order is ascending source
            // (add_source id order), so each row stays source-ascending.
            order.sort_by_key(|&i| records[i as usize].0);

            let mut boundary: Vec<u32> = records
                .iter()
                .map(|r| r.1)
                .filter(|&s| (s as usize) < start || (s as usize) >= start + shard_len)
                .collect();
            boundary.sort_unstable();
            boundary.dedup();

            let mut offsets = vec![0u64; shard_len + 1];
            for r in &records {
                offsets[(r.0 as usize - start) + 1] += 1;
            }
            for i in 1..offsets.len() {
                offsets[i] += offsets[i - 1];
            }

            pad(&mut out, &mut cursor)?;
            let boundary_off = cursor;
            for &b in &boundary {
                out.write_all(&b.to_le_bytes())?;
            }
            cursor += (boundary.len() * 4) as u64;

            pad(&mut out, &mut cursor)?;
            let offsets_off = cursor;
            for &o in &offsets {
                out.write_all(&o.to_le_bytes())?;
            }
            cursor += (offsets.len() * 8) as u64;

            pad(&mut out, &mut cursor)?;
            let sources_off = cursor;
            for &i in &order {
                let src = records[i as usize].1 as usize;
                let code = if src >= start && src < start + shard_len {
                    (src - start) as u32
                } else {
                    let bi = boundary.binary_search(&(src as u32)).expect("boundary id present");
                    (shard_len + bi) as u32
                };
                out.write_all(&code.to_le_bytes())?;
            }
            cursor += (order.len() * 4) as u64;

            pad(&mut out, &mut cursor)?;
            let probs_off = cursor;
            for &i in &order {
                out.write_all(&records[i as usize].2.to_le_bytes())?;
            }
            cursor += (order.len() * 8) as u64;

            dir.push(ShardMeta {
                boundary_off,
                boundary_len: boundary.len() as u64,
                offsets_off,
                sources_off,
                probs_off,
                edges: records.len() as u64,
            });
        }
        out.flush()?;
        let mut file = out.into_inner().map_err(|e| e.into_error())?;

        // Now rewrite the reserved header, directory, and dangling list.
        file.seek(SeekFrom::Start(0))?;
        let mut head = Vec::with_capacity(HEADER_BYTES);
        head.extend_from_slice(MAGIC);
        for v in [
            self.n as u64,
            self.m,
            self.shard_size as u64,
            self.num_shards as u64,
            dangling_off,
            self.dangling.len() as u64,
            tag,
        ] {
            head.extend_from_slice(&v.to_le_bytes());
        }
        file.write_all(&head)?;
        let mut dir_buf = Vec::with_capacity(dir.len() * DIR_FIELDS * 8);
        for d in &dir {
            for v in
                [d.boundary_off, d.boundary_len, d.offsets_off, d.sources_off, d.probs_off, d.edges]
            {
                dir_buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        file.write_all(&dir_buf)?;
        let mut dang_buf = Vec::with_capacity(self.dangling.len() * 4);
        for &u in &self.dangling {
            dang_buf.extend_from_slice(&u.to_le_bytes());
        }
        file.write_all(&dang_buf)?;
        file.sync_all()?;
        drop(file);
        std::fs::rename(&tmp, &self.path)?;
        // Make the rename durable: fsync the parent directory so a crash
        // cannot resurrect a stale (or absent) shard file.
        if let Some(dir) = self.path.parent() {
            fsync_dir(dir)?;
        }
        for sp in &self.spill_paths {
            let _ = std::fs::remove_file(sp);
        }
        Ok(())
    }
}

/// Fsync a directory so a rename into it survives a crash — the second
/// half of the tmp-then-rename publish protocol.
fn fsync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

fn read_spill(path: &Path) -> io::Result<Vec<(u32, u32, f64)>> {
    let file = File::open(path)?;
    let len = file.metadata()?.len() as usize;
    assert_eq!(len % 16, 0, "corrupt spill file");
    let mut reader = BufReader::new(file);
    let mut records = Vec::with_capacity(len / 16);
    let mut buf = [0u8; 16];
    for _ in 0..len / 16 {
        reader.read_exact(&mut buf)?;
        records.push((
            u32::from_le_bytes(buf[0..4].try_into().unwrap()),
            u32::from_le_bytes(buf[4..8].try_into().unwrap()),
            f64::from_le_bytes(buf[8..16].try_into().unwrap()),
        ));
    }
    Ok(records)
}

/// An opened, validated shard file serving pull-CSR rows zero-copy.
pub struct MmapCsr {
    map: Mmap,
    n: usize,
    m: u64,
    shard_size: usize,
    dangling_off: usize,
    dangling_len: usize,
    tag: u64,
    dir: Vec<ShardMeta>,
}

impl MmapCsr {
    /// Open `path`, validating magic, header invariants, and — when
    /// `expected_tag` is given — the builder's generation stamp.
    pub fn open(path: &Path, expected_tag: Option<u64>) -> io::Result<MmapCsr> {
        let map = Mmap::map_file(path)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        if map.len() < HEADER_BYTES {
            return Err(bad("shard file shorter than header"));
        }
        if &map.bytes()[..8] != MAGIC {
            return Err(bad("bad shard file magic"));
        }
        let h = map.as_u64s(8, 7);
        let (n, m, shard_size, num_shards, dangling_off, dangling_len, tag) =
            (h[0], h[1], h[2], h[3], h[4], h[5], h[6]);
        if let Some(want) = expected_tag {
            if tag != want {
                return Err(bad("shard file generation tag mismatch (stale cache?)"));
            }
        }
        let n = usize::try_from(n).map_err(|_| bad("node count overflow"))?;
        let shard_size = usize::try_from(shard_size).map_err(|_| bad("shard size overflow"))?;
        if shard_size == 0 || num_shards != n.div_ceil(shard_size).max(1) as u64 {
            return Err(bad("inconsistent shard geometry"));
        }
        let num_shards = num_shards as usize;
        if map.len() < HEADER_BYTES + num_shards * DIR_FIELDS * 8 {
            return Err(bad("shard file shorter than directory"));
        }
        let mut dir = Vec::with_capacity(num_shards);
        let mut edges_total = 0u64;
        for s in 0..num_shards {
            let d = map.as_u64s(HEADER_BYTES + s * DIR_FIELDS * 8, DIR_FIELDS);
            let meta = ShardMeta {
                boundary_off: d[0],
                boundary_len: d[1],
                offsets_off: d[2],
                sources_off: d[3],
                probs_off: d[4],
                edges: d[5],
            };
            let shard_len = shard_size.min(n - (s * shard_size).min(n));
            let file_len = map.len() as u128;
            let fits = |off: u64, count: u64, size: u64| {
                off as u128 + count as u128 * size as u128 <= file_len
            };
            if !fits(meta.probs_off, meta.edges, 8)
                || !fits(meta.sources_off, meta.edges, 4)
                || !fits(meta.offsets_off, (shard_len + 1) as u64, 8)
                || !fits(meta.boundary_off, meta.boundary_len, 4)
            {
                return Err(bad("shard section out of bounds"));
            }
            edges_total += meta.edges;
            dir.push(meta);
        }
        if edges_total != m {
            return Err(bad("edge count disagrees with shard directory"));
        }
        if dangling_off as u128 + dangling_len as u128 * 4 > map.len() as u128 {
            return Err(bad("dangling list out of bounds"));
        }
        let dangling_len = usize::try_from(dangling_len).map_err(|_| bad("dangling overflow"))?;
        let dangling_off = usize::try_from(dangling_off).map_err(|_| bad("dangling overflow"))?;
        Ok(MmapCsr { map, n, m, shard_size, dangling_off, dangling_len, tag, dir })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of stored transition edges.
    pub fn num_edges(&self) -> u64 {
        self.m
    }

    /// Number of node shards.
    pub fn num_shards(&self) -> usize {
        self.dir.len()
    }

    /// Nodes per shard (the last shard may be shorter).
    pub fn shard_size(&self) -> usize {
        self.shard_size
    }

    /// The generation tag stamped at build time.
    pub fn tag(&self) -> u64 {
        self.tag
    }

    /// The ascending global ids of dangling nodes.
    pub fn dangling(&self) -> &[u32] {
        self.map.as_u32s(self.dangling_off, self.dangling_len)
    }

    /// Σ x[u] over dangling u, in ascending id order — the same
    /// summation as the dense operator's.
    pub fn dangling_mass(&self, x: &[f64]) -> f64 {
        self.dangling().iter().map(|&u| x[u as usize]).sum()
    }
}

impl CsrStore for MmapCsr {
    fn num_nodes(&self) -> usize {
        self.n
    }

    /// Shard-by-shard damped step with boundary-frontier exchange.
    ///
    /// Sequential regardless of `threads`: shard sweeps are IO-bound
    /// and the result is bitwise independent of parallelism anyway.
    fn apply_step(
        &self,
        x: &[f64],
        y: &mut [f64],
        damping: f64,
        jump: &JumpVector,
        _threads: usize,
    ) {
        assert_eq!(x.len(), self.n, "input vector length mismatch");
        assert_eq!(y.len(), self.n, "output vector length mismatch");
        let residual = damping * self.dangling_mass(x) + (1.0 - damping);
        let base = residual / self.n as f64;
        let jump_slice: Option<&[f64]> = match jump {
            JumpVector::Uniform => None,
            JumpVector::Weighted(w) => {
                assert_eq!(w.len(), self.n, "jump vector length mismatch");
                Some(w)
            }
        };
        let mut frontier: Vec<f64> = Vec::new();
        for (si, meta) in self.dir.iter().enumerate() {
            let start = si * self.shard_size;
            let shard_len = self.shard_size.min(self.n - start);
            let boundary = self.map.as_u32s(meta.boundary_off as usize, meta.boundary_len as usize);
            frontier.clear();
            frontier.extend(boundary.iter().map(|&u| x[u as usize]));
            let offsets = self.map.as_u64s(meta.offsets_off as usize, shard_len + 1);
            let sources = self.map.as_u32s(meta.sources_off as usize, meta.edges as usize);
            let probs = self.map.as_f64s(meta.probs_off as usize, meta.edges as usize);
            for v_local in 0..shard_len {
                let (lo, hi) = (offsets[v_local] as usize, offsets[v_local + 1] as usize);
                let mut acc = 0.0;
                for (c, p) in sources[lo..hi].iter().zip(&probs[lo..hi]) {
                    let code = *c as usize;
                    let xv =
                        if code < shard_len { x[start + code] } else { frontier[code - shard_len] };
                    acc += xv * p;
                }
                let v = start + v_local;
                let jp = match jump_slice {
                    None => base,
                    Some(w) => residual * w[v],
                };
                y[v] = damping * acc + jp;
            }
        }
    }
}

/// Build a shard file from an in-RAM [`CsrGraph`] — the conformance
/// bridge between the dense and out-of-core paths (the MAG-scale path
/// streams straight from the columnar store instead).
pub fn build_from_graph(
    g: &CsrGraph,
    path: &Path,
    shard_size: usize,
    tag: u64,
) -> io::Result<MmapCsr> {
    let mut b = MmapCsrBuilder::new(path, g.num_nodes() as usize, shard_size)?;
    let mut targets: Vec<u32> = Vec::new();
    for u in g.nodes() {
        targets.clear();
        targets.extend(g.out_neighbors(u).iter().map(|t| t.0));
        b.add_source(&targets, g.out_edge_weights(u))?;
    }
    b.finish(tag)?;
    MmapCsr::open(path, Some(tag))
}

#[cfg(all(test, not(miri)))]
mod tests {
    use super::*;
    use crate::stochastic::{PowerIterationOpts, RowStochastic};
    use crate::store::stationary_store;
    use crate::{GraphBuilder, NodeId};

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sgraph-scsr-{}-{}.scsr", std::process::id(), name));
        p
    }

    /// A small graph with dangling nodes, zero-weight edges, and skewed
    /// in-degrees, exercised at several shard sizes.
    fn test_graph() -> CsrGraph {
        let mut b = GraphBuilder::new(23).with_edge_capacity(64);
        let mut s = 17u64;
        for i in 0..60u64 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let u = ((s >> 33) % 23) as u32;
            let v = ((s >> 13) % 23) as u32;
            if u == v {
                continue;
            }
            let w = if i % 9 == 0 { 0.0 } else { 0.25 + (i % 7) as f64 };
            b.add_edge(NodeId(u), NodeId(v), w);
        }
        b.build()
    }

    #[test]
    fn bit_identical_to_dense_at_every_shard_size() {
        let g = test_graph();
        let op = RowStochastic::new(&g);
        for (i, shard_size) in [1usize, 4, 7, 23, 1000].into_iter().enumerate() {
            let path = tmp(&format!("bits{i}"));
            let mc = build_from_graph(&g, &path, shard_size, 42).unwrap();
            assert_eq!(mc.num_nodes(), g.num_nodes() as usize);
            for opts in [
                PowerIterationOpts::default(),
                PowerIterationOpts {
                    jump: crate::JumpVector::weighted(
                        (0..23).map(|v| 1.0 + (v % 5) as f64).collect(),
                    ),
                    damping: 0.7,
                    ..PowerIterationOpts::default()
                },
            ] {
                let dense = op.stationary(&opts);
                let sharded = stationary_store(&mc, &opts);
                assert_eq!(dense.scores, sharded.scores, "scores must be bit-identical");
                assert_eq!(dense.iterations, sharded.iterations);
                assert_eq!(dense.residuals, sharded.residuals);
            }
            assert_eq!(
                mc.dangling(),
                op.dangling(),
                "dangling sets must agree (shard_size {shard_size})"
            );
            std::fs::remove_file(&path).unwrap();
        }
    }

    #[test]
    fn warm_start_matches_dense() {
        let g = test_graph();
        let op = RowStochastic::new(&g);
        let path = tmp("warm");
        let mc = build_from_graph(&g, &path, 5, 1).unwrap();
        let opts = PowerIterationOpts {
            warm_start: Some((0..23).map(|v| 1.0 + v as f64).collect()),
            ..PowerIterationOpts::default()
        };
        let dense = op.stationary(&opts);
        let sharded = stationary_store(&mc, &opts);
        assert_eq!(dense.scores, sharded.scores);
        assert_eq!(dense.iterations, sharded.iterations);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tag_mismatch_rejected() {
        let g = test_graph();
        let path = tmp("tag");
        build_from_graph(&g, &path, 8, 7).unwrap();
        let err = match MmapCsr::open(&path, Some(8)) {
            Err(e) => e,
            Ok(_) => panic!("stale tag must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(MmapCsr::open(&path, Some(7)).is_ok());
        assert!(MmapCsr::open(&path, None).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_rejected() {
        let g = test_graph();
        let path = tmp("trunc");
        build_from_graph(&g, &path, 8, 7).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(MmapCsr::open(&path, None).is_err());
        std::fs::write(&path, &bytes[..40]).unwrap();
        assert!(MmapCsr::open(&path, None).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let path = tmp("empty");
        let b = MmapCsrBuilder::new(&path, 0, 16).unwrap();
        b.finish(0).unwrap();
        let mc = MmapCsr::open(&path, Some(0)).unwrap();
        assert_eq!(mc.num_nodes(), 0);
        assert_eq!(mc.num_edges(), 0);
        let res = stationary_store(&mc, &PowerIterationOpts::default());
        assert!(res.converged);
        assert!(res.scores.is_empty());
        std::fs::remove_file(&path).unwrap();
    }
}
