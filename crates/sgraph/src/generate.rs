//! Random-graph generators for benchmarking and testing the substrate.
//!
//! Two standard models, both deterministic per seed:
//!
//! * [`gnm_random`] — Erdős–Rényi G(n, m): `m` edges drawn uniformly.
//! * [`preferential_attachment`] — Barabási–Albert-style: nodes arrive one
//!   at a time and attach `m` out-edges to earlier nodes with probability
//!   proportional to in-degree + 1, producing the power-law in-degree of
//!   citation graphs.
//!
//! (Corpus-level generation with years, venues, authors, and merit lives
//! in `scholar-corpus::generator`; these are bare graphs for kernels.)

use crate::csr::{CsrGraph, NodeId};
use crate::GraphBuilder;

/// xorshift-based deterministic RNG (no external dependency in this crate).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        // Avoid the all-zero fixed point.
        Rng(seed ^ 0x9e3779b97f4a7c15)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Erdős–Rényi G(n, m): exactly `m` staged edges drawn uniformly with
/// replacement (duplicates merge, so the final edge count can be slightly
/// lower). Weights are 1.
pub fn gnm_random(n: u32, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0, "need at least one node");
    let mut rng = Rng::new(seed);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    for _ in 0..m {
        let s = rng.below(n as u64) as u32;
        let d = rng.below(n as u64) as u32;
        b.add_unweighted(NodeId(s), NodeId(d));
    }
    b.build()
}

/// Preferential attachment: node `v` (for `v >= 1`) draws
/// `min(m_per_node, v)` distinct targets among `0..v` with probability
/// ∝ in-degree + 1, giving a heavy-tailed in-degree distribution.
pub fn preferential_attachment(n: u32, m_per_node: usize, seed: u64) -> CsrGraph {
    assert!(n > 0, "need at least one node");
    let mut rng = Rng::new(seed);
    let mut b = GraphBuilder::new(n);
    // repeated-nodes list: node i appears indeg(i)+1 times (approximately;
    // we append one entry per received edge plus one base entry).
    let mut urn: Vec<u32> = vec![0];
    for v in 1..n {
        let want = m_per_node.min(v as usize);
        let mut picked: Vec<u32> = Vec::with_capacity(want);
        let mut guard = 0;
        while picked.len() < want && guard < want * 20 + 20 {
            guard += 1;
            let t = urn[(rng.unit() * urn.len() as f64) as usize % urn.len()];
            if !picked.contains(&t) {
                picked.push(t);
            }
        }
        for &t in &picked {
            b.add_unweighted(NodeId(v), NodeId(t));
            urn.push(t);
        }
        urn.push(v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn gnm_shape_and_determinism() {
        let g = gnm_random(1000, 5000, 7);
        assert_eq!(g.num_nodes(), 1000);
        // Duplicates merge; expect close to m.
        assert!(g.num_edges() > 4900 && g.num_edges() <= 5000);
        assert_eq!(g, gnm_random(1000, 5000, 7));
        assert_ne!(g, gnm_random(1000, 5000, 8));
        g.validate().unwrap();
    }

    #[test]
    fn gnm_degrees_are_homogeneous() {
        let g = gnm_random(2000, 20_000, 3);
        let s = stats::in_degree_stats(&g);
        // Poisson-ish: gini well below a power-law graph's.
        assert!(s.gini < 0.4, "ER gini should be small, got {}", s.gini);
    }

    #[test]
    fn preferential_attachment_is_heavy_tailed() {
        let g = preferential_attachment(3000, 4, 5);
        g.validate().unwrap();
        let s = stats::in_degree_stats(&g);
        assert!(s.gini > 0.5, "PA gini should be large, got {}", s.gini);
        assert!(s.max > 50, "expect a hub, max in-degree {}", s.max);
        // Every non-root node has out-degree min(m, v).
        assert_eq!(g.out_degree(NodeId(0)), 0);
        assert_eq!(g.out_degree(NodeId(1)), 1);
        assert_eq!(g.out_degree(NodeId(10)), 4);
    }

    #[test]
    fn preferential_attachment_is_a_dag() {
        // Edges always point to earlier nodes.
        let g = preferential_attachment(500, 3, 11);
        assert!(!crate::traversal::is_cyclic(&g));
    }

    #[test]
    fn tail_exponent_is_power_law_like() {
        let g = preferential_attachment(20_000, 5, 13);
        let alpha = stats::in_degree_power_law_alpha(&g, 10).expect("tail big enough");
        // BA-style attachment gives alpha ~ 2-3.5.
        assert!((1.8..4.0).contains(&alpha), "alpha = {alpha}");
    }

    #[test]
    fn tiny_graphs() {
        let g = gnm_random(1, 10, 1);
        assert_eq!(g.num_nodes(), 1);
        let p = preferential_attachment(1, 3, 1);
        assert_eq!(p.num_edges(), 0);
        let p2 = preferential_attachment(2, 3, 1);
        assert_eq!(p2.num_edges(), 1);
    }
}
