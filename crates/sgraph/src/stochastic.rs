//! The row-stochastic random-walk operator.
//!
//! Every PageRank-family algorithm in this stack is a fixpoint of
//!
//! ```text
//! y = d · Pᵀ x  +  (d · dangling_mass(x) + (1 − d)) · j
//! ```
//!
//! where `P` is the row-stochastic transition matrix derived from the edge
//! weights, `j` is the jump (teleportation) distribution, and dangling
//! nodes (no out-edges, or all-zero out-weights) re-emit their mass through
//! `j`. This module precomputes the pull-style (in-edge, gather) form of
//! `Pᵀ` once and applies it sequentially or across threads.
//!
//! The operator conserves probability mass exactly up to floating-point
//! rounding: if `Σx = 1` then `Σy = 1`.

use crate::csr::{CsrGraph, NodeId};
use crate::par;

/// A teleportation distribution over nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum JumpVector {
    /// Uniform over all nodes.
    Uniform,
    /// An arbitrary non-negative vector; normalized to sum 1 on
    /// construction via [`JumpVector::weighted`].
    Weighted(Vec<f64>),
}

impl JumpVector {
    /// A weighted jump vector; weights must be non-negative and finite
    /// with a positive sum (they are normalized here).
    ///
    /// # Panics
    /// Panics if any weight is negative/non-finite or if all are zero.
    pub fn weighted(mut weights: Vec<f64>) -> Self {
        let mut sum = 0.0;
        for &w in &weights {
            assert!(w.is_finite() && w >= 0.0, "jump weight must be finite and >= 0, got {w}");
            sum += w;
        }
        assert!(sum > 0.0, "jump vector must have positive total mass");
        for w in &mut weights {
            *w /= sum;
        }
        JumpVector::Weighted(weights)
    }

    /// Probability assigned to node `v` given `n` total nodes.
    #[inline]
    pub fn prob(&self, v: NodeId, n: usize) -> f64 {
        match self {
            JumpVector::Uniform => 1.0 / n as f64,
            JumpVector::Weighted(w) => w[v.index()],
        }
    }

    /// Materialize as a dense vector of length `n`.
    pub fn to_dense(&self, n: usize) -> Vec<f64> {
        match self {
            JumpVector::Uniform => vec![1.0 / n as f64; n],
            JumpVector::Weighted(w) => {
                assert_eq!(w.len(), n, "jump vector length mismatch");
                w.clone()
            }
        }
    }
}

/// Precomputed pull-form transition structure for a graph.
#[derive(Debug, Clone)]
pub struct RowStochastic {
    n: usize,
    /// in-CSR offsets (length n+1).
    in_offsets: Vec<usize>,
    /// in-CSR sources.
    in_sources: Vec<u32>,
    /// Normalized transition probability of each in-edge:
    /// `p[u → v] = w(u,v) / Σ_t w(u,t)`.
    in_probs: Vec<f64>,
    /// Nodes with zero out-weight (dangling).
    dangling: Vec<u32>,
}

impl RowStochastic {
    /// Build the operator from a weighted graph. O(V + E).
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.len();
        // Out-weight sums per node.
        let mut out_sum = vec![0.0f64; n];
        for u in g.nodes() {
            out_sum[u.index()] = g.out_weight_sum(u);
        }
        let dangling: Vec<u32> = (0..n as u32).filter(|&u| out_sum[u as usize] <= 0.0).collect();

        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(g.num_edges());
        let mut in_probs = Vec::with_capacity(g.num_edges());
        in_offsets.push(0);
        for v in g.nodes() {
            for (&u, &w) in g.in_neighbors(v).iter().zip(g.in_edge_weights(v)) {
                let s = out_sum[u.index()];
                if s > 0.0 && w > 0.0 {
                    in_sources.push(u.0);
                    in_probs.push(w / s);
                }
            }
            in_offsets.push(in_sources.len());
        }
        RowStochastic { n, in_offsets, in_sources, in_probs, dangling }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// The dangling node ids (no outgoing probability).
    pub fn dangling(&self) -> &[u32] {
        &self.dangling
    }

    /// Total probability mass currently sitting on dangling nodes.
    #[inline]
    pub fn dangling_mass(&self, x: &[f64]) -> f64 {
        self.dangling.iter().map(|&u| x[u as usize]).sum()
    }

    #[inline(always)]
    fn gather(&self, v: usize, x: &[f64]) -> f64 {
        let r = self.in_offsets[v]..self.in_offsets[v + 1];
        let mut acc = 0.0;
        for (s, p) in self.in_sources[r.clone()].iter().zip(&self.in_probs[r]) {
            acc += x[*s as usize] * p;
        }
        acc
    }

    /// One damped power-iteration step, sequential.
    ///
    /// `y` must have length `num_nodes`. `x` should sum to 1 for the
    /// probabilistic interpretation to hold (not enforced).
    pub fn apply(&self, x: &[f64], y: &mut [f64], damping: f64, jump: &JumpVector) {
        assert_eq!(x.len(), self.n, "input vector length mismatch");
        assert_eq!(y.len(), self.n, "output vector length mismatch");
        let residual = damping * self.dangling_mass(x) + (1.0 - damping);
        match jump {
            JumpVector::Uniform => {
                let base = residual / self.n as f64;
                for (v, slot) in y.iter_mut().enumerate() {
                    *slot = damping * self.gather(v, x) + base;
                }
            }
            JumpVector::Weighted(w) => {
                assert_eq!(w.len(), self.n, "jump vector length mismatch");
                for (v, slot) in y.iter_mut().enumerate() {
                    *slot = damping * self.gather(v, x) + residual * w[v];
                }
            }
        }
    }

    /// One damped power-iteration step across `threads` workers. Work is
    /// balanced by in-edge count so power-law hubs don't serialize.
    pub fn apply_parallel(
        &self,
        x: &[f64],
        y: &mut [f64],
        damping: f64,
        jump: &JumpVector,
        threads: usize,
    ) {
        if threads <= 1 || self.n < 4096 {
            return self.apply(x, y, damping, jump);
        }
        assert_eq!(x.len(), self.n, "input vector length mismatch");
        assert_eq!(y.len(), self.n, "output vector length mismatch");
        let residual = damping * self.dangling_mass(x) + (1.0 - damping);
        let ranges = par::balanced_ranges(&self.in_offsets, threads);
        let dense_jump;
        let jump_slice: Option<&[f64]> = match jump {
            JumpVector::Uniform => None,
            JumpVector::Weighted(w) => {
                assert_eq!(w.len(), self.n, "jump vector length mismatch");
                dense_jump = w;
                Some(dense_jump)
            }
        };
        let base = residual / self.n as f64;
        par::for_each_range_mut(y, &ranges, |range, chunk| {
            for (v, slot) in range.clone().zip(chunk.iter_mut()) {
                let jp = match jump_slice {
                    None => base,
                    Some(w) => residual * w[v],
                };
                *slot = damping * self.gather(v, x) + jp;
            }
        });
    }

    /// Run damped power iteration to a fixpoint.
    ///
    /// Starts from `jump` (or a caller-provided warm start), iterates until
    /// the L1 residual drops below `tol` or `max_iter` steps elapse, and
    /// returns the final vector plus per-iteration residual history.
    pub fn stationary(&self, opts: &PowerIterationOpts) -> PowerIterationResult {
        crate::store::stationary_store(self, opts)
    }
}

/// Options for [`RowStochastic::stationary`].
#[derive(Debug, Clone)]
pub struct PowerIterationOpts {
    /// Damping factor `d` ∈ [0, 1); the canonical PageRank value is 0.85.
    pub damping: f64,
    /// Teleportation distribution.
    pub jump: JumpVector,
    /// L1 convergence tolerance.
    pub tol: f64,
    /// Iteration cap.
    pub max_iter: usize,
    /// Worker threads (1 = sequential). Defaults to
    /// [`crate::par::default_threads`]; set `SCHOLAR_THREADS=1` (or pass
    /// 1 explicitly) to force sequential execution.
    pub threads: usize,
    /// Optional warm start (normalized internally).
    pub warm_start: Option<Vec<f64>>,
}

impl Default for PowerIterationOpts {
    fn default() -> Self {
        PowerIterationOpts {
            damping: 0.85,
            jump: JumpVector::Uniform,
            tol: 1e-10,
            max_iter: 200,
            threads: crate::par::default_threads(),
            warm_start: None,
        }
    }
}

/// Result of [`RowStochastic::stationary`].
#[derive(Debug, Clone)]
pub struct PowerIterationResult {
    /// The stationary (or last-iterate) distribution; sums to 1.
    pub scores: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Whether `tol` was reached before `max_iter`.
    pub converged: bool,
    /// L1 residual after each iteration.
    pub residuals: Vec<f64>,
}

/// Run a generic fixpoint iteration with ping-pong buffers.
///
/// `step(x, y)` must write the next iterate into `y` given the current
/// iterate `x` (both of length `x0.len()`). The driver alternates two
/// preallocated buffers — no per-iteration allocation — records the L1
/// residual after every step, and stops once it drops below `tol` or
/// `max_iter` steps elapse. This generalizes
/// [`RowStochastic::stationary`] to fixpoints that are not plain damped
/// walks (mutual-reinforcement schemes, multi-term blends, packed
/// two-vector systems), so every iterative ranker can share one driver
/// and one diagnostics shape.
pub fn fixpoint(
    x0: Vec<f64>,
    tol: f64,
    max_iter: usize,
    mut step: impl FnMut(&[f64], &mut [f64]),
) -> PowerIterationResult {
    let n = x0.len();
    if n == 0 {
        return PowerIterationResult {
            scores: Vec::new(),
            iterations: 0,
            converged: true,
            residuals: Vec::new(),
        };
    }
    let mut x = x0;
    let mut y = vec![0.0; n];
    let mut residuals = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    while iterations < max_iter {
        step(&x, &mut y);
        iterations += 1;
        let r = l1_distance(&x, &y);
        residuals.push(r);
        std::mem::swap(&mut x, &mut y);
        if r < tol {
            converged = true;
            break;
        }
    }
    PowerIterationResult { scores: x, iterations, converged, residuals }
}

/// L1 distance between two equal-length vectors.
pub fn l1_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// `out = mu·a + (1-mu)·b`, renormalized to sum 1 (inputs are
/// distributions). In-place counterpart of the convex-blend-then-normalize
/// step used by mutual-reinforcement fixpoints, so a solve loop can reuse
/// one buffer instead of allocating per iteration.
pub fn blend_into(a: &[f64], b: &[f64], mu: f64, out: &mut [f64]) {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), out.len());
    for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *slot = mu * x + (1.0 - mu) * y;
    }
    normalize_l1(out);
}

/// Normalize `v` to sum 1 in place. No-op when the sum is not positive.
pub fn normalize_l1(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        for e in v {
            *e /= s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} != {b} (eps {eps})");
    }

    fn cycle3() -> CsrGraph {
        GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)])
    }

    #[test]
    fn uniform_stationary_on_cycle() {
        let op = RowStochastic::new(&cycle3());
        let res = op.stationary(&PowerIterationOpts::default());
        assert!(res.converged);
        for &s in &res.scores {
            assert_close(s, 1.0 / 3.0, 1e-9);
        }
    }

    #[test]
    fn mass_is_conserved_per_step() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (3, 1)]); // 2,4 dangling
        let op = RowStochastic::new(&g);
        let x = vec![0.2; 5];
        let mut y = vec![0.0; 5];
        op.apply(&x, &mut y, 0.85, &JumpVector::Uniform);
        assert_close(y.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    fn dangling_nodes_detected() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2)]);
        let op = RowStochastic::new(&g);
        assert_eq!(op.dangling(), &[2, 3]);
        assert_close(op.dangling_mass(&[0.1, 0.2, 0.3, 0.4]), 0.7, 1e-12);
    }

    #[test]
    fn zero_weight_out_edges_mean_dangling() {
        let g = GraphBuilder::from_weighted_edges(2, &[(0, 1, 0.0)]);
        let op = RowStochastic::new(&g);
        assert_eq!(op.dangling(), &[0, 1]);
    }

    #[test]
    fn weighted_edges_split_proportionally() {
        // 0 -> 1 with weight 3, 0 -> 2 with weight 1: stationary mass of 1
        // should be ~3x that of 2 contributed from 0's push.
        let g = GraphBuilder::from_weighted_edges(3, &[(0, 1, 3.0), (0, 2, 1.0)]);
        let op = RowStochastic::new(&g);
        let x = vec![1.0, 0.0, 0.0];
        let mut y = vec![0.0; 3];
        op.apply(&x, &mut y, 1.0, &JumpVector::Uniform);
        assert_close(y[1], 0.75, 1e-12);
        assert_close(y[2], 0.25, 1e-12);
    }

    #[test]
    fn damping_zero_returns_jump() {
        let g = cycle3();
        let op = RowStochastic::new(&g);
        let jump = JumpVector::weighted(vec![1.0, 0.0, 1.0]);
        let x = vec![1.0 / 3.0; 3];
        let mut y = vec![0.0; 3];
        op.apply(&x, &mut y, 0.0, &jump);
        assert_close(y[0], 0.5, 1e-12);
        assert_close(y[1], 0.0, 1e-12);
        assert_close(y[2], 0.5, 1e-12);
    }

    #[test]
    fn weighted_jump_normalizes() {
        let j = JumpVector::weighted(vec![2.0, 2.0, 4.0]);
        assert_close(j.prob(NodeId(2), 3), 0.5, 1e-12);
        let dense = j.to_dense(3);
        assert_close(dense.iter().sum::<f64>(), 1.0, 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive total mass")]
    fn all_zero_jump_panics() {
        let _ = JumpVector::weighted(vec![0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_jump_panics() {
        let _ = JumpVector::weighted(vec![f64::NAN]);
    }

    #[test]
    fn parallel_matches_sequential() {
        // Random-ish graph, big enough to cross the parallel threshold.
        let n = 5000u32;
        let mut edges = Vec::new();
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..30_000 {
            let s = next() % n;
            let d = next() % n;
            let w = 1.0 + (next() % 10) as f64;
            edges.push((s, d, w));
        }
        let g = GraphBuilder::from_weighted_edges(n, &edges);
        let op = RowStochastic::new(&g);
        let x: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = {
            let mut v = x;
            normalize_l1(&mut v);
            v
        };
        let mut y_seq = vec![0.0; n as usize];
        let mut y_par = vec![0.0; n as usize];
        op.apply(&x, &mut y_seq, 0.85, &JumpVector::Uniform);
        op.apply_parallel(&x, &mut y_par, 0.85, &JumpVector::Uniform, 4);
        for (a, b) in y_seq.iter().zip(&y_par) {
            assert_close(*a, *b, 1e-14);
        }
    }

    #[test]
    fn stationary_sums_to_one_with_dangling() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 3), (4, 0)]);
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts::default());
        assert!(res.converged);
        assert_close(res.scores.iter().sum::<f64>(), 1.0, 1e-9);
        assert!(res.iterations > 0);
        assert_eq!(res.residuals.len(), res.iterations);
    }

    #[test]
    fn residuals_decrease_monotonically_ish() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)]);
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts::default());
        // Power iteration on a damped chain must contract overall.
        assert!(res.residuals.last().unwrap() < &res.residuals[0]);
    }

    #[test]
    fn warm_start_converges_faster() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 0), (0, 4)]);
        let op = RowStochastic::new(&g);
        let cold = op.stationary(&PowerIterationOpts::default());
        let warm = op.stationary(&PowerIterationOpts {
            warm_start: Some(cold.scores.clone()),
            ..Default::default()
        });
        assert!(warm.iterations <= 2, "warm start from the answer should converge immediately");
        for (a, b) in cold.scores.iter().zip(&warm.scores) {
            assert_close(*a, *b, 1e-8);
        }
    }

    #[test]
    fn max_iter_reached_reports_not_converged() {
        let g = cycle3();
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts {
            tol: 0.0, // unattainable
            max_iter: 5,
            ..Default::default()
        });
        assert!(!res.converged);
        assert_eq!(res.iterations, 5);
    }

    #[test]
    fn empty_graph_stationary() {
        let g = CsrGraph::empty(0);
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts::default());
        assert!(res.converged);
        assert!(res.scores.is_empty());
    }

    #[test]
    fn single_node_absorbs_everything() {
        let g = CsrGraph::empty(1);
        let op = RowStochastic::new(&g);
        let res = op.stationary(&PowerIterationOpts::default());
        assert_close(res.scores[0], 1.0, 1e-12);
    }

    #[test]
    fn l1_helpers() {
        assert_close(l1_distance(&[1.0, 2.0], &[0.5, 1.0]), 1.5, 1e-12);
        let mut v = vec![1.0, 3.0];
        normalize_l1(&mut v);
        assert_close(v[0], 0.25, 1e-12);
        let mut z = vec![0.0, 0.0];
        normalize_l1(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn blend_into_matches_convex_combination() {
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        let mut out = vec![f64::MAX; 2];
        blend_into(&a, &b, 1.0, &mut out);
        assert_eq!(out, a);
        blend_into(&a, &b, 0.0, &mut out);
        assert_eq!(out, b);
        blend_into(&a, &b, 0.5, &mut out);
        assert_close(out[0], 0.5, 1e-12);
        // Unnormalized inputs are renormalized to sum 1.
        blend_into(&[2.0, 2.0], &[0.0, 4.0], 0.5, &mut out);
        assert_close(out.iter().sum::<f64>(), 1.0, 1e-12);
        assert_close(out[0], 0.25, 1e-12);
    }

    #[test]
    fn fixpoint_driver_matches_stationary() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (4, 0), (0, 5)]);
        let op = RowStochastic::new(&g);
        let opts = PowerIterationOpts::default();
        let direct = op.stationary(&opts);
        let generic = fixpoint(opts.jump.to_dense(6), opts.tol, opts.max_iter, |x, y| {
            op.apply(x, y, opts.damping, &opts.jump)
        });
        assert!(generic.converged);
        assert_eq!(generic.iterations, direct.iterations);
        assert!(l1_distance(&generic.scores, &direct.scores) < 1e-14);
    }

    #[test]
    fn fixpoint_driver_respects_max_iter() {
        let res = fixpoint(vec![1.0, 0.0], 0.0, 7, |x, y| {
            y[0] = x[1];
            y[1] = x[0];
        });
        assert!(!res.converged);
        assert_eq!(res.iterations, 7);
        assert_eq!(res.residuals.len(), 7);
    }

    #[test]
    fn fixpoint_driver_empty_input() {
        let res = fixpoint(Vec::new(), 1e-10, 10, |_, _| {});
        assert!(res.converged);
        assert!(res.scores.is_empty());
    }

    #[test]
    fn personalized_jump_concentrates_mass() {
        // Star: 1..=4 all point at 0; jump only at node 0.
        let g = GraphBuilder::from_edges(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let op = RowStochastic::new(&g);
        let mut w = vec![0.0; 5];
        w[0] = 1.0;
        let res = op.stationary(&PowerIterationOpts {
            jump: JumpVector::weighted(w),
            ..Default::default()
        });
        assert!(res.scores[0] > 0.5, "personalization target should dominate");
        for i in 1..5 {
            assert!(res.scores[i] < res.scores[0]);
        }
    }
}
