//! Breadth-first / depth-first traversal and topological ordering.

use crate::csr::{CsrGraph, NodeId};
use crate::{GraphError, Result};
use std::collections::VecDeque;

/// Nodes reachable from `start` by following out-edges, in BFS order
/// (including `start` itself).
pub fn bfs_order(g: &CsrGraph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    visited[start.index()] = true;
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.out_neighbors(u) {
            if !visited[v.index()] {
                visited[v.index()] = true;
                queue.push_back(v);
            }
        }
    }
    order
}

/// BFS distance (in hops) from `start` to every node; `None` if unreachable.
pub fn bfs_distances(g: &CsrGraph, start: NodeId) -> Vec<Option<u32>> {
    let mut dist = vec![None; g.len()];
    let mut queue = VecDeque::new();
    dist[start.index()] = Some(0);
    queue.push_back(start);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()].unwrap();
        for &v in g.out_neighbors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Nodes reachable from `start`, in iterative depth-first preorder.
pub fn dfs_preorder(g: &CsrGraph, start: NodeId) -> Vec<NodeId> {
    let mut visited = vec![false; g.len()];
    let mut order = Vec::new();
    let mut stack = vec![start];
    while let Some(u) = stack.pop() {
        if visited[u.index()] {
            continue;
        }
        visited[u.index()] = true;
        order.push(u);
        // Push in reverse so smaller neighbor ids are visited first.
        for &v in g.out_neighbors(u).iter().rev() {
            if !visited[v.index()] {
                stack.push(v);
            }
        }
    }
    order
}

/// Kahn's algorithm. Returns a topological order of *all* nodes, or
/// [`GraphError::CycleDetected`] if the graph has a directed cycle.
///
/// Citation graphs are "almost" DAGs (cycles only arise from same-year
/// mutual citations), so this doubles as a cheap cycle detector.
pub fn topological_order(g: &CsrGraph) -> Result<Vec<NodeId>> {
    let n = g.len();
    let mut indeg: Vec<usize> = (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
    let mut queue: VecDeque<NodeId> = g.nodes().filter(|u| indeg[u.index()] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(u) = queue.pop_front() {
        order.push(u);
        for &v in g.out_neighbors(u) {
            indeg[v.index()] -= 1;
            if indeg[v.index()] == 0 {
                queue.push_back(v);
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(GraphError::CycleDetected)
    }
}

/// `true` if the graph contains at least one directed cycle.
pub fn is_cyclic(g: &CsrGraph) -> bool {
    topological_order(g).is_err()
}

/// Number of nodes reachable from `start` (including `start`).
pub fn reachable_count(g: &CsrGraph, start: NodeId) -> usize {
    bfs_order(g, start).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn chain(n: u32) -> CsrGraph {
        let edges: Vec<(u32, u32)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        GraphBuilder::from_edges(n, &edges)
    }

    #[test]
    fn bfs_on_chain_visits_in_order() {
        let g = chain(5);
        let order = bfs_order(&g, NodeId(0));
        assert_eq!(order, (0..5).map(NodeId).collect::<Vec<_>>());
        assert_eq!(bfs_order(&g, NodeId(3)), vec![NodeId(3), NodeId(4)]);
    }

    #[test]
    fn bfs_distances_on_diamond() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(1), Some(2)]);
        let d3 = bfs_distances(&g, NodeId(3));
        assert_eq!(d3, vec![None, None, None, Some(0)]);
    }

    #[test]
    fn dfs_preorder_follows_smallest_first() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (0, 3), (1, 2), (3, 4)]);
        let order = dfs_preorder(&g, NodeId(0));
        assert_eq!(order, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn dfs_handles_cycles_without_looping() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let order = dfs_preorder(&g, NodeId(0));
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn topo_order_on_dag() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let order = topological_order(&g).unwrap();
        let pos: Vec<usize> =
            (0..4).map(|i| order.iter().position(|&x| x.0 == i).unwrap()).collect();
        for e in g.edges() {
            assert!(pos[e.src.index()] < pos[e.dst.index()]);
        }
    }

    #[test]
    fn topo_order_detects_cycle() {
        let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(matches!(topological_order(&g), Err(GraphError::CycleDetected)));
        assert!(is_cyclic(&g));
        assert!(!is_cyclic(&chain(4)));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let g = GraphBuilder::from_edges(2, &[(0, 0), (0, 1)]);
        assert!(is_cyclic(&g));
    }

    #[test]
    fn reachable_count_works() {
        let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(reachable_count(&g, NodeId(0)), 3);
        assert_eq!(reachable_count(&g, NodeId(3)), 2);
        assert_eq!(reachable_count(&g, NodeId(4)), 1);
    }
}
