//! Weakly connected components via union-find.

use crate::csr::{CsrGraph, NodeId};

/// A classic disjoint-set forest with path halving and union by size.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    num_sets: u32,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: u32) -> Self {
        UnionFind { parent: (0..n).collect(), size: vec![1; n as usize], num_sets: n }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        let mut x = x;
        while self.parent[x as usize] != x {
            // Path halving.
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    /// Merge the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra as usize] < self.size[rb as usize] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb as usize] = ra;
        self.size[ra as usize] += self.size[rb as usize];
        self.num_sets -= 1;
        true
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> u32 {
        self.num_sets
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

/// The weakly-connected-component decomposition (edge direction ignored).
#[derive(Debug, Clone)]
pub struct WccResult {
    /// `component[v]` is the WCC index of node `v` (components numbered
    /// by first-seen node, densely from 0).
    pub component: Vec<u32>,
    /// Number of WCCs.
    pub num_components: u32,
}

impl WccResult {
    /// Sizes of each component.
    pub fn component_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_components as usize];
        for &c in &self.component {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// Size of the largest WCC (0 for empty graph).
    pub fn largest_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// Fraction of nodes in the largest WCC (`NaN` for empty graph).
    pub fn largest_fraction(&self) -> f64 {
        self.largest_size() as f64 / self.component.len() as f64
    }
}

/// Weakly connected components of `g`.
pub fn weakly_connected_components(g: &CsrGraph) -> WccResult {
    let n = g.num_nodes();
    let mut uf = UnionFind::new(n);
    for e in g.edges() {
        uf.union(e.src.0, e.dst.0);
    }
    // Densify labels by first appearance.
    let mut label = vec![u32::MAX; n as usize];
    let mut next = 0u32;
    let mut component = vec![0u32; n as usize];
    for v in 0..n {
        let r = uf.find(v);
        if label[r as usize] == u32::MAX {
            label[r as usize] = next;
            next += 1;
        }
        component[v as usize] = label[r as usize];
    }
    WccResult { component, num_components: next }
}

/// Nodes of the largest weakly connected component.
pub fn largest_wcc_nodes(g: &CsrGraph) -> Vec<NodeId> {
    let wcc = weakly_connected_components(g);
    if g.is_empty() {
        return Vec::new();
    }
    let sizes = wcc.component_sizes();
    let best = sizes.iter().enumerate().max_by_key(|&(_, s)| *s).map(|(i, _)| i as u32).unwrap();
    g.nodes().filter(|v| wcc.component[v.index()] == best).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.num_sets(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2));
        assert_eq!(uf.num_sets(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(2), 3);
        assert_eq!(uf.set_size(4), 1);
    }

    #[test]
    fn direction_is_ignored() {
        // 0 -> 1, 2 -> 1: all weakly connected.
        let g = GraphBuilder::from_edges(3, &[(0, 1), (2, 1)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 1);
        assert_eq!(wcc.largest_size(), 3);
        assert!((wcc.largest_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn separate_islands() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (2, 3)]);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 4); // {0,1}, {2,3}, {4}, {5}
        assert_eq!(wcc.largest_size(), 2);
    }

    #[test]
    fn labels_are_dense_and_stable() {
        let g = GraphBuilder::from_edges(4, &[(2, 3)]);
        let wcc = weakly_connected_components(&g);
        // First-seen order: node0 -> 0, node1 -> 1, nodes 2,3 -> 2.
        assert_eq!(wcc.component, vec![0, 1, 2, 2]);
    }

    #[test]
    fn largest_wcc_node_extraction() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (4, 5)]);
        let nodes = largest_wcc_nodes(&g);
        assert_eq!(nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_graph() {
        let g = crate::CsrGraph::empty(0);
        let wcc = weakly_connected_components(&g);
        assert_eq!(wcc.num_components, 0);
        assert_eq!(wcc.largest_size(), 0);
        assert!(largest_wcc_nodes(&g).is_empty());
    }
}
