//! Property-based tests for the sgraph substrate.
//!
//! Each property is checked against a battery of deterministic random
//! graphs drawn from a seeded generator (no external fuzzing framework:
//! the cases are reproducible by seed, and a failing seed is printed in
//! the panic message via the `for_cases` helper).

use sgraph::stochastic::{l1_distance, normalize_l1, PowerIterationOpts};
use sgraph::{GraphBuilder, JumpVector, NodeId, RowStochastic};
use srand::{rngs::SmallRng, Rng, SeedableRng};

const CASES: u64 = 48;

/// A random directed graph as (num_nodes, edge list), matching the old
/// proptest strategy: 2..60 nodes, 0..200 weighted edges in (0.01, 10).
fn random_case(seed: u64) -> (u32, Vec<(u32, u32, f64)>) {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15) ^ 0xc0ffee);
    let n = rng.gen_range(2u32..60);
    let m = rng.gen_range(0usize..200);
    let edges = (0..m)
        .map(|_| (rng.gen_range(0u32..n), rng.gen_range(0u32..n), rng.gen_range(0.01f64..10.0)))
        .collect();
    (n, edges)
}

/// Run `body` over the full case battery, labelling failures by seed.
fn for_cases(body: impl Fn(u32, &[(u32, u32, f64)], &mut SmallRng)) {
    for seed in 0..CASES {
        let (n, edges) = random_case(seed);
        let mut aux = SmallRng::seed_from_u64(seed ^ 0xabcd_1234);
        let res =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(n, &edges, &mut aux)));
        if let Err(e) = res {
            eprintln!("property failed for seed {seed} (n={n}, m={})", edges.len());
            std::panic::resume_unwind(e);
        }
    }
}

#[test]
fn build_never_panics_and_validates() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        assert!(g.validate().is_ok());
        assert!(g.num_edges() <= edges.len());
    });
}

#[test]
fn out_and_in_edge_counts_agree() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let out_total: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_total: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        assert_eq!(out_total, g.num_edges());
        assert_eq!(in_total, g.num_edges());
    });
}

#[test]
fn transpose_involution() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let tt = g.transpose().transpose();
        assert_eq!(tt, g);
    });
}

#[test]
fn transpose_swaps_degrees() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let t = g.transpose();
        for v in g.nodes() {
            assert_eq!(g.out_degree(v), t.in_degree(v));
            assert_eq!(g.in_degree(v), t.out_degree(v));
        }
    });
}

#[test]
fn edge_iterator_matches_has_edge() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        for e in g.edges() {
            assert!(g.has_edge(e.src, e.dst));
            assert_eq!(g.edge_weight(e.src, e.dst), Some(e.weight));
        }
    });
}

#[test]
fn duplicate_weights_sum() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let expected: f64 = edges.iter().map(|e| e.2).sum();
        assert!((g.total_weight() - expected).abs() < 1e-9 * (1.0 + expected.abs()));
    });
}

#[test]
fn stochastic_step_conserves_mass() {
    for_cases(|n, edges, rng| {
        let damping = rng.gen_range(0.0f64..1.0);
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let op = RowStochastic::new(&g);
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
        normalize_l1(&mut x);
        let mut y = vec![0.0; n as usize];
        op.apply(&x, &mut y, damping, &JumpVector::Uniform);
        let sum: f64 = y.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "mass {sum} not conserved");
        assert!(y.iter().all(|&v| v >= 0.0));
    });
}

#[test]
fn composed_operator_rows_sum_to_one() {
    // The decay/teleport composition `y = d·xP + (1-d)·j + leaked·j` is a
    // row-stochastic operator: pushing each basis vector through it must
    // return exactly unit mass (1 ± 1e-12), for uniform and for arbitrary
    // weighted teleport vectors alike. Basis vectors probe individual
    // rows, so this is strictly stronger than mass conservation on one
    // blended distribution.
    for_cases(|n, edges, rng| {
        let damping = rng.gen_range(0.0f64..1.0);
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let op = RowStochastic::new(&g);
        let jumps = [
            JumpVector::Uniform,
            JumpVector::weighted((0..n).map(|i| 0.01 + (i % 5) as f64).collect()),
        ];
        let mut y = vec![0.0; n as usize];
        for jump in &jumps {
            for i in 0..(n as usize).min(8) {
                let mut e = vec![0.0; n as usize];
                e[i] = 1.0;
                op.apply(&e, &mut y, damping, jump);
                let sum: f64 = y.iter().sum();
                assert!(
                    (sum - 1.0).abs() < 1e-12,
                    "row {i} of composed operator sums to {sum} (damping {damping})"
                );
                assert!(y.iter().all(|&v| v >= 0.0 && v.is_finite()));
            }
        }
    });
}

#[test]
fn stationary_is_fixed_point() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let op = RowStochastic::new(&g);
        let res =
            op.stationary(&PowerIterationOpts { tol: 1e-12, max_iter: 500, ..Default::default() });
        if res.converged {
            let mut y = vec![0.0; n as usize];
            op.apply(&res.scores, &mut y, 0.85, &JumpVector::Uniform);
            assert!(l1_distance(&res.scores, &y) < 1e-9);
        }
    });
}

#[test]
fn parallel_apply_matches_sequential() {
    for_cases(|n, edges, rng| {
        let threads = rng.gen_range(2usize..6);
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let op = RowStochastic::new(&g);
        let mut x: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        normalize_l1(&mut x);
        let mut y1 = vec![0.0; n as usize];
        let mut y2 = vec![0.0; n as usize];
        op.apply(&x, &mut y1, 0.85, &JumpVector::Uniform);
        op.apply_parallel(&x, &mut y2, 0.85, &JumpVector::Uniform, threads);
        assert!(l1_distance(&y1, &y2) < 1e-12);
    });
}

#[test]
fn binary_roundtrip_identity() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let mut buf = Vec::new();
        sgraph::io::write_binary(&g, &mut buf).unwrap();
        let g2 = sgraph::io::read_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    });
}

#[test]
fn text_roundtrip_identity() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let mut buf = Vec::new();
        sgraph::io::write_edge_list(&g, &mut buf).unwrap();
        let g2 = sgraph::io::read_edge_list(&buf[..], Some(n)).unwrap();
        // Text roundtrip goes through decimal printing; weights are exact
        // for the f64 display format Rust uses (shortest roundtrip repr).
        assert_eq!(g, g2);
    });
}

#[test]
fn io_roundtrip_with_extreme_weights() {
    // CSR io must round-trip weights at the edges of f64: subnormals,
    // near-max magnitudes, and values whose shortest decimal repr is
    // long. Binary io is bit-exact by construction; text io leans on
    // Rust's shortest-roundtrip float printing — both must reproduce the
    // graph exactly.
    let extremes = [
        f64::MIN_POSITIVE, // smallest normal
        5e-324,            // smallest subnormal
        f64::MAX,
        1.0 + f64::EPSILON,
        0.1 + 0.2, // classic long-decimal sum
        1e308,
        1e-308,
        std::f64::consts::PI,
    ];
    let mut edges = Vec::new();
    for (i, &w) in extremes.iter().enumerate() {
        let i = i as u32;
        edges.push((i, (i + 1) % extremes.len() as u32, w));
    }
    let g = GraphBuilder::from_weighted_edges(extremes.len() as u32, &edges);
    let mut bin = Vec::new();
    sgraph::io::write_binary(&g, &mut bin).unwrap();
    assert_eq!(sgraph::io::read_binary(&bin[..]).unwrap(), g);
    let mut txt = Vec::new();
    sgraph::io::write_edge_list(&g, &mut txt).unwrap();
    assert_eq!(sgraph::io::read_edge_list(&txt[..], Some(g.len() as u32)).unwrap(), g);
}

#[test]
fn scc_component_count_bounds() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        assert!(scc.num_components >= 1);
        assert!(scc.num_components <= n);
        let sizes = scc.component_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), n as usize);
        assert!(sizes.iter().all(|&s| s > 0));
    });
}

#[test]
fn condensation_is_dag() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        let dag = sgraph::scc::condensation(&g, &scc);
        assert!(!sgraph::traversal::is_cyclic(&dag));
    });
}

#[test]
fn wcc_refines_scc() {
    // Two nodes in the same SCC must be in the same WCC.
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let scc = sgraph::scc::tarjan_scc(&g);
        let wcc = sgraph::components::weakly_connected_components(&g);
        for a in 0..n as usize {
            for b in (a + 1)..n as usize {
                if scc.component[a] == scc.component[b] {
                    assert_eq!(wcc.component[a], wcc.component[b]);
                }
            }
        }
    });
}

#[test]
fn subgraph_scores_scatter_gather() {
    for_cases(|n, edges, rng| {
        let keep_mod = rng.gen_range(1u32..5);
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let (sub, map) = sgraph::view::induced_subgraph(&g, |v| v.0 % keep_mod == 0);
        let sub_scores: Vec<f64> = (0..sub.len()).map(|i| i as f64).collect();
        let full = map.scatter(&sub_scores, -1.0);
        let back = map.gather(&full);
        assert_eq!(back, sub_scores);
        // Dropped nodes keep the fill value.
        for v in g.nodes() {
            if v.0 % keep_mod != 0 {
                assert_eq!(full[v.index()], -1.0);
            }
        }
    });
}

#[test]
fn bfs_distances_respect_edges() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let dist = sgraph::traversal::bfs_distances(&g, NodeId(0));
        // Triangle inequality along each edge.
        for e in g.edges() {
            if let Some(ds) = dist[e.src.index()] {
                if let Some(dd) = dist[e.dst.index()] {
                    assert!(dd <= ds + 1);
                } else {
                    panic!("dst unreachable but src reachable via edge");
                }
            }
        }
    });
}

#[test]
fn kcore_numbers_are_bounded_by_degree() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let res = sgraph::kcore::k_core_decomposition(&g);
        for v in g.nodes() {
            let deg = g.in_degree(v) + g.out_degree(v);
            assert!(res.core[v.index()] as usize <= deg, "core number exceeds total degree");
        }
        assert_eq!(res.histogram().iter().sum::<usize>(), n as usize);
    });
}

#[test]
fn kcore_members_have_min_degree_within_core() {
    // Defining property: inside the k-core subgraph, every member has
    // total degree >= k.
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let res = sgraph::kcore::k_core_decomposition(&g);
        let k = res.degeneracy;
        if k == 0 {
            return;
        }
        let members = res.members_of_core(k);
        let in_core = |v: NodeId| res.core[v.index()] >= k;
        for &v in &members {
            let deg: usize =
                g.out_neighbors(v).iter().chain(g.in_neighbors(v)).filter(|&&u| in_core(u)).count();
            assert!(deg >= k as usize, "node {} has degree {} inside the {}-core", v, deg, k);
        }
    });
}

#[test]
fn edge_sampling_is_nested_and_bounded() {
    for_cases(|n, edges, rng| {
        let seed = rng.gen_range(0u64..100);
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let half = sgraph::sampling::sample_edges(&g, 0.5, seed);
        let most = sgraph::sampling::sample_edges(&g, 0.9, seed);
        assert!(half.num_edges() <= most.num_edges());
        assert!(most.num_edges() <= g.num_edges());
        for e in half.edges() {
            assert!(most.has_edge(e.src, e.dst));
            assert!(g.has_edge(e.src, e.dst));
        }
        half.validate().unwrap();
    });
}

#[test]
fn gauss_seidel_agrees_with_power_iteration() {
    for_cases(|n, edges, _| {
        let g = GraphBuilder::from_weighted_edges(n, edges);
        let power = RowStochastic::new(&g).stationary(&PowerIterationOpts {
            tol: 1e-13,
            max_iter: 3000,
            ..Default::default()
        });
        let gs = sgraph::solver::gauss_seidel(
            &g,
            &sgraph::solver::GaussSeidelOpts { tol: 1e-13, max_sweeps: 3000, ..Default::default() },
        );
        if power.converged && gs.converged {
            assert!(
                l1_distance(&power.scores, &gs.scores) < 1e-7,
                "solvers disagree by {}",
                l1_distance(&power.scores, &gs.scores)
            );
        }
    });
}
